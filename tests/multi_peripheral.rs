//! Integration: several peripherals sharing one kernel — the paper's
//! future-work direction ("verify whole SystemC projects with a high
//! number of individual components").
//!
//! A PLIC and a CLINT run side by side: the CLINT's timer interrupt is
//! wired into a PLIC source (as on a real FE310, where the CLINT serves
//! local interrupts but here we cascade for the test), and the testbench
//! verifies end-to-end delivery with a symbolic timer compare point.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Kernel, SimTime};
use symsc_plic::{Clint, InterruptTarget, Plic, PlicConfig, PlicVariant};
use symsc_symex::{Explorer, SymCtx, Width};
use symsc_tlm::{BlockingTransport, GenericPayload};

/// Forwards a timer interrupt into PLIC source 9. Defers the actual
/// gateway call: the kernel is owned by the testbench, so the bridge just
/// records the edge and the testbench pumps it (the same structure an
/// initiator thread would have).
struct TimerToPlicBridge {
    fired: u32,
}

impl InterruptTarget for TimerToPlicBridge {
    fn trigger_external_interrupt(&mut self) {
        self.fired += 1;
    }
}

struct Cpu {
    external_irqs: u32,
}

impl InterruptTarget for Cpu {
    fn trigger_external_interrupt(&mut self) {
        self.external_irqs += 1;
    }
}

fn claim(ctx: &SymCtx, kernel: &mut Kernel, plic: &mut Plic) -> u64 {
    let mut txn = GenericPayload::read(ctx, ctx.word32(0x20_0004), 4);
    plic.b_transport(ctx, kernel, &mut txn);
    assert!(txn.response.is_ok());
    txn.word(0).as_const().expect("concrete claim")
}

#[test]
fn timer_interrupt_cascades_through_the_plic() {
    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();

        let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
        let mut plic = Plic::new(ctx, &mut kernel, cfg);
        let clint = Clint::new(ctx, &mut kernel);

        let bridge = Rc::new(RefCell::new(TimerToPlicBridge { fired: 0 }));
        clint.connect_timer(bridge.clone());
        let cpu = Rc::new(RefCell::new(Cpu { external_irqs: 0 }));
        plic.connect_hart(cpu.clone());
        kernel.step(); // initialization

        plic.enable_all_sources(ctx);
        plic.set_priority(ctx, 9, 3);

        // Symbolic compare point; enumerate a window of 8.
        let cmp = ctx.symbolic("mtimecmp", Width::W32);
        ctx.assume(&cmp.uge(&ctx.word32(1)));
        ctx.assume(&cmp.ule(&ctx.word32(8)));
        let mut ticks = 0u64;
        for v in 1..=8u64 {
            if ctx.decide(&cmp.eq(&ctx.word32(v as u32))) {
                ticks = v;
                break;
            }
        }
        clint.write_mtimecmp(&mut kernel, ticks);

        // Run until the timer fires, pump the bridge into the PLIC, and
        // let the PLIC deliver.
        kernel.run_until(SimTime::from_ns(ticks));
        assert_eq!(bridge.borrow().fired, 1, "timer fired at the compare point");
        plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(9));
        kernel.step();

        assert_eq!(cpu.borrow().external_irqs, 1, "cascaded to the CPU");
        let id = claim(ctx, &mut kernel, &mut plic);
        assert_eq!(id, 9, "the timer's PLIC source is claimable");
    });
    assert!(report.passed(), "{report}");
    assert_eq!(report.stats.paths, 8, "one path per compare point");
}

#[test]
fn two_kernels_do_not_interfere() {
    // Processes, events and time are kernel-local; two kernels in one
    // path must stay independent.
    let report = Explorer::new().explore(|ctx| {
        let mut k1 = Kernel::new();
        let mut k2 = Kernel::new();
        let cfg = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let plic1 = Plic::new(ctx, &mut k1, cfg);
        let plic2 = Plic::new(ctx, &mut k2, cfg);
        let cpu1 = Rc::new(RefCell::new(Cpu { external_irqs: 0 }));
        let cpu2 = Rc::new(RefCell::new(Cpu { external_irqs: 0 }));
        plic1.connect_hart(cpu1.clone());
        plic2.connect_hart(cpu2.clone());
        k1.step();
        k2.step();

        plic1.enable_all_sources(ctx);
        plic1.set_priority(ctx, 3, 1);
        plic1.trigger_interrupt(ctx, &mut k1, &ctx.word32(3));
        k1.step();

        assert_eq!(cpu1.borrow().external_irqs, 1);
        assert_eq!(cpu2.borrow().external_irqs, 0, "kernel 2 is untouched");
        assert_eq!(k2.time(), SimTime::ZERO);
        assert!(k1.time() > SimTime::ZERO);
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn soc_bus_routes_to_both_peripherals() {
    // The FE310 memory map through a TLM interconnect: CLINT at
    // 0x0200_0000, PLIC at 0x0C00_0000 — software reaches both through
    // one bus, with local decode inside each peripheral.
    use symsc_tlm::{BlockingTransport as _, Router};

    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
        let plic = Rc::new(RefCell::new(Plic::new(ctx, &mut kernel, cfg)));
        let clint = Rc::new(RefCell::new(Clint::new(ctx, &mut kernel)));
        let cpu = Rc::new(RefCell::new(Cpu { external_irqs: 0 }));
        plic.borrow().connect_hart(cpu.clone());
        kernel.step();

        let mut bus = Router::new();
        bus.map("clint", 0x0200_0000, 0x1_0000, clint.clone());
        bus.map("plic", 0x0C00_0000, 0x40_0000, plic.clone());

        // Program PLIC priority[7] = 2 through the bus.
        let mut txn = GenericPayload::write(ctx, ctx.word32(0x0C00_0000 + 4 * 7), 4);
        txn.set_word(0, ctx.word32(2));
        bus.b_transport(ctx, &mut kernel, &mut txn);
        assert!(txn.response.is_ok());

        // Enable everything and deliver an interrupt.
        plic.borrow().enable_all_sources(ctx);
        plic.borrow()
            .trigger_interrupt(ctx, &mut kernel, &ctx.word32(7));
        kernel.step();
        assert_eq!(cpu.borrow().external_irqs, 1);

        // Claim through the bus (PLIC base + claim offset).
        let mut claim_txn = GenericPayload::read(ctx, ctx.word32(0x0C20_0004), 4);
        bus.b_transport(ctx, &mut kernel, &mut claim_txn);
        assert!(claim_txn.response.is_ok());
        assert_eq!(claim_txn.word(0).as_const(), Some(7));

        // Read the CLINT's mtime through the same bus.
        let mut mtime_txn = GenericPayload::read(ctx, ctx.word32(0x0200_BFF8), 4);
        bus.b_transport(ctx, &mut kernel, &mut mtime_txn);
        assert!(mtime_txn.response.is_ok());
        let mtime = mtime_txn.word(0).as_const().expect("concrete mtime");
        assert_eq!(mtime, kernel.time().as_ns());

        // An address in the hole between the two devices errors.
        let mut hole = GenericPayload::read(ctx, ctx.word32(0x0800_0000), 4);
        bus.b_transport(ctx, &mut kernel, &mut hole);
        assert_eq!(hole.response, symsc_tlm::ResponseStatus::AddressError);
    });
    assert!(report.passed(), "{report}");
}

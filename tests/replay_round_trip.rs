//! Integration: every counterexample found symbolically must reproduce
//! its error when replayed concretely (the paper's point ⑥ — compiling to
//! a native executable and debugging the concrete run). The round trip is
//! exact: the replayed error re-emits a counterexample that is
//! byte-identical to the one that drove the replay, and the whole loop
//! holds at 1 and at 8 exploration workers.

use symsc_plic::{InjectedFault, PlicConfig, PlicVariant};
use symsc_testbench::{run_test, test_bench, SuiteParams, TestId};
use symsysc_core::Verifier;

fn replay_all_distinct(test: TestId, config: PlicConfig) {
    let params = SuiteParams::default();
    for workers in [1usize, 8] {
        let v = Verifier::new(test.name()).workers(workers);
        let outcome = run_test(test, config, &params, &v);
        let distinct = outcome.report.distinct_errors();
        assert!(
            !distinct.is_empty(),
            "{test} must find something to replay at {workers} workers"
        );
        for error in distinct {
            let replayed = v.replay(&error.counterexample, test_bench(test, config, params));
            assert!(
                !replayed.passed(),
                "{test}: counterexample {} for '{}' must reproduce at {workers} workers",
                error.counterexample,
                error.message
            );
            assert_eq!(
                replayed.report.stats.paths, 1,
                "replay is one concrete path"
            );
            // The round trip is lossless: the replayed path's error
            // carries the same inputs with the same values, re-emitted
            // byte-for-byte.
            let re_emitted = &replayed.report.errors[0];
            assert_eq!(
                re_emitted.message, error.message,
                "{test}: replay at {workers} workers hit a different error"
            );
            assert_eq!(
                re_emitted.counterexample.to_string().into_bytes(),
                error.counterexample.to_string().into_bytes(),
                "{test}: re-emitted counterexample must be byte-identical"
            );
        }
    }
}

#[test]
fn t1_counterexamples_replay_full_scale() {
    replay_all_distinct(TestId::T1, PlicConfig::fe310());
}

#[test]
fn t4_counterexamples_replay_full_scale() {
    replay_all_distinct(TestId::T4, PlicConfig::fe310());
}

#[test]
fn t5_counterexamples_replay_full_scale() {
    replay_all_distinct(TestId::T5, PlicConfig::fe310());
}

#[test]
fn injected_fault_counterexamples_replay() {
    let fixed = PlicConfig::fe310().variant(PlicVariant::Fixed);
    for fault in [
        InjectedFault::If1OffByOneGateway,
        InjectedFault::If2DropNotifyId13,
        InjectedFault::If4LateNotifyHighIds,
        InjectedFault::If5EarlyClearReturn,
    ] {
        replay_all_distinct(TestId::T1, fixed.fault(fault));
    }
    replay_all_distinct(TestId::T3, fixed.fault(InjectedFault::If6ThresholdOffByOne));
}

#[test]
fn replay_with_benign_inputs_passes() {
    // A valid, well-behaved input through the faithful T1 testbench must
    // not trip anything (the bugs need the corner cases).
    let params = SuiteParams::default();
    let config = PlicConfig::fe310();
    let benign = symsc_symex::Counterexample::from_pairs([("i_interrupt", 5u64)]);
    for workers in [1usize, 8] {
        let v = Verifier::new("T1").workers(workers);
        let replayed = v.replay(&benign, test_bench(TestId::T1, config, params));
        assert!(replayed.passed(), "{}", replayed);
    }
}

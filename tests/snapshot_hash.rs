//! Property tests for the structural state hashes behind the merge
//! engine's join-point marks: under seeded random operation sequences,
//! `PlicSnapshot::structural_hash` / `KernelSnapshot::structural_hash`
//! must agree with the naive deep-equality comparators — equal hashes
//! exactly when the states are structurally equal, across snapshot /
//! restore / divergence / reconvergence.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Kernel, NotifyKind, ProcessCtx, SimTime, Suspend};
use symsc_plic::{InterruptTarget, Plic, PlicConfig, PlicVariant};
use symsc_rng::Rng;
use symsc_symex::Explorer;

struct NullHart;
impl InterruptTarget for NullHart {
    fn trigger_external_interrupt(&mut self) {}
}

/// Applies one random concrete PLIC mutation drawn from `rng`.
fn random_plic_op(plic: &Plic, ctx: &symsc_symex::SymCtx, kernel: &mut Kernel, rng: &mut Rng) {
    let sources = u64::from(plic.config().sources);
    match rng.gen_range_inclusive(0, 3) {
        0 => {
            let irq = rng.gen_range_inclusive(1, sources) as u32;
            let priority = rng.gen_range_inclusive(0, 7) as u32;
            plic.set_priority(ctx, irq, priority);
        }
        1 => {
            let irq = rng.gen_range_inclusive(1, sources);
            plic.trigger_interrupt(ctx, kernel, &ctx.word32(irq as u32));
        }
        2 => {
            let threshold = rng.gen_range_inclusive(0, 7) as u32;
            plic.set_threshold(ctx.word32(threshold));
        }
        _ => {
            plic.enable_all_sources(ctx);
        }
    }
}

#[test]
fn plic_hash_agrees_with_deep_equality_under_random_ops() {
    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let plic = Plic::new(
            ctx,
            &mut kernel,
            PlicConfig::small().variant(PlicVariant::Fixed),
        );
        plic.connect_hart(Rc::new(RefCell::new(NullHart)));
        kernel.step();

        for seed in 0..16u64 {
            let mut rng = Rng::seed_from_u64(0xC0FFEE ^ seed);
            let base = plic.snapshot();
            assert!(base.deep_equals(&plic.snapshot()), "snapshot is stable");
            assert_eq!(base.structural_hash(), plic.snapshot().structural_hash());
            assert_eq!(base.structural_hash(), plic.state_mark());

            // Mutate; hash must track deep equality at every step.
            let ops = rng.gen_range_inclusive(1, 6);
            for _ in 0..ops {
                random_plic_op(&plic, ctx, &mut kernel, &mut rng);
                let now = plic.snapshot();
                assert_eq!(
                    now.deep_equals(&base),
                    now.structural_hash() == base.structural_hash(),
                    "hash must agree with deep equality after mutation (seed {seed})"
                );
            }

            // Restoring reconverges both the comparator and the hash.
            plic.restore(&base);
            let back = plic.snapshot();
            assert!(back.deep_equals(&base), "restore reconverges (seed {seed})");
            assert_eq!(back.structural_hash(), base.structural_hash());
            assert_eq!(plic.state_mark(), base.structural_hash());
        }
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn plic_hash_separates_symbolic_writes() {
    // Symbolic-valued register writes must show up in the mark too: the
    // hash folds term structure, not just concrete values.
    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let plic = Plic::new(
            ctx,
            &mut kernel,
            PlicConfig::small().variant(PlicVariant::Fixed),
        );
        plic.connect_hart(Rc::new(RefCell::new(NullHart)));
        kernel.step();

        let base = plic.snapshot();
        let p = ctx.symbolic("p", symsc_symex::Width::W32);
        plic.set_priority_symbolic(&ctx.word32(1), &p);
        let with_sym = plic.snapshot();
        assert!(!with_sym.deep_equals(&base));
        assert_ne!(with_sym.structural_hash(), base.structural_hash());

        // The same symbolic write is structurally idempotent: re-applying
        // the identical store yields the identical term, hence mark.
        plic.restore(&base);
        plic.set_priority_symbolic(&ctx.word32(1), &p);
        let again = plic.snapshot();
        assert!(again.deep_equals(&with_sym));
        assert_eq!(again.structural_hash(), with_sym.structural_hash());
    });
    assert!(report.passed(), "{report}");
}

/// A looping process so the kernel always has wakelist activity.
fn ticker(period_ns: u64) -> impl FnMut(&mut ProcessCtx<'_>) -> Suspend {
    move |_ctx: &mut ProcessCtx<'_>| Suspend::WaitTime(SimTime::from_ns(period_ns))
}

#[test]
fn kernel_hash_agrees_with_deep_equality_under_random_ops() {
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);
        let mut kernel = Kernel::new();
        let e0 = kernel.create_event("e0");
        let e1 = kernel.create_event("e1");
        kernel.spawn("tick3", ticker(3));
        kernel.spawn("tick7", ticker(7));
        kernel.step(); // initialization

        let base = kernel.snapshot();
        assert!(base.deep_equals(&kernel.snapshot()), "snapshot is stable");
        assert_eq!(base.structural_hash(), kernel.snapshot().structural_hash());
        assert_eq!(base.structural_hash(), kernel.state_mark());

        let ops = rng.gen_range_inclusive(1, 8);
        for _ in 0..ops {
            let event = if rng.gen_range_inclusive(0, 1) == 0 {
                e0
            } else {
                e1
            };
            match rng.gen_range_inclusive(0, 3) {
                0 => kernel.notify(event, NotifyKind::Delta),
                1 => {
                    let delay = rng.gen_range_inclusive(1, 20);
                    kernel.notify(event, NotifyKind::Timed(SimTime::from_ns(delay)));
                }
                2 => kernel.cancel(event),
                _ => {
                    kernel.step();
                }
            }
            let now = kernel.snapshot();
            assert_eq!(
                now.deep_equals(&base),
                now.structural_hash() == base.structural_hash(),
                "hash must agree with deep equality after mutation (seed {seed})"
            );
        }

        // Restore reconverges comparator, hash, and the live mark.
        kernel.restore(&base);
        let back = kernel.snapshot();
        assert!(back.deep_equals(&base), "restore reconverges (seed {seed})");
        assert_eq!(back.structural_hash(), base.structural_hash());
        assert_eq!(kernel.state_mark(), base.structural_hash());
    }
}

#[test]
fn kernel_hash_ignores_reporting_state() {
    // Counters and the VCD trace never influence future scheduling; the
    // mark must not fork exploration subtrees over them.
    let build = |traced: bool| {
        let mut kernel = Kernel::new();
        if traced {
            kernel.enable_tracing();
        }
        kernel.create_event("e");
        kernel.spawn("tick", ticker(5));
        kernel.step();
        kernel
    };
    let plain = build(false);
    let traced = build(true);
    assert_eq!(plain.state_mark(), traced.state_mark());
    assert!(plain.snapshot().deep_equals(&traced.snapshot()));
}

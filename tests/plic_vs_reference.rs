//! Property test: the TLM PLIC model against the independent concrete
//! reference model ([`ReferencePlic`]).
//!
//! Strategy: generate a random concrete stimulus (priorities, enables,
//! threshold, triggered ids) from a seeded in-tree PRNG (the workspace
//! builds offline, so `proptest` is unavailable — a deterministic loop
//! over `symsc_rng` replaces it), drive both models, and compare the
//! complete claim sequence and delivery decision. The TLM model runs
//! inside the symbolic engine in fully concrete mode (constant folding
//! keeps the solver idle), through the real TLM claim register.

use symsc_pk::Kernel;
use symsc_plic::{Plic, PlicConfig, PlicVariant, ReferencePlic};
use symsc_rng::Rng;
use symsc_symex::Explorer;
use symsc_tlm::{BlockingTransport, GenericPayload};

const SOURCES: u32 = 16;

#[derive(Clone, Debug)]
struct Stimulus {
    priorities: Vec<u32>, // index 0 unused
    enabled: Vec<bool>,
    threshold: u32,
    triggers: Vec<u32>,
}

fn gen_stimulus(rng: &mut Rng) -> Stimulus {
    let priorities = (0..=SOURCES)
        .map(|_| rng.gen_range_inclusive(0, 7) as u32)
        .collect();
    let enabled = (0..=SOURCES).map(|_| rng.gen_bool()).collect();
    let threshold = rng.gen_range_inclusive(0, 7) as u32;
    let triggers = (0..rng.gen_range_inclusive(0, 7))
        .map(|_| rng.gen_range_inclusive(1, u64::from(SOURCES)) as u32)
        .collect();
    Stimulus {
        priorities,
        enabled,
        threshold,
        triggers,
    }
}

/// Drives the TLM model with the stimulus, returning the claim sequence
/// (drained through the claim register) and whether anything was
/// deliverable before claiming started.
fn run_tlm_model(stim: &Stimulus) -> (Vec<u32>, bool) {
    let mut claims = Vec::new();
    let mut deliverable = false;
    let report = Explorer::new().explore_mut(|ctx| {
        let mut kernel = Kernel::new();
        let mut cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
        cfg.sources = SOURCES;
        cfg.max_priority = 7;
        let mut plic = Plic::new(ctx, &mut kernel, cfg);
        kernel.step();

        for irq in 1..=SOURCES {
            plic.set_priority(ctx, irq, stim.priorities[irq as usize]);
        }
        // Configure enables through the real enable register.
        let mut word0 = 0u32;
        for irq in 1..=SOURCES.min(31) {
            if stim.enabled[irq as usize] {
                word0 |= 1 << irq;
            }
        }
        let mut txn = GenericPayload::write(ctx, ctx.word32(0x2000), 4);
        txn.set_word(0, ctx.word32(word0));
        plic.b_transport(ctx, &mut kernel, &mut txn);
        assert!(txn.response.is_ok());

        plic.set_threshold(ctx.word32(stim.threshold));

        for &irq in &stim.triggers {
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(irq));
        }
        kernel.step();

        deliverable = plic
            .next_deliverable()
            .as_const()
            .expect("concrete stimulus stays concrete")
            != 0;

        // Drain through the claim register.
        claims.clear();
        loop {
            let mut claim = GenericPayload::read(ctx, ctx.word32(0x20_0004), 4);
            plic.b_transport(ctx, &mut kernel, &mut claim);
            assert!(claim.response.is_ok());
            let id = claim.word(0).as_const().expect("concrete claim") as u32;
            if id == 0 {
                break;
            }
            claims.push(id);
        }
    });
    assert!(report.passed(), "concrete run must be clean: {report}");
    assert_eq!(report.stats.paths, 1, "concrete stimulus must not fork");
    (claims, deliverable)
}

fn run_reference(stim: &Stimulus) -> (Vec<u32>, bool) {
    let mut r = ReferencePlic::new(SOURCES);
    for irq in 1..=SOURCES {
        r.set_priority(irq, stim.priorities[irq as usize]);
        r.set_enabled(irq, stim.enabled[irq as usize]);
    }
    r.set_threshold(stim.threshold);
    for &irq in &stim.triggers {
        r.trigger(irq).expect("valid id");
    }
    let deliverable = r.next_deliverable().is_some();
    (r.drain(), deliverable)
}

#[test]
fn tlm_model_matches_reference_claim_order() {
    let mut rng = Rng::seed_from_u64(0x5EED_2001);
    for case in 0..64 {
        let stim = gen_stimulus(&mut rng);
        let (tlm_claims, tlm_deliverable) = run_tlm_model(&stim);
        let (ref_claims, ref_deliverable) = run_reference(&stim);
        assert_eq!(
            &tlm_claims, &ref_claims,
            "case {case}: claim sequences diverge for {stim:?}"
        );
        assert_eq!(
            tlm_deliverable, ref_deliverable,
            "case {case}: delivery decision diverges for {stim:?}"
        );
    }
}

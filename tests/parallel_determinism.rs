//! Integration: parallel exploration is deterministic.
//!
//! The worker pool must be an implementation detail: for every suite test
//! the report — path count, verdict, error messages, error path indices,
//! counterexamples, coverage — must be byte-identical no matter how many
//! workers explored the state space or how the scheduler interleaved them.
//!
//! T1–T5 run on the shape-preserving scaled configuration (full-scale T2
//! takes minutes; determinism is about scheduling, not scale) against the
//! faithful PLIC, so the suite exercises both failing reports (T1 finds
//! the F1 claim bug) and passing ones.

use symsc_firmware::{
    firmware_bench, run_firmware_kill_matrix_with, run_firmware_test, FirmwareId,
};
use symsc_mutate::{run_cross_kill_matrix_with, run_kill_matrix, run_kill_matrix_with, Mutant};
use symsc_plic::{InjectedFault, MutationOp, PlicConfig, PlicVariant, ThresholdCmp};
use symsc_testbench::{run_cross_test, run_test, CrossId, SuiteParams, TestId};
use symsysc_core::prelude::{ExploreOrder, ForkStrategy};
use symsysc_core::{TestOutcome, Verifier};

/// Everything in a report that must not depend on scheduling.
/// (`stats.time` and solver-cache hit/miss splits legitimately vary.)
fn stable_view(outcome: &TestOutcome) -> String {
    use std::fmt::Write;
    let report = &outcome.report;
    let mut view = String::new();
    writeln!(
        view,
        "paths={} decisions={} completed={} passed={}",
        report.stats.paths,
        report.stats.decisions,
        report.completed,
        report.passed()
    )
    .unwrap();
    for error in &report.errors {
        writeln!(
            view,
            "error path={} kind={:?} msg={} cex={}",
            error.path, error.kind, error.message, error.counterexample
        )
        .unwrap();
    }
    for (point, count) in &report.coverage {
        writeln!(view, "cover {point}={count}").unwrap();
    }
    // Branch coverage: fork-site fingerprints are structural, so both the
    // key set and the per-direction counts must merge identically.
    for (site, bc) in &report.stats.branches {
        writeln!(view, "branch {site:032x}={}/{}", bc.taken, bc.not_taken).unwrap();
    }
    view
}

fn run_with_workers(test: TestId, workers: usize) -> TestOutcome {
    run_test(
        test,
        PlicConfig::fe310_scaled(),
        &SuiteParams::default(),
        &Verifier::new(test.name()).workers(workers),
    )
}

fn run_flat(test: TestId, workers: usize) -> TestOutcome {
    run_test(
        test,
        PlicConfig::fe310_scaled(),
        &SuiteParams::default(),
        &Verifier::new(test.name())
            .workers(workers)
            .solver_stack(false),
    )
}

#[test]
fn every_suite_test_is_worker_count_independent() {
    for test in TestId::ALL {
        let sequential = stable_view(&run_with_workers(test, 1));
        for workers in [2, 8] {
            let parallel = stable_view(&run_with_workers(test, workers));
            assert_eq!(
                sequential,
                parallel,
                "{} report changed between 1 and {workers} workers",
                test.name()
            );
        }
    }
}

#[test]
fn solver_stack_never_changes_a_report() {
    // The layered solver stack (counterexample cache + model-reuse
    // witnesses) is a pure optimization: for every suite test, the report
    // with the stack enabled must equal the sequential flat-cache
    // baseline byte for byte, at every worker count.
    for test in TestId::ALL {
        let flat_baseline = stable_view(&run_flat(test, 1));
        for workers in [1, 2, 8] {
            let layered = stable_view(&run_with_workers(test, workers));
            assert_eq!(
                flat_baseline,
                layered,
                "{} report changed between flat 1-worker and layered \
                 {workers}-worker runs",
                test.name()
            );
        }
    }
}

#[test]
fn incremental_core_never_changes_a_report() {
    // The incremental per-path SAT context (assumption solves on a
    // retained, bit-blasted prefix) is a pure optimization exactly like
    // the cache stack: for every suite test, the default incremental
    // report at every worker count must equal the non-incremental
    // sequential baseline byte for byte.
    for test in TestId::ALL {
        let flat_core = stable_view(&run_test(
            test,
            PlicConfig::fe310_scaled(),
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(1).incremental(false),
        ));
        for workers in [1, 2, 8] {
            let incremental = stable_view(&run_with_workers(test, workers));
            assert_eq!(
                flat_core,
                incremental,
                "{} report changed between the non-incremental 1-worker \
                 and incremental {workers}-worker runs",
                test.name()
            );
        }
    }
}

#[test]
fn parallel_t1_pins_the_same_counterexample() {
    // T1 on the faithful scaled PLIC finds the claim bug; the model the
    // solver produces must be the exact one the sequential explorer pins.
    let sequential = run_with_workers(TestId::T1, 1);
    let parallel = run_with_workers(TestId::T1, 8);
    assert!(!sequential.passed() && !parallel.passed());
    let seq_cex = &sequential.report.errors[0].counterexample;
    let par_cex = &parallel.report.errors[0].counterexample;
    assert_eq!(format!("{seq_cex}"), format!("{par_cex}"));
}

#[test]
fn kill_matrix_is_byte_identical_across_worker_counts() {
    // The mutation kill matrix is built from many explorations; its
    // stable rendering (verdicts, distinct errors, path counts, branch
    // coverage) must not depend on how many workers ran each one. A
    // reduced matrix keeps the debug-mode runtime sane: two tests, two
    // presets, one killed generated mutant, one known-equivalent survivor.
    let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
    let mutants = vec![
        Mutant::from_preset(InjectedFault::If5EarlyClearReturn),
        Mutant::from_preset(InjectedFault::If6ThresholdOffByOne),
        Mutant::new(
            "cmp_never",
            "delivery dead",
            MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
        ),
        Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
    ];
    let tests = [TestId::T1, TestId::T3];
    let one = run_kill_matrix(config, &mutants, &tests, 1);
    let eight = run_kill_matrix(config, &mutants, &tests, 8);
    assert_eq!(
        one.stable_view(),
        eight.stable_view(),
        "kill matrix changed between 1 and 8 workers"
    );
    // And the reduced matrix behaves as the full harness expects.
    assert!(one.mutants[0].killed(), "IF5 killed by T1");
    assert!(one.mutants[1].killed(), "IF6 killed by T3");
    assert!(one.mutants[2].killed(), "dead delivery killed");
    assert!(!one.mutants[3].killed(), "duplicate notify survives");
}

#[test]
fn cow_forking_never_changes_a_report() {
    // The copy-on-write snapshot fork engine is a pure optimization: for
    // every suite test, the COW report at 1, 2 and 8 workers must equal
    // the re-execution oracle (prefixes re-solved from scratch) byte for
    // byte. This is the differential bar the cow_fork benchmark enforces
    // at scale; here it runs on the scaled suite as a regression.
    for test in TestId::ALL {
        let oracle = stable_view(&run_test(
            test,
            PlicConfig::fe310_scaled(),
            &SuiteParams::default(),
            &Verifier::new(test.name())
                .workers(1)
                .fork_strategy(ForkStrategy::Reexec),
        ));
        for workers in [1, 2, 8] {
            let cow = stable_view(&run_test(
                test,
                PlicConfig::fe310_scaled(),
                &SuiteParams::default(),
                &Verifier::new(test.name())
                    .workers(workers)
                    .fork_strategy(ForkStrategy::CowSnapshot),
            ));
            assert_eq!(
                oracle,
                cow,
                "{} report changed between the re-execution oracle and \
                 the {workers}-worker COW run",
                test.name()
            );
        }
    }
}

#[test]
fn cow_forking_never_changes_a_mutation_verdict() {
    // Kill-matrix smoke row: for each mutant of the reduced matrix, the
    // killing (or surviving) verdict — and the full stable report behind
    // it — must be identical under COW snapshots and under the
    // re-execution oracle.
    let mutants = [
        (
            "if5",
            Some(MutationOp::EarlyClearReturnForId(7)),
            /* killed = */ true,
        ),
        (
            "cmp_never",
            Some(MutationOp::ThresholdCompare(ThresholdCmp::NeverPass)),
            true,
        ),
        ("dup_notify", Some(MutationOp::DuplicateNotify), false),
        ("baseline", None, false),
    ];
    let tests = [TestId::T1, TestId::T3];
    for (name, mutation, expect_killed) in mutants {
        let mut config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        if let Some(op) = mutation {
            config = config.mutate(op);
        }
        let mut killed_by_cow = false;
        for test in tests {
            let oracle = run_test(
                test,
                config,
                &SuiteParams::default(),
                &Verifier::new(test.name())
                    .workers(1)
                    .fork_strategy(ForkStrategy::Reexec),
            );
            let cow = run_test(
                test,
                config,
                &SuiteParams::default(),
                &Verifier::new(test.name())
                    .workers(1)
                    .fork_strategy(ForkStrategy::CowSnapshot),
            );
            assert_eq!(
                stable_view(&oracle),
                stable_view(&cow),
                "mutant {name}: {} report changed between fork strategies",
                test.name()
            );
            killed_by_cow |= !cow.passed();
        }
        assert_eq!(
            killed_by_cow, expect_killed,
            "mutant {name}: COW verdict diverged from the known matrix"
        );
    }
}

#[test]
fn replay_reproduces_a_cow_forked_counterexample() {
    // T4 under the default COW engine reports errors on deeply forked
    // paths (path indices well past the root). Replaying such a
    // counterexample must still work: replay always starts from a fresh
    // root engine — resuming a forked snapshot in replay mode is a loud
    // assert — and must reproduce the same error on a single path.
    let outcome = run_test(
        TestId::T4,
        PlicConfig::fe310_scaled(),
        &SuiteParams::default(),
        &Verifier::new(TestId::T4.name())
            .workers(1)
            .fork_strategy(ForkStrategy::CowSnapshot),
    );
    assert!(!outcome.passed(), "T4 finds register-interface errors");
    let error = outcome
        .report
        .errors
        .iter()
        .max_by_key(|e| e.path)
        .expect("T4 reports errors");
    assert!(
        error.path > 0,
        "the counterexample must come from a COW-forked path for this \
         regression to bite (path {})",
        error.path
    );
    let verifier = Verifier::new(TestId::T4.name()).fork_strategy(ForkStrategy::CowSnapshot);
    let replayed = verifier.replay(
        &error.counterexample,
        symsc_testbench::test_bench(
            TestId::T4,
            PlicConfig::fe310_scaled(),
            SuiteParams::default(),
        ),
    );
    assert_eq!(replayed.report.stats.paths, 1, "replay is single-path");
    assert_eq!(replayed.report.errors.len(), 1);
    assert_eq!(replayed.report.errors[0].kind, error.kind);
    assert_eq!(replayed.report.errors[0].message, error.message);
}

/// The merge projection: like [`stable_view`] but without the decide
/// counter. `ExploreOrder::MergeEager` adopts finished join-point
/// subtrees instead of re-executing them, so decide/solver work
/// legitimately shrinks; verdicts, represented paths, errors,
/// counterexamples, coverage and branch counts must not move.
fn merge_view(outcome: &TestOutcome) -> String {
    use std::fmt::Write;
    let report = &outcome.report;
    let mut view = String::new();
    writeln!(
        view,
        "paths={} completed={} passed={}",
        report.stats.paths,
        report.completed,
        report.passed()
    )
    .unwrap();
    for error in &report.errors {
        writeln!(
            view,
            "error path={} kind={:?} msg={} cex={}",
            error.path, error.kind, error.message, error.counterexample
        )
        .unwrap();
    }
    for (point, count) in &report.coverage {
        writeln!(view, "cover {point}={count}").unwrap();
    }
    for (site, bc) in &report.stats.branches {
        writeln!(view, "branch {site:032x}={}/{}", bc.taken, bc.not_taken).unwrap();
    }
    view
}

/// A tiny 4-source configuration: small enough that the full merged /
/// exhaustive cross-product at three worker counts stays fast in debug
/// mode, as the issue's property-suite scope asks (≤ 4 sources).
fn tiny_config() -> PlicConfig {
    let mut config = PlicConfig::fe310_scaled();
    config.sources = 4;
    config.max_priority = 4;
    config
}

#[test]
fn merge_eager_matches_the_exhaustive_oracle() {
    // State merging is a pure optimization: for every suite test on the
    // tiny config, the MergeEager report at 1, 2 and 8 workers must equal
    // the exhaustive-drain oracle on the merge projection (everything but
    // the work counters), byte for byte.
    for test in TestId::ALL {
        let oracle = merge_view(&run_test(
            test,
            tiny_config(),
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(1),
        ));
        for workers in [1, 2, 8] {
            let merged = merge_view(&run_test(
                test,
                tiny_config(),
                &SuiteParams::default(),
                &Verifier::new(test.name())
                    .workers(workers)
                    .explore_order(ExploreOrder::MergeEager),
            ));
            assert_eq!(
                oracle,
                merged,
                "{} report changed between the exhaustive oracle and the \
                 {workers}-worker MergeEager run",
                test.name()
            );
        }
    }
}

#[test]
fn coverage_guided_order_matches_the_exhaustive_oracle() {
    // The coverage-guided scheduler changes visitation order only; the
    // canonical report must equal the exhaustive oracle byte for byte
    // (including the decide counter — every path still executes).
    for test in TestId::ALL {
        let oracle = stable_view(&run_with_workers(test, 1));
        let guided = stable_view(&run_test(
            test,
            PlicConfig::fe310_scaled(),
            &SuiteParams::default(),
            &Verifier::new(test.name())
                .workers(1)
                .explore_order(ExploreOrder::CoverageGuided),
        ));
        assert_eq!(
            oracle,
            guided,
            "{} report changed under the coverage-guided scheduler",
            test.name()
        );
    }
}

#[test]
fn merge_eager_fences_arm_join_sites_on_the_suite() {
    // The T1/T2 testbench fences must actually arm join points under
    // MergeEager, so the byte-identity assertions above exercise the
    // merge machinery rather than a silent no-op. (The scaled suite
    // itself explores only 1–2 paths per test, so there is no second
    // arrival to adopt here; adoption liveness — merged_paths > 0 and
    // executed < represented — is pinned by the engine's own
    // merge_order tests and enforced at scale by the path_merge bench.)
    let mut join_sites = 0;
    for test in [TestId::T1, TestId::T2, TestId::T3] {
        let outcome = run_test(
            test,
            PlicConfig::fe310_scaled(),
            &SuiteParams::default(),
            &Verifier::new(test.name())
                .workers(1)
                .explore_order(ExploreOrder::MergeEager),
        );
        let stats = &outcome.report.stats;
        join_sites += stats.join_sites;
        assert_eq!(
            stats.paths,
            stats.executed_paths,
            "{}: with no adoptions every represented path executes",
            test.name()
        );
    }
    assert!(join_sites > 0, "fences must register join sites");
}

#[test]
fn kill_matrix_verdicts_are_unchanged_under_merge_eager() {
    // Merging must not mask a detection: the reduced kill matrix under
    // MergeEager must render byte-identically to the default exhaustive
    // matrix (same verdicts, same distinct-error counts, same coverage).
    // The full 33-mutant matrix runs in the nightly ablation
    // (mutation_kill --order eager against BENCH_mutation_kill.json).
    let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
    let mutants = vec![
        Mutant::from_preset(InjectedFault::If5EarlyClearReturn),
        Mutant::from_preset(InjectedFault::If6ThresholdOffByOne),
        Mutant::new(
            "cmp_never",
            "delivery dead",
            MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
        ),
        Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
    ];
    let tests = [TestId::T1, TestId::T3];
    let exhaustive = run_kill_matrix(config, &mutants, &tests, 1);
    let merged = run_kill_matrix_with(config, &mutants, &tests, |name| {
        Verifier::new(name)
            .workers(1)
            .explore_order(ExploreOrder::MergeEager)
    });
    assert_eq!(
        exhaustive.stable_view(),
        merged.stable_view(),
        "kill matrix changed under MergeEager"
    );
    assert!(merged.mutants[0].killed(), "IF5 still killed by T1");
    assert!(merged.mutants[1].killed(), "IF6 still killed by T3");
    assert!(merged.mutants[2].killed(), "dead delivery still killed");
    assert!(
        !merged.mutants[3].killed(),
        "duplicate notify still survives"
    );
}

/// One firmware-suite run under an explicit worker count, fork strategy
/// and exploration order, on the fixed scaled PLIC.
fn run_firmware(
    test: FirmwareId,
    workers: usize,
    strategy: ForkStrategy,
    order: ExploreOrder,
) -> TestOutcome {
    run_firmware_test(
        test,
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed),
        &Verifier::new(test.name())
            .workers(workers)
            .fork_strategy(strategy)
            .explore_order(order),
    )
}

#[test]
fn every_firmware_test_is_worker_and_strategy_independent() {
    // The firmware suite runs whole RV32I driver programs on the symbolic
    // ISS through the router into the TLM PLIC — far deeper paths than
    // any register-level test, with CPU snapshots carrying symbolic
    // register files across forks. The report must still be a pure
    // function of the state space: byte-identical at every worker count
    // and under both fork engines (COW snapshots vs. the re-execution
    // oracle).
    for test in FirmwareId::ALL {
        let sequential = stable_view(&run_firmware(
            test,
            1,
            ForkStrategy::CowSnapshot,
            ExploreOrder::Exhaustive,
        ));
        for workers in [1, 2, 8] {
            for strategy in [ForkStrategy::CowSnapshot, ForkStrategy::Reexec] {
                let run = stable_view(&run_firmware(
                    test,
                    workers,
                    strategy,
                    ExploreOrder::Exhaustive,
                ));
                assert_eq!(
                    sequential, run,
                    "{test} report changed at {workers} workers under {strategy:?}"
                );
            }
        }
    }
}

#[test]
fn firmware_merge_eager_matches_the_exhaustive_oracle() {
    // The firmware benches fence at wfi park boundaries (kernel + PLIC +
    // CPU + RAM digests), so MergeEager may adopt finished subtrees and
    // shrink the decide counter; everything on the merge projection —
    // verdicts, represented paths, errors, counterexamples, coverage,
    // branch counts — must not move, at any worker count.
    for test in FirmwareId::ALL {
        let oracle = merge_view(&run_firmware(
            test,
            1,
            ForkStrategy::CowSnapshot,
            ExploreOrder::Exhaustive,
        ));
        for workers in [1, 2, 8] {
            let merged = merge_view(&run_firmware(
                test,
                workers,
                ForkStrategy::CowSnapshot,
                ExploreOrder::MergeEager,
            ));
            assert_eq!(
                oracle, merged,
                "{test} report changed between the exhaustive oracle and \
                 the {workers}-worker MergeEager run"
            );
        }
    }
}

#[test]
fn firmware_kill_matrix_is_byte_identical_across_engines() {
    // The reduced firmware kill matrix — two driver tests, one preset,
    // the firmware-unique stuck-enable kill and a known-equivalent
    // survivor — must render byte-identically across worker counts, fork
    // strategies and exploration orders, and keep its verdicts.
    let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
    let mutants = vec![
        Mutant::from_preset(InjectedFault::If6ThresholdOffByOne),
        Mutant::new(
            "stuck_enable_1",
            "enable bit of source 1 reads as always set",
            MutationOp::StuckEnableForId(1),
        ),
        Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
    ];
    let tests = [FirmwareId::F2, FirmwareId::F5];
    let baseline = run_firmware_kill_matrix_with(config, &mutants, &tests, |name| {
        Verifier::new(name).workers(1)
    });
    for (workers, strategy, order) in [
        (8, ForkStrategy::CowSnapshot, ExploreOrder::Exhaustive),
        (1, ForkStrategy::Reexec, ExploreOrder::Exhaustive),
        (2, ForkStrategy::CowSnapshot, ExploreOrder::MergeEager),
    ] {
        let other = run_firmware_kill_matrix_with(config, &mutants, &tests, |name| {
            Verifier::new(name)
                .workers(workers)
                .fork_strategy(strategy)
                .explore_order(order)
        });
        assert_eq!(
            baseline.stable_view(),
            other.stable_view(),
            "firmware kill matrix changed at {workers} workers under \
             {strategy:?}/{order:?}"
        );
    }
    assert!(baseline.killed_mutant("IF6"), "IF6 killed by F2");
    assert!(
        baseline.killed_mutant("stuck_enable_1"),
        "the firmware-unique stuck-enable kill holds"
    );
    assert!(
        !baseline.killed_mutant("dup_notify"),
        "duplicate notify stays equivalent"
    );
}

#[test]
fn replay_reproduces_a_firmware_counterexample() {
    // F5 against the stuck-enable mutant fails on the path where the
    // masked source fires anyway; replaying the recorded counterexample
    // through a fresh firmware bench must reproduce the same error on a
    // single path — the driver program, the ISS and the peripheral all
    // re-execute from scratch under the pinned decisions.
    let config = PlicConfig::fe310_scaled()
        .variant(PlicVariant::Fixed)
        .mutate(MutationOp::StuckEnableForId(1));
    let outcome = run_firmware_test(
        FirmwareId::F5,
        config,
        &Verifier::new(FirmwareId::F5.name()).workers(1),
    );
    assert!(!outcome.passed(), "F5 kills the stuck-enable mutant");
    let error = outcome
        .report
        .errors
        .iter()
        .max_by_key(|e| e.path)
        .expect("F5 reports an error");
    let verifier = Verifier::new(FirmwareId::F5.name());
    let replayed = verifier.replay(
        &error.counterexample,
        firmware_bench(FirmwareId::F5, config),
    );
    assert_eq!(replayed.report.stats.paths, 1, "replay is single-path");
    assert_eq!(replayed.report.errors.len(), 1);
    assert_eq!(replayed.report.errors[0].kind, error.kind);
    assert_eq!(replayed.report.errors[0].message, error.message);
}

/// One cross-level equivalence run under an explicit worker count, fork
/// strategy and exploration order. Both levels are built from the fixed
/// scaled PLIC, so the run passes — determinism must hold for passing
/// equivalence proofs exactly as for failing ones.
fn run_cross(
    test: CrossId,
    workers: usize,
    strategy: ForkStrategy,
    order: ExploreOrder,
) -> TestOutcome {
    let fixed = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
    run_cross_test(
        test,
        fixed,
        fixed,
        &Verifier::new(test.name())
            .workers(workers)
            .fork_strategy(strategy)
            .explore_order(order),
    )
}

#[test]
fn every_cross_test_is_worker_and_strategy_independent() {
    // The X suite drives the TLM PLIC and the cycle-level model from one
    // symbolic transaction stream; a cross-check path carries both
    // levels' state through every fork. The equivalence report must
    // still be a pure function of the state space: byte-identical at
    // every worker count and under both fork engines.
    for test in CrossId::ALL {
        let sequential = stable_view(&run_cross(
            test,
            1,
            ForkStrategy::CowSnapshot,
            ExploreOrder::Exhaustive,
        ));
        for workers in [1, 2, 8] {
            for strategy in [ForkStrategy::CowSnapshot, ForkStrategy::Reexec] {
                let run = stable_view(&run_cross(
                    test,
                    workers,
                    strategy,
                    ExploreOrder::Exhaustive,
                ));
                assert_eq!(
                    sequential, run,
                    "{test} report changed at {workers} workers under {strategy:?}"
                );
            }
        }
    }
}

#[test]
fn cross_merge_eager_matches_the_exhaustive_oracle() {
    // The X testbenches fence after every delivery window (both levels'
    // digests feed the join key), so MergeEager may adopt finished
    // subtrees; on the merge projection the report must equal the
    // exhaustive oracle at every worker count.
    for test in CrossId::ALL {
        let oracle = merge_view(&run_cross(
            test,
            1,
            ForkStrategy::CowSnapshot,
            ExploreOrder::Exhaustive,
        ));
        for workers in [1, 2, 8] {
            let merged = merge_view(&run_cross(
                test,
                workers,
                ForkStrategy::CowSnapshot,
                ExploreOrder::MergeEager,
            ));
            assert_eq!(
                oracle, merged,
                "{test} report changed between the exhaustive oracle and \
                 the {workers}-worker MergeEager run"
            );
        }
    }
}

#[test]
fn cross_kill_matrix_is_byte_identical_across_engines() {
    // The reduced cross-level kill matrix — the equivalence-unique
    // stuck-enable kill, a dead-delivery kill and a known-equivalent
    // survivor, each injected into both levels in turn — must render
    // byte-identically across worker counts, fork strategies and
    // exploration orders, and keep its verdicts.
    let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
    let mutants = vec![
        Mutant::new(
            "stuck_enable_1",
            "enable bit of source 1 reads as always set",
            MutationOp::StuckEnableForId(1),
        ),
        Mutant::new(
            "cmp_never",
            "delivery dead",
            MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
        ),
        Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
    ];
    let tests = [CrossId::X1, CrossId::X3];
    let baseline = run_cross_kill_matrix_with(config, &mutants, &tests, |name| {
        Verifier::new(name).workers(1)
    });
    for (workers, strategy, order) in [
        (8, ForkStrategy::CowSnapshot, ExploreOrder::Exhaustive),
        (2, ForkStrategy::Reexec, ExploreOrder::Exhaustive),
        (2, ForkStrategy::CowSnapshot, ExploreOrder::MergeEager),
    ] {
        let other = run_cross_kill_matrix_with(config, &mutants, &tests, |name| {
            Verifier::new(name)
                .workers(workers)
                .fork_strategy(strategy)
                .explore_order(order)
        });
        assert_eq!(
            baseline.stable_view(),
            other.stable_view(),
            "cross kill matrix changed at {workers} workers under \
             {strategy:?}/{order:?}"
        );
    }
    assert!(
        baseline.killed_mutant("stuck_enable_1"),
        "the equivalence-unique stuck-enable kill holds"
    );
    assert!(
        baseline.killed_mutant("cmp_never"),
        "dead delivery killed by equivalence"
    );
    assert!(
        !baseline.killed_mutant("dup_notify"),
        "duplicate notify stays equivalent at this scale"
    );
}

#[test]
fn default_worker_count_matches_sequential() {
    // `workers(0)` resolves to the host's available parallelism; whatever
    // that is, the report must equal the 1-worker report.
    let auto = stable_view(&run_with_workers(TestId::T3, 0));
    let sequential = stable_view(&run_with_workers(TestId::T3, 1));
    assert_eq!(auto, sequential);
}

//! Integration: the paper's Table 1 result pattern on the full FE310
//! configuration (51 sources, 32 priority levels).
//!
//! T2 at full scale is solver-heavy (tens of seconds in release, minutes
//! in debug); it runs `#[ignore]`d by default — `cargo test -- --ignored`
//! or the `table1` binary exercise it. A scaled-shape T2 runs here.

use symsc_plic::{PlicConfig, PlicVariant};
use symsc_testbench::{run_test, SuiteParams, TestId};
use symsysc_core::Verifier;

fn full() -> PlicConfig {
    PlicConfig::fe310()
}

fn outcome(test: TestId, config: PlicConfig) -> symsysc_core::TestOutcome {
    run_test(
        test,
        config,
        &SuiteParams::default(),
        &Verifier::new(test.name()),
    )
}

#[test]
fn t1_full_scale_fails_with_exactly_f1() {
    let o = outcome(TestId::T1, full());
    assert_eq!(o.result_label(), "Fail (1)", "{o}");
    let e = &o.report.distinct_errors()[0];
    assert!(e.message.contains("interrupt id out of range"), "{e}");
    let id = e.counterexample.value("i_interrupt");
    assert!(id == 0 || id == 52, "counterexample must be invalid: {id}");
    assert!(o.report.completed, "full state-space exploration");
}

#[test]
#[ignore = "full-scale T2 is solver-heavy; run with --ignored or via the table1 binary"]
fn t2_full_scale_passes() {
    let o = outcome(TestId::T2, full());
    assert!(o.passed(), "{o}");
}

#[test]
fn t2_scaled_shape_passes() {
    let o = outcome(TestId::T2, PlicConfig::fe310_scaled());
    assert!(o.passed(), "{o}");
    assert!(o.report.completed);
}

#[test]
fn t3_full_scale_passes() {
    let o = outcome(TestId::T3, full());
    assert!(o.passed(), "{o}");
    assert!(o.report.completed);
}

#[test]
fn t4_full_scale_fails_with_three_decode_bugs() {
    let o = outcome(TestId::T4, full());
    assert_eq!(o.result_label(), "Fail (3)", "{o}");
}

#[test]
fn t5_full_scale_fails_with_four_bugs_including_the_race() {
    let o = outcome(TestId::T5, full());
    assert_eq!(o.result_label(), "Fail (4)", "{o}");
    assert!(
        o.report
            .distinct_errors()
            .iter()
            .any(|e| e.message.contains("without external interrupt in flight")),
        "the F6 race must be among T5's findings: {o}"
    );
}

#[test]
fn fixed_plic_full_scale_passes_the_fast_tests() {
    let fixed = full().variant(PlicVariant::Fixed);
    for test in [TestId::T1, TestId::T3, TestId::T4, TestId::T5] {
        let o = outcome(test, fixed);
        assert!(o.passed(), "{test} on the fixed PLIC: {o}");
    }
}

#[test]
fn solver_dominates_exploration_time() {
    // The paper: "the solver time vastly dominates the overall execution
    // time in most tests". Check it for a test with real solver work.
    let o = outcome(TestId::T3, full());
    assert!(
        o.report.stats.solver_share() > 50.0,
        "solver share {:.1}% should dominate",
        o.report.stats.solver_share()
    );
}

#[test]
fn testbench_coverage_bins_are_hit() {
    // The suite's functional-coverage bins show the exploration actually
    // drove both sides of the interesting splits.
    let t1 = outcome(TestId::T1, full());
    assert!(t1.report.coverage.contains_key("t1/valid-id"));
    assert!(t1.report.coverage.contains_key("t1/delivered"));
    // Faithful: invalid ids die in the gateway assert *before* the
    // coverage point, so the invalid bin is absent here...
    assert!(!t1.report.coverage.contains_key("t1/invalid-id"));
    // ...but present on the fixed PLIC, which survives invalid ids.
    let t1_fixed = outcome(TestId::T1, full().variant(PlicVariant::Fixed));
    assert!(t1_fixed.report.coverage.contains_key("t1/invalid-id"));

    let t3 = outcome(TestId::T3, full());
    assert!(t3.report.coverage.contains_key("t3/fired"));
    assert!(t3.report.coverage.contains_key("t3/masked"));

    let t4 = outcome(TestId::T4, full());
    assert!(t4.report.coverage.contains_key("t4/accepted"));
    // Faithful T4 rejections are panics, not TLM errors, so the rejected
    // bin belongs to the fixed PLIC.
    let t4_fixed = outcome(TestId::T4, full().variant(PlicVariant::Fixed));
    assert!(t4_fixed.report.coverage.contains_key("t4/rejected"));
}

//! Integration: the paper's Table 2 detection pattern.
//!
//! Each cell of Table 2 is "test X detects / does not detect bug Y".
//! Fast combinations run at full FE310 scale; T2-based combinations use
//! the shape-preserving scaled configuration (T2's solver work at full
//! scale is minutes-long; the detection logic is identical).

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Kernel, SimTime};
use symsc_plic::clint::{MSIP_BASE, MTIMECMP_BASE};
use symsc_plic::uart::{IP, TXCTRL, TXDATA};
use symsc_plic::{Clint, InjectedFault, InterruptTarget, PlicConfig, PlicVariant, Uart};
use symsc_symex::{Explorer, SymCtx, SymWord, Width};
use symsc_testbench::{run_test, SuiteParams, TestId};
use symsc_tlm::{BlockingTransport, Command, GenericPayload, ResponseStatus};
use symsysc_core::Verifier;

fn fixed_full() -> PlicConfig {
    PlicConfig::fe310().variant(PlicVariant::Fixed)
}

fn fixed_scaled() -> PlicConfig {
    PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
}

fn detects(test: TestId, config: PlicConfig) -> bool {
    !run_test(
        test,
        config,
        &SuiteParams::default(),
        &Verifier::new(test.name()),
    )
    .passed()
}

#[test]
fn t1_row_full_scale() {
    // Paper row T1: F1 (via faithful), IF1, IF2, IF4, IF5 detected.
    assert!(detects(TestId::T1, PlicConfig::fe310()), "T1 finds F1");
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn)
    ));
    // And the dashes:
    assert!(!detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(!detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn t2_row_scaled() {
    // Paper row T2: IF2, IF3, IF5 detected; IF1, IF4, IF6 dashes.
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If5EarlyClearReturn)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn t3_row_full_scale() {
    // Paper row T3: only IF6.
    assert!(detects(
        TestId::T3,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
    for fault in [
        InjectedFault::If1OffByOneGateway,
        InjectedFault::If2DropNotifyId13,
        InjectedFault::If3SkipRetrigger,
        InjectedFault::If4LateNotifyHighIds,
        InjectedFault::If5EarlyClearReturn,
    ] {
        assert!(
            !detects(TestId::T3, fixed_full().fault(fault)),
            "T3 must not detect {}",
            fault.label()
        );
    }
}

#[test]
fn t4_t5_rows_full_scale() {
    // The interface tests see the decode bugs (on the faithful PLIC) but
    // none of the interrupt-logic faults.
    assert!(detects(TestId::T4, PlicConfig::fe310()));
    assert!(detects(TestId::T5, PlicConfig::fe310()));
    for fault in InjectedFault::ALL {
        assert!(
            !detects(TestId::T4, fixed_full().fault(fault)),
            "T4 must not detect {}",
            fault.label()
        );
        assert!(
            !detects(TestId::T5, fixed_full().fault(fault)),
            "T5 must not detect {}",
            fault.label()
        );
    }
}

#[test]
fn multi_worker_explorer_detects_every_injected_fault() {
    // Table 2's diagonal with the parallel explorer: for each injected
    // fault, its best detecting test still flags it at 4 workers.
    let detects_at = |test: TestId, config: PlicConfig| {
        !run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(4),
        )
        .passed()
    };
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects_at(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn)
    ));
    assert!(detects_at(
        TestId::T3,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn multi_worker_explorer_keeps_the_fixed_plic_clean() {
    // No fault injected: every suite test passes at 4 workers (T2 on the
    // scaled configuration, as in the sequential rows above).
    for test in TestId::ALL {
        let config = if test == TestId::T2 {
            fixed_scaled()
        } else {
            fixed_full()
        };
        let outcome = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(4),
        );
        assert!(
            outcome.passed(),
            "{} must pass on the fixed PLIC at 4 workers: {outcome}",
            test.name()
        );
    }
}

#[test]
fn multi_worker_counterexamples_match_sequential() {
    // The fault-pinpointing models must not depend on the worker count.
    let config = fixed_full().fault(InjectedFault::If2DropNotifyId13);
    for workers in [1, 4] {
        let o = run_test(
            TestId::T1,
            config,
            &SuiteParams::default(),
            &Verifier::new("T1").workers(workers),
        );
        assert_eq!(
            o.report.errors[0].counterexample.value("i_interrupt"),
            13,
            "IF2 pins id 13 at {workers} workers"
        );
    }
}

#[test]
fn flat_and_layered_solver_agree_on_every_detection() {
    // Table 2's cells re-evaluated with the solver stack ablated: the
    // flat-cache configuration must reach exactly the same verdict and
    // pin the same counterexample as the (default) layered stack, for a
    // detected fault, an undetected fault, and the faithful-PLIC bugs.
    let cases = [
        (
            TestId::T1,
            fixed_full().fault(InjectedFault::If2DropNotifyId13),
        ),
        (
            TestId::T1,
            fixed_full().fault(InjectedFault::If3SkipRetrigger),
        ),
        (
            TestId::T2,
            fixed_scaled().fault(InjectedFault::If3SkipRetrigger),
        ),
        (
            TestId::T3,
            fixed_full().fault(InjectedFault::If6ThresholdOffByOne),
        ),
        (TestId::T1, PlicConfig::fe310()),
        (TestId::T4, PlicConfig::fe310()),
    ];
    for (test, config) in cases {
        let layered = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()),
        );
        let flat = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).solver_stack(false),
        );
        assert_eq!(
            layered.passed(),
            flat.passed(),
            "{}: verdict differs between layered and flat solver",
            test.name()
        );
        assert_eq!(
            layered.report.stats.paths,
            flat.report.stats.paths,
            "{}: path count differs between layered and flat solver",
            test.name()
        );
        let cex = |o: &symsysc_core::TestOutcome| {
            o.report
                .errors
                .iter()
                .map(|e| format!("{} @{}: {}", e.message, e.path, e.counterexample))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            cex(&layered),
            cex(&flat),
            "{}: counterexamples differ between layered and flat solver",
            test.name()
        );
    }
}

#[test]
fn if_counterexamples_pinpoint_the_fault() {
    // IF1: the overflow id.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    assert_eq!(o.report.errors[0].counterexample.value("i_interrupt"), 52);

    // IF4: a high id with the stretched latency.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    let id = o.report.errors[0].counterexample.value("i_interrupt");
    assert!(id > 32 && id <= 51, "IF4 fires for high ids, got {id}");

    // IF5: the sticky id 7.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    assert_eq!(o.report.errors[0].counterexample.value("i_interrupt"), 7);
}

// ---------------------------------------------------------------------------
// UART and CLINT rows: the same Table 2 pattern applied to the other two
// IP blocks. Neither peripheral carries built-in fault presets, so the
// bugs are injected on the bus instead: a saboteur transport wrapper
// corrupts selected write transactions on their way in — the TLM-level
// analogue of the PLIC's IF presets (a dropped notification, an
// off-by-one comparison, a late deadline).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BusFault {
    /// The faithful column: every transaction passes through untouched.
    None,
    /// `txdata` writes of byte 0x13 are silently swallowed (the UART
    /// cousin of IF2's dropped notification for one id).
    UartDropByte13,
    /// The programmed watermark lands one too high (the UART cousin of
    /// the IF1/IF6 off-by-one comparisons).
    UartWatermarkOffByOne,
    /// The timer compare point lands one tick late (the CLINT cousin of
    /// IF4's stretched latency).
    ClintLateCompare,
    /// `msip` writes are silently swallowed (the CLINT cousin of IF2).
    ClintDropMsip,
}

/// Wraps a peripheral and corrupts selected writes before forwarding.
struct Saboteur<T> {
    inner: T,
    fault: BusFault,
}

impl<T: BlockingTransport> BlockingTransport for Saboteur<T> {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        if payload.command == Command::Write {
            let addr = payload.address.as_const();
            let value = payload.word(0).as_const();
            match self.fault {
                BusFault::UartDropByte13
                    if addr == Some(TXDATA) && value.map(|v| v & 0xFF) == Some(0x13) =>
                {
                    // Swallowed on the bus; the initiator sees success.
                    payload.response = ResponseStatus::Ok;
                    return;
                }
                BusFault::ClintDropMsip if addr == Some(MSIP_BASE) => {
                    payload.response = ResponseStatus::Ok;
                    return;
                }
                BusFault::UartWatermarkOffByOne if addr == Some(TXCTRL) => {
                    // Bump bits 18:16 by one (works symbolically too).
                    let bumped = payload.word(0).add(&ctx.word32(1 << 16));
                    payload.set_word(0, bumped);
                }
                BusFault::ClintLateCompare if addr == Some(MTIMECMP_BASE) => {
                    let bumped = payload.word(0).add(&ctx.word32(1));
                    payload.set_word(0, bumped);
                }
                _ => {}
            }
        }
        self.inner.b_transport(ctx, kernel, payload);
    }
}

struct IrqCounter {
    fired: u32,
}

impl InterruptTarget for IrqCounter {
    fn trigger_external_interrupt(&mut self) {
        self.fired += 1;
    }
}

fn write32(
    ctx: &SymCtx,
    kernel: &mut Kernel,
    dev: &mut impl BlockingTransport,
    addr: u64,
    value: u32,
) {
    let mut p = GenericPayload::write(ctx, ctx.word32(addr as u32), 4);
    p.set_word(0, ctx.word32(value));
    dev.b_transport(ctx, kernel, &mut p);
    assert!(p.response.is_ok(), "write {addr:#x}");
}

fn read32(
    ctx: &SymCtx,
    kernel: &mut Kernel,
    dev: &mut impl BlockingTransport,
    addr: u64,
) -> SymWord {
    let mut p = GenericPayload::read(ctx, ctx.word32(addr as u32), 4);
    dev.b_transport(ctx, kernel, &mut p);
    assert!(p.response.is_ok(), "read {addr:#x}");
    p.word(0).clone()
}

/// UA — "every queued byte is transmitted, in order": the UART cousin of
/// T1's delivery property. All failures are recorded as path errors
/// (`check_concrete`), so detection is `!report.passed()`.
fn uart_order_detects(fault: BusFault, workers: usize) -> bool {
    let report = Explorer::new().workers(workers).explore(|ctx| {
        let mut kernel = Kernel::new();
        let mut dev = Saboteur {
            inner: Uart::new(ctx, &mut kernel),
            fault,
        };
        kernel.step();
        write32(ctx, &mut kernel, &mut dev, TXCTRL, 1);
        let bytes = [0x10u32, 0x11, 0x12, 0x13, 0x14, 0x15];
        for b in bytes {
            write32(ctx, &mut kernel, &mut dev, TXDATA, b);
        }
        kernel.run_until(SimTime::from_ns(1000));
        let sent = dev.inner.sent_count();
        ctx.check_concrete(sent == bytes.len(), "every queued byte is transmitted");
        for (i, b) in bytes.iter().enumerate().take(sent) {
            ctx.check(
                &dev.inner.sent_byte(i).eq(&ctx.word32(*b)),
                "bytes leave in FIFO order",
            );
        }
    });
    !report.passed()
}

/// UB — the symbolic watermark property: for every watermark w in 0..=6,
/// with the FIFO drained empty, `ip` must equal `0 < w`.
fn uart_watermark_detects(fault: BusFault, workers: usize) -> bool {
    let report = Explorer::new().workers(workers).explore(|ctx| {
        let mut kernel = Kernel::new();
        let mut dev = Saboteur {
            inner: Uart::new(ctx, &mut kernel),
            fault,
        };
        kernel.step();
        let w = ctx.symbolic("watermark", Width::W32);
        ctx.assume(&w.ule(&ctx.word32(6)));
        let mut p = GenericPayload::write(ctx, ctx.word32(TXCTRL as u32), 4);
        p.set_word(0, w.shl(&ctx.word32(16)).or(&ctx.word32(1)));
        dev.b_transport(ctx, &mut kernel, &mut p);
        assert!(p.response.is_ok());
        write32(ctx, &mut kernel, &mut dev, TXDATA, 0x41);
        kernel.run_until(SimTime::from_ns(200));
        let ip = read32(ctx, &mut kernel, &mut dev, IP);
        let got = ip.eq(&ctx.word32(1));
        let want = ctx.word32(0).ult(&w);
        ctx.check(
            &want.implies(&got).and(&got.implies(&want)),
            "ip == (level < watermark) for every watermark",
        );
    });
    !report.passed()
}

/// CA — "the timer fires exactly at the compare point, not before and
/// not after". The 64-bit compare is programmed over the bus: hi word
/// first (clearing the reset value's high half), then lo.
fn clint_deadline_detects(fault: BusFault, workers: usize) -> bool {
    let report = Explorer::new().workers(workers).explore(|ctx| {
        let mut kernel = Kernel::new();
        let clint = Clint::new(ctx, &mut kernel);
        let hart = Rc::new(RefCell::new(IrqCounter { fired: 0 }));
        clint.connect_timer(hart.clone());
        let mut dev = Saboteur {
            inner: clint,
            fault,
        };
        kernel.step();
        write32(ctx, &mut kernel, &mut dev, MTIMECMP_BASE + 4, 0);
        write32(ctx, &mut kernel, &mut dev, MTIMECMP_BASE, 50);
        kernel.run_until(SimTime::from_ns(49));
        ctx.check_concrete(hart.borrow().fired == 0, "not before the deadline");
        kernel.run_until(SimTime::from_ns(50));
        ctx.check_concrete(hart.borrow().fired == 1, "exactly at the deadline");
    });
    !report.passed()
}

/// CB — "an msip write raises the software interrupt".
fn clint_msip_detects(fault: BusFault, workers: usize) -> bool {
    let report = Explorer::new().workers(workers).explore(|ctx| {
        let mut kernel = Kernel::new();
        let clint = Clint::new(ctx, &mut kernel);
        let hart = Rc::new(RefCell::new(IrqCounter { fired: 0 }));
        clint.connect_software(hart.clone());
        let mut dev = Saboteur {
            inner: clint,
            fault,
        };
        kernel.step();
        write32(ctx, &mut kernel, &mut dev, MSIP_BASE, 1);
        ctx.check_concrete(hart.borrow().fired == 1, "msip raises the line");
    });
    !report.passed()
}

#[test]
fn uart_rows() {
    // Faithful column: both UART tests pass on the untouched bus.
    assert!(!uart_order_detects(BusFault::None, 1));
    assert!(!uart_watermark_detects(BusFault::None, 1));
    // UA sees the dropped byte but not the watermark bump (it never
    // looks at the interrupt side).
    assert!(uart_order_detects(BusFault::UartDropByte13, 1));
    assert!(!uart_order_detects(BusFault::UartWatermarkOffByOne, 1));
    // UB is the mirror image: the transmitted byte is 0x41, so the
    // dropper never triggers, while the off-by-one watermark breaks the
    // w = 0 case of the symbolic property.
    assert!(uart_watermark_detects(BusFault::UartWatermarkOffByOne, 1));
    assert!(!uart_watermark_detects(BusFault::UartDropByte13, 1));
}

#[test]
fn clint_rows() {
    // Faithful column: both CLINT tests pass on the untouched bus.
    assert!(!clint_deadline_detects(BusFault::None, 1));
    assert!(!clint_msip_detects(BusFault::None, 1));
    // CA pins the one-tick-late compare; msip is off its path.
    assert!(clint_deadline_detects(BusFault::ClintLateCompare, 1));
    assert!(!clint_deadline_detects(BusFault::ClintDropMsip, 1));
    // CB pins the swallowed msip write; the timer is off its path.
    assert!(clint_msip_detects(BusFault::ClintDropMsip, 1));
    assert!(!clint_msip_detects(BusFault::ClintLateCompare, 1));
}

#[test]
fn uart_and_clint_detection_survives_parallel_exploration() {
    // The diagonal of the new rows at 4 workers, mirroring
    // `multi_worker_explorer_detects_every_injected_fault`.
    assert!(uart_order_detects(BusFault::UartDropByte13, 4));
    assert!(uart_watermark_detects(BusFault::UartWatermarkOffByOne, 4));
    assert!(clint_deadline_detects(BusFault::ClintLateCompare, 4));
    assert!(clint_msip_detects(BusFault::ClintDropMsip, 4));
    // And the clean column stays clean in parallel.
    assert!(!uart_watermark_detects(BusFault::None, 4));
    assert!(!clint_deadline_detects(BusFault::None, 4));
}

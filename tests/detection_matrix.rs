//! Integration: the paper's Table 2 detection pattern.
//!
//! Each cell of Table 2 is "test X detects / does not detect bug Y".
//! Fast combinations run at full FE310 scale; T2-based combinations use
//! the shape-preserving scaled configuration (T2's solver work at full
//! scale is minutes-long; the detection logic is identical).

use symsc_plic::{InjectedFault, PlicConfig, PlicVariant};
use symsc_testbench::{run_test, SuiteParams, TestId};
use symsysc_core::Verifier;

fn fixed_full() -> PlicConfig {
    PlicConfig::fe310().variant(PlicVariant::Fixed)
}

fn fixed_scaled() -> PlicConfig {
    PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
}

fn detects(test: TestId, config: PlicConfig) -> bool {
    !run_test(
        test,
        config,
        &SuiteParams::default(),
        &Verifier::new(test.name()),
    )
    .passed()
}

#[test]
fn t1_row_full_scale() {
    // Paper row T1: F1 (via faithful), IF1, IF2, IF4, IF5 detected.
    assert!(detects(TestId::T1, PlicConfig::fe310()), "T1 finds F1");
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn)
    ));
    // And the dashes:
    assert!(!detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(!detects(
        TestId::T1,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn t2_row_scaled() {
    // Paper row T2: IF2, IF3, IF5 detected; IF1, IF4, IF6 dashes.
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If5EarlyClearReturn)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(!detects(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn t3_row_full_scale() {
    // Paper row T3: only IF6.
    assert!(detects(
        TestId::T3,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
    for fault in [
        InjectedFault::If1OffByOneGateway,
        InjectedFault::If2DropNotifyId13,
        InjectedFault::If3SkipRetrigger,
        InjectedFault::If4LateNotifyHighIds,
        InjectedFault::If5EarlyClearReturn,
    ] {
        assert!(
            !detects(TestId::T3, fixed_full().fault(fault)),
            "T3 must not detect {}",
            fault.label()
        );
    }
}

#[test]
fn t4_t5_rows_full_scale() {
    // The interface tests see the decode bugs (on the faithful PLIC) but
    // none of the interrupt-logic faults.
    assert!(detects(TestId::T4, PlicConfig::fe310()));
    assert!(detects(TestId::T5, PlicConfig::fe310()));
    for fault in InjectedFault::ALL {
        assert!(
            !detects(TestId::T4, fixed_full().fault(fault)),
            "T4 must not detect {}",
            fault.label()
        );
        assert!(
            !detects(TestId::T5, fixed_full().fault(fault)),
            "T5 must not detect {}",
            fault.label()
        );
    }
}

#[test]
fn multi_worker_explorer_detects_every_injected_fault() {
    // Table 2's diagonal with the parallel explorer: for each injected
    // fault, its best detecting test still flags it at 4 workers.
    let detects_at = |test: TestId, config: PlicConfig| {
        !run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(4),
        )
        .passed()
    };
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If2DropNotifyId13)
    ));
    assert!(detects_at(
        TestId::T2,
        fixed_scaled().fault(InjectedFault::If3SkipRetrigger)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds)
    ));
    assert!(detects_at(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn)
    ));
    assert!(detects_at(
        TestId::T3,
        fixed_full().fault(InjectedFault::If6ThresholdOffByOne)
    ));
}

#[test]
fn multi_worker_explorer_keeps_the_fixed_plic_clean() {
    // No fault injected: every suite test passes at 4 workers (T2 on the
    // scaled configuration, as in the sequential rows above).
    for test in TestId::ALL {
        let config = if test == TestId::T2 {
            fixed_scaled()
        } else {
            fixed_full()
        };
        let outcome = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).workers(4),
        );
        assert!(
            outcome.passed(),
            "{} must pass on the fixed PLIC at 4 workers: {outcome}",
            test.name()
        );
    }
}

#[test]
fn multi_worker_counterexamples_match_sequential() {
    // The fault-pinpointing models must not depend on the worker count.
    let config = fixed_full().fault(InjectedFault::If2DropNotifyId13);
    for workers in [1, 4] {
        let o = run_test(
            TestId::T1,
            config,
            &SuiteParams::default(),
            &Verifier::new("T1").workers(workers),
        );
        assert_eq!(
            o.report.errors[0].counterexample.value("i_interrupt"),
            13,
            "IF2 pins id 13 at {workers} workers"
        );
    }
}

#[test]
fn flat_and_layered_solver_agree_on_every_detection() {
    // Table 2's cells re-evaluated with the solver stack ablated: the
    // flat-cache configuration must reach exactly the same verdict and
    // pin the same counterexample as the (default) layered stack, for a
    // detected fault, an undetected fault, and the faithful-PLIC bugs.
    let cases = [
        (
            TestId::T1,
            fixed_full().fault(InjectedFault::If2DropNotifyId13),
        ),
        (
            TestId::T1,
            fixed_full().fault(InjectedFault::If3SkipRetrigger),
        ),
        (
            TestId::T2,
            fixed_scaled().fault(InjectedFault::If3SkipRetrigger),
        ),
        (
            TestId::T3,
            fixed_full().fault(InjectedFault::If6ThresholdOffByOne),
        ),
        (TestId::T1, PlicConfig::fe310()),
        (TestId::T4, PlicConfig::fe310()),
    ];
    for (test, config) in cases {
        let layered = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()),
        );
        let flat = run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()).solver_stack(false),
        );
        assert_eq!(
            layered.passed(),
            flat.passed(),
            "{}: verdict differs between layered and flat solver",
            test.name()
        );
        assert_eq!(
            layered.report.stats.paths,
            flat.report.stats.paths,
            "{}: path count differs between layered and flat solver",
            test.name()
        );
        let cex = |o: &symsysc_core::TestOutcome| {
            o.report
                .errors
                .iter()
                .map(|e| format!("{} @{}: {}", e.message, e.path, e.counterexample))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            cex(&layered),
            cex(&flat),
            "{}: counterexamples differ between layered and flat solver",
            test.name()
        );
    }
}

#[test]
fn if_counterexamples_pinpoint_the_fault() {
    // IF1: the overflow id.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If1OffByOneGateway),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    assert_eq!(o.report.errors[0].counterexample.value("i_interrupt"), 52);

    // IF4: a high id with the stretched latency.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If4LateNotifyHighIds),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    let id = o.report.errors[0].counterexample.value("i_interrupt");
    assert!(id > 32 && id <= 51, "IF4 fires for high ids, got {id}");

    // IF5: the sticky id 7.
    let o = run_test(
        TestId::T1,
        fixed_full().fault(InjectedFault::If5EarlyClearReturn),
        &SuiteParams::default(),
        &Verifier::new("T1"),
    );
    assert_eq!(o.report.errors[0].counterexample.value("i_interrupt"), 7);
}

//! Offline drop-in shim for the subset of the `criterion` API our benches
//! use.
//!
//! The workspace must build with no network access, so it cannot depend on
//! the real `criterion` from crates.io (even an unused optional registry
//! dependency breaks offline lockfile resolution). This in-tree package
//! shadows it by name and implements just enough of the API —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — that the bench
//! sources in `crates/bench/benches/` compile and run unmodified.
//!
//! It is a measurement shim, not a statistics engine: each benchmark runs
//! a warm-up pass plus `sample_size` timed iterations and prints the mean
//! wall-clock time per iteration. Swap the real crate back in when network
//! access is available; no bench source needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to each benchmark function, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark under this group's prefix.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark, passing `input` to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (The real criterion emits summary plots here; the
    /// shim has nothing left to do.)
    pub fn finish(self) {}
}

/// Identifies one parameterization of a benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget (after one
    /// untimed warm-up call) and prints the mean time per iteration.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        let per_iter = total.as_nanos() / u128::from(self.iters.max(1));
        println!("    {} iters, {} ns/iter", self.iters, per_iter);
    }
}

fn run_benchmark<F>(name: &str, sample_size: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    println!("bench: {name}");
    let mut bencher = Bencher { iters: sample_size };
    f(&mut bencher);
}

/// Bundles benchmark functions into a group runner, like the real
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main()` running the listed groups, like the real
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("named", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(51).0, "51");
    }
}

//! The verification front-end: named symbolic tests with Table-1-style
//! result rows and counterexample replay.

use std::fmt;
use std::time::Duration;

use symsc_symex::{
    Counterexample, ExploreOrder, Explorer, ForkStrategy, Report, SearchStrategy, SymCtx,
};

/// The result of running one named symbolic test.
#[derive(Clone, Debug)]
pub struct TestOutcome {
    /// The test's name (e.g. `"T1"`).
    pub name: String,
    /// The full exploration report.
    pub report: Report,
}

impl TestOutcome {
    /// Whether no errors were found (the paper's *Pass*).
    pub fn passed(&self) -> bool {
        self.report.passed()
    }

    /// `"Pass"` or `"Fail (n)"` with the number of *distinct* detected
    /// failures, exactly as the paper's Table 1 reports it.
    pub fn result_label(&self) -> String {
        if self.passed() {
            "Pass".to_string()
        } else {
            format!("Fail ({})", self.report.distinct_errors().len())
        }
    }

    /// The columns of the paper's Table 1 for this test:
    /// `(Test, Result, #Exec. ops, Time [s], Paths, Solver %)`.
    pub fn table_row(&self) -> [String; 6] {
        let s = &self.report.stats;
        [
            self.name.clone(),
            self.result_label(),
            s.instructions.to_string(),
            format!("{:.2}", s.time.as_secs_f64()),
            s.paths.to_string(),
            format!("{:.2} %", s.solver_share()),
        ]
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.name)?;
        write!(f, "{}", self.report)
    }
}

/// Runs symbolic testbenches against a DUV and reports results.
///
/// Thin, deliberately: the heavy lifting is in
/// [`Explorer`]; the verifier adds naming, budget
/// configuration and the replay convenience.
#[derive(Clone, Debug)]
pub struct Verifier {
    name: String,
    explorer: Explorer,
}

impl Verifier {
    /// A verifier for a test named `name` with default budgets.
    pub fn new(name: &str) -> Verifier {
        Verifier {
            name: name.to_string(),
            explorer: Explorer::new(),
        }
    }

    /// Caps explored paths.
    pub fn max_paths(mut self, paths: u64) -> Verifier {
        self.explorer = self.explorer.max_paths(paths);
        self
    }

    /// Caps the exploration wall-clock time.
    pub fn timeout(mut self, timeout: Duration) -> Verifier {
        self.explorer = self.explorer.timeout(timeout);
        self
    }

    /// Caps decisions per path.
    pub fn max_path_decisions(mut self, decisions: u64) -> Verifier {
        self.explorer = self.explorer.max_path_decisions(decisions);
        self
    }

    /// Toggles the solver's whole-query cache (for ablations).
    pub fn query_cache(mut self, enabled: bool) -> Verifier {
        self.explorer = self.explorer.query_cache(enabled);
        self
    }

    /// Toggles the layered solver stack's cache layers (counterexample
    /// cache and model-reuse witnesses; for ablations). Reports are
    /// identical either way — only solve time and layer statistics change.
    pub fn solver_stack(mut self, enabled: bool) -> Verifier {
        self.explorer = self.explorer.solver_stack(enabled);
        self
    }

    /// Toggles the incremental per-path SAT context (for ablations).
    /// Reports are identical either way — only core work and the
    /// incremental statistics change.
    pub fn incremental(mut self, enabled: bool) -> Verifier {
        self.explorer = self.explorer.incremental(enabled);
        self
    }

    /// Selects the path-selection strategy (default: depth-first).
    pub fn strategy(mut self, strategy: SearchStrategy) -> Verifier {
        self.explorer = self.explorer.strategy(strategy);
        self
    }

    /// Selects how branch forks are materialized (default: copy-on-write
    /// snapshots; [`ForkStrategy::Reexec`] re-solves forked prefixes from
    /// scratch and serves as the differential oracle). Reports are
    /// identical either way — only fork cost and the snapshot statistics
    /// change.
    pub fn fork_strategy(mut self, fork: ForkStrategy) -> Verifier {
        self.explorer = self.explorer.fork_strategy(fork);
        self
    }

    /// Selects the exploration order (default: exhaustive).
    /// [`ExploreOrder::MergeEager`] adopts finished join-point subtrees
    /// instead of re-executing them; [`ExploreOrder::CoverageGuided`]
    /// steers the sequential visitation toward unvisited fork
    /// directions. Reports are identical either way — only executed-path
    /// and merge/scheduler statistics change.
    pub fn explore_order(mut self, order: ExploreOrder) -> Verifier {
        self.explorer = self.explorer.explore_order(order);
        self
    }

    /// Sets the number of exploration worker threads (`0` = one per
    /// available hardware thread, `1` = sequential).
    pub fn workers(mut self, workers: usize) -> Verifier {
        self.explorer = self.explorer.workers(workers);
        self
    }

    /// Access to the configured explorer (for advanced callers).
    pub fn explorer(&self) -> &Explorer {
        &self.explorer
    }

    /// Runs the testbench to full state-space exploration (or budget).
    pub fn run<F: Fn(&SymCtx) + Sync>(&self, testbench: F) -> TestOutcome {
        TestOutcome {
            name: self.name.clone(),
            report: self.explorer.explore(testbench),
        }
    }

    /// Replays a counterexample concretely through the same testbench;
    /// the error must reproduce on the single resulting path.
    pub fn replay<F: FnMut(&SymCtx)>(
        &self,
        counterexample: &Counterexample,
        testbench: F,
    ) -> TestOutcome {
        TestOutcome {
            name: format!("{} (replay)", self.name),
            report: self.explorer.replay(counterexample, testbench),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::Width;

    fn overflowing_bench(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        let one = ctx.word(1, Width::W8);
        let y = x.add(&one);
        ctx.check(&y.ugt(&x), "increment grows");
    }

    #[test]
    fn pass_and_fail_labels() {
        let ok = Verifier::new("ok").run(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.check(&x.ule(&ctx.word(255, Width::W8)), "trivial");
        });
        assert_eq!(ok.result_label(), "Pass");

        let bad = Verifier::new("bad").run(overflowing_bench);
        assert_eq!(bad.result_label(), "Fail (1)");
    }

    #[test]
    fn table_row_has_six_columns() {
        let outcome = Verifier::new("T9").run(overflowing_bench);
        let row = outcome.table_row();
        assert_eq!(row[0], "T9");
        assert!(row[1].starts_with("Fail"));
        assert!(row[2].parse::<u64>().unwrap() > 0, "ops executed");
        assert!(row[4].parse::<u64>().unwrap() >= 1, "paths");
        assert!(row[5].ends_with('%'));
    }

    #[test]
    fn replay_through_the_verifier() {
        let v = Verifier::new("replayable");
        let outcome = v.run(overflowing_bench);
        let cex = outcome.report.errors[0].counterexample.clone();
        assert_eq!(cex.value("x"), 255);
        let replayed = v.replay(&cex, overflowing_bench);
        assert!(!replayed.passed());
        assert_eq!(replayed.report.stats.paths, 1);
        assert!(replayed.name.contains("replay"));
    }

    #[test]
    fn budgets_are_honored() {
        let outcome = Verifier::new("tight").max_paths(1).run(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            let _ = ctx.decide(&x.eq(&zero));
        });
        assert!(!outcome.report.completed);
        assert_eq!(outcome.report.stats.paths, 1);
    }

    #[test]
    fn display_mentions_name_and_verdict() {
        let outcome = Verifier::new("shown").run(overflowing_bench);
        let text = outcome.to_string();
        assert!(text.contains("shown"));
        assert!(text.contains("FAIL"));
    }
}

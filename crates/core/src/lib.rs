//! # symsysc-core — the TLM-peripheral verification flow
//!
//! This crate glues the workspace into the pipeline of the reproduced
//! paper's Fig. 2:
//!
//! ```text
//!   DUV (TLM peripheral) ──translated──▶ PK processes      ③ symsc-pk
//!            │                                │
//!            ▼                                ▼
//!   testbench (assume/assert) ──────▶ symbolic engine       ⑤ symsc-symex
//!            │                                │
//!            ▼                                ▼
//!        Verifier  ───────────────▶  report + counterexamples
//!            │
//!            ▼
//!        replay (concrete re-execution of a counterexample) ⑥
//! ```
//!
//! A [`Verifier`] wraps the exploration engine with test naming, budgets
//! and result presentation (the row format of the paper's Table 1), plus
//! one-call counterexample replay. The [`prelude`] re-exports everything a
//! testbench needs.
//!
//! # Example
//!
//! ```
//! use symsysc_core::prelude::*;
//! use symsysc_core::Verifier;
//!
//! let outcome = Verifier::new("t_demo").run(|ctx| {
//!     let x = ctx.symbolic("x", Width::W8);
//!     let limit = ctx.word(100, Width::W8);
//!     ctx.assume(&x.ult(&limit));
//!     let doubled = x.add(&x);
//!     ctx.check(&doubled.ult(&ctx.word(200, Width::W8)), "no overflow below 100");
//! });
//! assert!(outcome.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;
pub mod verifier;

pub use table::Table;
pub use verifier::{TestOutcome, Verifier};

/// Everything a symbolic TLM testbench typically imports.
pub mod prelude {
    pub use symsc_pk::{Event, Kernel, NotifyKind, Process, ProcessCtx, SimTime, Suspend};
    pub use symsc_symex::{
        Counterexample, ErrorKind, ExploreOrder, Explorer, ForkStrategy, Report, SearchStrategy,
        StateDigest, SymArray, SymBool, SymCtx, SymWord, Width,
    };
    pub use symsc_tlm::{
        Access, BlockingTransport, CheckMode, Command, GenericPayload, Region, RegisterBank,
        RegisterModel, ResponseStatus,
    };
}

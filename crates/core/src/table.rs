//! Plain-text table rendering for the benchmark binaries.
//!
//! The harness regenerates the paper's tables on stdout; this module keeps
//! the column alignment logic in one tested place.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use symsysc_core::Table;
/// let mut t = Table::new(&["Test", "Result"]);
/// t.row(&["T1", "Fail (1)"]);
/// t.row(&["T2", "Pass"]);
/// let text = t.to_string();
/// assert!(text.contains("T1"));
/// assert!(text.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(widths.iter()) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string().lines().count(), 2);
    }
}

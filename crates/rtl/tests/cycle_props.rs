//! Property tests: seeded random concrete stimulus driving the
//! cycle-level PLIC against the purely concrete [`ReferencePlic`] oracle
//! over thousands of cycles.
//!
//! The stimulus is fully concrete, so every symbolic term the model
//! builds constant-folds and each walk is a single exploration path; the
//! value of the suite is volume (every posedge cross-checks lines,
//! pending bits, the delivery scan and the claim stream) and the seeded
//! reproducibility of any divergence.

use symsc_plic::{PlicConfig, PlicVariant, ReferencePlic};
use symsc_rng::Rng;
use symsc_rtl::CyclePlic;
use symsc_symex::{Explorer, SymCtx};

fn fixed() -> PlicConfig {
    PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
}

/// The notification-protocol shadow: the reference model is purely
/// functional, so the walk tracks the cycle model's single-slot
/// notification countdown itself (the same protocol the concrete fuzz
/// harness uses against the TLM model).
struct Shadow {
    due: Option<u32>,
    eip: bool,
    rises: u32,
}

impl Shadow {
    fn schedule(&mut self, cycles: u32) {
        self.due = Some(match self.due {
            Some(d) if d <= cycles => d,
            _ => cycles,
        });
    }

    fn posedge(&mut self, oracle: &ReferencePlic) {
        match self.due {
            Some(d) if d <= 1 => {
                self.due = None;
                if !self.eip && oracle.next_deliverable().is_some() {
                    self.eip = true;
                    self.rises += 1;
                }
            }
            Some(d) => self.due = Some(d - 1),
            None => {}
        }
    }
}

/// Cross-checks every observable after a posedge: the interrupt line,
/// the rise count, the delivery scan, and the whole pending bitmap.
fn check_observables(ctx: &SymCtx, model: &CyclePlic, oracle: &ReferencePlic, shadow: &Shadow) {
    ctx.check_concrete(
        model.eip() == shadow.eip,
        "interrupt line matches reference",
    );
    ctx.check_concrete(
        model.rises() == shadow.rises,
        "notification count matches reference",
    );
    let best = oracle.next_deliverable().unwrap_or(0);
    ctx.check(
        &model.next_request(0, true).eq(&ctx.word32(best)),
        "delivery scan matches reference",
    );
    let config = model.config();
    for w in 0..config.bitmap_words() as u32 {
        let mut expected = 0u32;
        for b in 0..32 {
            let irq = w * 32 + b;
            if irq >= 1 && irq <= config.sources && oracle.is_pending(irq) {
                expected |= 1 << b;
            }
        }
        ctx.check(
            &model
                .read_pending_word(&ctx.word32(w))
                .eq(&ctx.word32(expected)),
            "pending bitmap matches reference",
        );
    }
}

/// One seeded random walk of `cycles` posedges with interleaved register
/// traffic, triggers and claim/complete handshakes.
fn random_walk(ctx: &SymCtx, seed: u64, cycles: u32) {
    let config = fixed();
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = CyclePlic::new(ctx, config);
    let mut oracle = ReferencePlic::new(config.sources);
    let mut shadow = Shadow {
        due: None,
        eip: false,
        rises: 0,
    };
    // The test's own mirror of the enable words (the model takes whole
    // 32-bit register writes, the oracle per-source bits).
    let mut enable_words = vec![0u32; config.bitmap_words()];

    for _ in 0..cycles {
        match rng.gen_range_inclusive(0, 99) {
            // Sparse priority range so ties are common.
            0..=14 => {
                let irq = rng.gen_range_inclusive(1, u64::from(config.sources)) as u32;
                let prio = rng.gen_range_inclusive(0, 3) as u32;
                model.write_priority_word(&ctx.word32(irq - 1), &ctx.word32(prio));
                oracle.set_priority(irq, prio);
            }
            15..=29 => {
                let irq = rng.gen_range_inclusive(1, u64::from(config.sources)) as u32;
                let on = rng.gen_range_inclusive(0, 1) == 1;
                let (w, b) = ((irq / 32) as usize, irq % 32);
                if on {
                    enable_words[w] |= 1 << b;
                } else {
                    enable_words[w] &= !(1 << b);
                }
                model.write_enable_word(0, &ctx.word32(w as u32), &ctx.word32(enable_words[w]));
                oracle.set_enabled(irq, on);
            }
            // Low thresholds so delivery actually happens.
            30..=36 => {
                let thr = rng.gen_range_inclusive(0, 2) as u32;
                model.write_threshold(0, &ctx.word32(thr));
                oracle.set_threshold(thr);
            }
            // Triggers range over 0..=sources+1: the fixed gateway must
            // drop both invalid ends silently.
            37..=64 => {
                let irq = rng.gen_range_inclusive(0, u64::from(config.sources) + 1) as u32;
                model.trigger(&ctx.word32(irq));
                if oracle.trigger(irq).is_ok() {
                    shadow.schedule(1);
                }
            }
            65..=79 => {
                let id = model.claim(0);
                let expected = oracle.claim();
                ctx.check(
                    &id.eq(&ctx.word32(expected)),
                    "claimed id matches reference",
                );
            }
            // Completes fire whether or not a claim is in flight — the
            // fixed variant tolerates spurious completion.
            80..=89 => {
                model.complete(0, &ctx.word32(0));
                shadow.eip = false;
                shadow.schedule(1);
            }
            _ => {}
        }
        model.posedge();
        shadow.posedge(&oracle);
        check_observables(ctx, &model, &oracle, &shadow);
    }
}

#[test]
fn seeded_random_walks_match_the_reference() {
    for seed in [1, 0xDEC0DE, 0x5EED_CAFE, u64::MAX / 7] {
        let report = Explorer::new().explore(|ctx| random_walk(ctx, seed, 1500));
        assert!(report.passed(), "seed {seed:#x}: {report}");
    }
}

#[test]
fn priority_ties_drain_in_ascending_id_order() {
    let report = Explorer::new().explore(|ctx| {
        let config = fixed();
        let mut model = CyclePlic::new(ctx, config);
        let mut oracle = ReferencePlic::new(config.sources);
        model.enable_all();
        let mut rng = Rng::seed_from_u64(0x71E5);
        for irq in 1..=config.sources {
            model.write_priority_word(&ctx.word32(irq - 1), &ctx.word32(2));
            oracle.set_priority(irq, 2);
            oracle.set_enabled(irq, true);
        }
        // Trigger a random subset; equal priorities must drain lowest
        // id first at both levels.
        for irq in 1..=config.sources {
            if rng.gen_range_inclusive(0, 1) == 1 {
                model.trigger(&ctx.word32(irq));
                oracle.trigger(irq).unwrap();
            }
        }
        model.posedge();
        for expected in oracle.drain() {
            let id = model.claim(0);
            ctx.check(&id.eq(&ctx.word32(expected)), "tie drains lowest id first");
        }
        let id = model.claim(0);
        ctx.check(&id.eq(&ctx.word32(0)), "drained model claims 0");
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn threshold_boundary_gates_delivery_but_not_claim() {
    let report = Explorer::new().explore(|ctx| {
        let config = fixed();
        for (prio, thr, delivers) in [(2u32, 2u32, false), (3, 2, true), (1, 0, true)] {
            let mut model = CyclePlic::new(ctx, config);
            model.enable_all();
            model.write_priority_word(&ctx.word32(4), &ctx.word32(prio));
            model.write_threshold(0, &ctx.word32(thr));
            model.trigger(&ctx.word32(5));
            model.posedge();
            ctx.check_concrete(
                model.eip() == delivers,
                "delivery honors the strict threshold comparison",
            );
            let id = model.claim(0);
            ctx.check(
                &id.eq(&ctx.word32(5)),
                "claim ignores the threshold (per spec)",
            );
        }
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn spurious_claim_returns_zero_and_changes_nothing() {
    let report = Explorer::new().explore(|ctx| {
        let mut model = CyclePlic::new(ctx, fixed());
        model.enable_all();
        let mark = model.state_mark();
        let id = model.claim(0);
        ctx.check(&id.eq(&ctx.word32(0)), "claim on idle controller is 0");
        assert_eq!(
            model.state_mark(),
            mark,
            "spurious claim is side-effect-free"
        );
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn complete_without_claim_is_tolerated_by_the_fixed_variant() {
    let report = Explorer::new().explore(|ctx| {
        let mut model = CyclePlic::new(ctx, fixed());
        model.complete(0, &ctx.word32(3));
        model.posedge();
        ctx.check_concrete(!model.eip(), "nothing to redeliver");
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn complete_without_claim_trips_the_faithful_assertion() {
    let report = Explorer::new().explore(|ctx| {
        let mut model = CyclePlic::new(ctx, PlicConfig::fe310_scaled());
        model.complete(0, &ctx.word32(3));
    });
    assert!(!report.passed(), "the faithful variant must assert");
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.message.contains("without external interrupt in flight")),
        "{report}"
    );
}

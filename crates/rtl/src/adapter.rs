//! The cycle-accurate adapter: the timing contract between loosely-timed
//! TLM transactions and the clocked [`CyclePlic`].
//!
//! # Timing table
//!
//! The contract pinned here (and by the unit tests below) is what makes
//! a TLM trace and a cycle trace comparable at all:
//!
//! | TLM-side event                          | Cycle-side effect                         |
//! |-----------------------------------------|-------------------------------------------|
//! | `b_transport` register access           | 0 edges — combinational, completes within the current cycle |
//! | `kernel.run_until(now + k·clock_cycle)` | `advance(now + k·clock_cycle)` → exactly `k` posedges |
//! | `trigger_interrupt(irq)`                | IP bit latches in the *current* cycle (0 edges) |
//! | gateway notification → delivery scan    | notification register rises 1 edge after the trigger (IF4-stretched ids: `factor` edges) |
//! | claim read (`CLAIM_BASE`)               | comparison tree resolves combinationally; IP clears in the same cycle |
//! | complete write (`CLAIM_BASE`)           | notification register drops combinationally; rescan fires 1 edge later |
//!
//! Reads are side-effect-free except claim; back-to-back claims within
//! one cycle each resolve against the state the previous claim left
//! behind (the tree is combinational, the IP clear is immediate), which
//! matches the TLM model's blocking-transport semantics exactly. A read
//! issued *mid-handshake* — after claim, before complete — must see the
//! claimed source's IP bit already clear at both levels.

use symsc_pk::SimTime;
use symsc_plic::config::{
    CONTEXT_STRIDE, ENABLE_BASE, ENABLE_STRIDE, PENDING_BASE, PRIORITY_BASE, THRESHOLD_BASE,
};
use symsc_plic::PlicConfig;
use symsc_symex::{SymCtx, SymWord};
use symsc_tlm::{Command, GenericPayload, ResponseStatus};

use crate::cycle::{CyclePlic, CycleSnapshot};

/// Drives a [`CyclePlic`] on the TLM testbench's clock: simulated-time
/// deltas become posedges, register-file accesses stay combinational.
pub struct CycleAdapter {
    model: CyclePlic,
    ctx: SymCtx,
    clock: SimTime,
    /// Simulated time up to which the model has been clocked.
    clocked_to: SimTime,
}

impl CycleAdapter {
    /// A fresh adapter over a reset [`CyclePlic`]. `clock` is the TLM
    /// configuration's `clock_cycle`, so one kernel quantum equals one
    /// posedge.
    pub fn new(ctx: &SymCtx, config: PlicConfig, clock: SimTime) -> CycleAdapter {
        CycleAdapter {
            model: CyclePlic::new(ctx, config),
            ctx: ctx.clone(),
            clock,
            clocked_to: SimTime::ZERO,
        }
    }

    /// The wrapped cycle-level model.
    pub fn model(&self) -> &CyclePlic {
        &self.model
    }

    /// Mutable access to the wrapped model (fault injection in tests).
    pub fn model_mut(&mut self) -> &mut CyclePlic {
        &mut self.model
    }

    /// The clock period the adapter converts simulated time with.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Simulated time the model has been clocked to.
    pub fn clocked_to(&self) -> SimTime {
        self.clocked_to
    }

    /// Clocks the model forward to simulated time `to`: one posedge per
    /// whole clock period elapsed. Partial periods remain pending, so
    /// interleaved `advance` calls never double-clock an edge.
    pub fn advance(&mut self, to: SimTime) {
        while self.clocked_to + self.clock <= to {
            self.model.posedge();
            self.clocked_to += self.clock;
        }
    }

    /// An interrupt line fires (0 edges: the IP latch is set in the
    /// current cycle, mirroring the TLM gateway's immediate store).
    pub fn trigger(&mut self, irq: &SymWord) {
        self.model.trigger(irq);
    }

    /// A claim by `hart` (combinational: resolves and clears in-cycle).
    pub fn claim(&mut self, hart: usize) -> SymWord {
        self.model.claim(hart)
    }

    /// A completion by `hart` (combinational drop, rescan next edge).
    pub fn complete(&mut self, hart: usize, completed_id: &SymWord) {
        self.model.complete(hart, completed_id);
    }

    /// Routes a TLM payload with a *concrete* address to the matching
    /// typed register accessor — the decode mirror of the TLM model's
    /// `PlicRegs`, used by the adapter unit tests and the concrete fuzz
    /// lane. Symbolic-address traffic should use the typed accessors
    /// directly; a payload whose address has no concrete value gets
    /// [`ResponseStatus::AddressError`].
    pub fn transport(&mut self, payload: &mut GenericPayload) {
        let Some(addr) = payload.address.as_const() else {
            payload.response = ResponseStatus::AddressError;
            return;
        };
        let config = self.model.config();
        let sources = u64::from(config.sources);
        let bitmap_words = config.bitmap_words() as u64;
        let harts = u64::from(config.harts);
        let priority_end = PRIORITY_BASE + 4 * sources;
        let pending_end = PENDING_BASE + 4 * bitmap_words;
        let enable_end = ENABLE_BASE + ENABLE_STRIDE * (harts - 1) + 4 * bitmap_words;
        let word = |offset: u64, base: u64| self.ctx.word32(((offset - base) / 4) as u32);
        let response = match payload.command {
            Command::Read => {
                let value = if (PRIORITY_BASE..priority_end).contains(&addr) {
                    Some(self.model.read_priority_word(&word(addr, PRIORITY_BASE)))
                } else if (PENDING_BASE..pending_end).contains(&addr) {
                    Some(self.model.read_pending_word(&word(addr, PENDING_BASE)))
                } else if (ENABLE_BASE..enable_end).contains(&addr) {
                    let hart = ((addr - ENABLE_BASE) / ENABLE_STRIDE) as usize;
                    let offset = (addr - ENABLE_BASE) % ENABLE_STRIDE;
                    (offset < 4 * bitmap_words).then(|| {
                        self.model
                            .read_enable_word(hart, &self.ctx.word32((offset / 4) as u32))
                    })
                } else {
                    self.context_register(addr).map(|(hart, claim)| {
                        if claim {
                            self.model.claim(hart)
                        } else {
                            self.model.read_threshold(hart)
                        }
                    })
                };
                match value {
                    Some(value) => {
                        payload.set_word(0, value);
                        ResponseStatus::Ok
                    }
                    None => ResponseStatus::AddressError,
                }
            }
            Command::Write => {
                let value = payload.word(0).clone();
                if (PRIORITY_BASE..priority_end).contains(&addr) {
                    self.model
                        .write_priority_word(&word(addr, PRIORITY_BASE), &value);
                    ResponseStatus::Ok
                } else if (ENABLE_BASE..enable_end).contains(&addr)
                    && (addr - ENABLE_BASE) % ENABLE_STRIDE < 4 * bitmap_words
                {
                    let hart = ((addr - ENABLE_BASE) / ENABLE_STRIDE) as usize;
                    let offset = (addr - ENABLE_BASE) % ENABLE_STRIDE;
                    self.model.write_enable_word(
                        hart,
                        &self.ctx.word32((offset / 4) as u32),
                        &value,
                    );
                    ResponseStatus::Ok
                } else if let Some((hart, claim)) = self.context_register(addr) {
                    if claim {
                        self.model.complete(hart, &value);
                    } else {
                        self.model.write_threshold(hart, &value);
                    }
                    ResponseStatus::Ok
                } else {
                    ResponseStatus::AddressError
                }
            }
        };
        payload.response = response;
    }

    /// Decodes a context-block address into `(hart, is_claim_register)`.
    fn context_register(&self, addr: u64) -> Option<(usize, bool)> {
        let harts = u64::from(self.model.config().harts);
        if addr < THRESHOLD_BASE {
            return None;
        }
        let hart = (addr - THRESHOLD_BASE) / CONTEXT_STRIDE;
        if hart >= harts {
            return None;
        }
        match addr - THRESHOLD_BASE - hart * CONTEXT_STRIDE {
            0 => Some((hart as usize, false)),
            4 => Some((hart as usize, true)),
            _ => None,
        }
    }

    /// Snapshot of the wrapped model plus the adapter clock position.
    pub fn snapshot(&self) -> (CycleSnapshot, SimTime) {
        (self.model.snapshot(), self.clocked_to)
    }

    /// Restores a snapshot captured by [`snapshot`](CycleAdapter::snapshot).
    pub fn restore(&mut self, snapshot: &(CycleSnapshot, SimTime)) {
        self.model.restore(&snapshot.0);
        self.clocked_to = snapshot.1;
    }

    /// Structural digest of model plus clock position, for fences.
    pub fn state_mark(&self) -> u64 {
        self.model
            .state_mark()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.clocked_to.as_ps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::config::CLAIM_BASE;
    use symsc_plic::PlicVariant;
    use symsc_symex::Explorer;

    fn clock() -> SimTime {
        SimTime::from_ns(10)
    }

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn armed(ctx: &SymCtx) -> CycleAdapter {
        let config = fixed();
        let mut a = CycleAdapter::new(ctx, config, clock());
        for irq in 1..=config.sources {
            a.model_mut()
                .write_priority_word(&ctx.word32(irq - 1), &ctx.word32(1));
        }
        a.model_mut()
            .write_enable_word(0, &ctx.word32(0), &ctx.word32(u32::MAX));
        a
    }

    #[test]
    fn advance_converts_whole_periods_only() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = armed(ctx);
            a.trigger(&ctx.word32(3));
            // Half a period: no edge, no delivery.
            a.advance(SimTime::from_ns(5));
            assert_eq!(a.model().cycles(), 0);
            ctx.check_concrete(!a.model().eip(), "no edge before a full period");
            // Completing the first period plus one more: two edges total.
            a.advance(SimTime::from_ns(20));
            assert_eq!(a.model().cycles(), 2);
            ctx.check_concrete(a.model().eip(), "delivery on the first edge");
            // Re-advancing to the same time is a no-op.
            a.advance(SimTime::from_ns(20));
            assert_eq!(a.model().cycles(), 2);
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn read_mid_handshake_sees_the_claimed_ip_bit_clear() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = armed(ctx);
            a.trigger(&ctx.word32(3));
            a.advance(clock());
            let id = a.claim(0);
            ctx.check(&id.eq(&ctx.word32(3)), "claim resolves the request");
            // Mid-handshake (claim done, complete not yet written): the
            // pending bitmap must already show the bit clear, in the
            // same cycle, with no edge in between.
            let mut read = GenericPayload::read(ctx, ctx.word32(PENDING_BASE as u32), 4);
            a.transport(&mut read);
            assert!(read.response.is_ok());
            ctx.check(
                &read.word(0).eq(&ctx.word32(0)),
                "IP bit clears combinationally with the claim",
            );
            ctx.check_concrete(a.model().eip(), "notification still high mid-handshake");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn back_to_back_claims_in_adjacent_cycles() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = armed(ctx);
            a.model_mut()
                .write_priority_word(&ctx.word32(6), &ctx.word32(3));
            a.trigger(&ctx.word32(2));
            a.trigger(&ctx.word32(7));
            a.advance(clock());
            // Cycle 1: claim the winner, complete, and let the rescan
            // fire on the next edge.
            let id = a.claim(0);
            ctx.check(&id.eq(&ctx.word32(7)), "first claim takes the best request");
            a.complete(0, &id);
            ctx.check_concrete(!a.model().eip(), "complete drops the line in-cycle");
            a.advance(clock() * 2);
            // Cycle 2: the rescan redelivered; the second claim takes
            // the surviving request.
            ctx.check_concrete(a.model().eip(), "rescan fires one edge after complete");
            let id = a.claim(0);
            ctx.check(&id.eq(&ctx.word32(2)), "second claim takes the survivor");
            let id = a.claim(0);
            ctx.check(&id.eq(&ctx.word32(0)), "third claim is spurious");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn transport_decodes_the_register_map() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = CycleAdapter::new(ctx, fixed(), clock());
            // priority[5] at PRIORITY_BASE + 4*(5-1)
            let addr = ctx.word32((PRIORITY_BASE + 16) as u32);
            let mut w = GenericPayload::write(ctx, addr.clone(), 4);
            w.set_word(0, ctx.word32(3));
            a.transport(&mut w);
            assert!(w.response.is_ok());
            let mut r = GenericPayload::read(ctx, addr, 4);
            a.transport(&mut r);
            assert!(r.response.is_ok());
            ctx.check(&r.word(0).eq(&ctx.word32(3)), "priority[5] readback");

            // threshold, hart 0
            let addr = ctx.word32(THRESHOLD_BASE as u32);
            let mut w = GenericPayload::write(ctx, addr.clone(), 4);
            w.set_word(0, ctx.word32(2));
            a.transport(&mut w);
            assert!(w.response.is_ok());
            let mut r = GenericPayload::read(ctx, addr, 4);
            a.transport(&mut r);
            ctx.check(&r.word(0).eq(&ctx.word32(2)), "threshold readback");

            // claim register read on an idle model returns 0
            let mut r = GenericPayload::read(ctx, ctx.word32(CLAIM_BASE as u32), 4);
            a.transport(&mut r);
            assert!(r.response.is_ok());
            ctx.check(&r.word(0).eq(&ctx.word32(0)), "spurious claim is 0");

            // unmapped hole
            let mut r = GenericPayload::read(ctx, ctx.word32(0x3000), 4);
            a.transport(&mut r);
            assert!(!r.response.is_ok());
        });
        assert!(report.passed(), "{report}");
    }
}

//! symsc-rtl — a cycle-level PLIC and the cross-level equivalence
//! harness that checks it against the TLM peripheral.
//!
//! The TLM model in `symsc-plic` is loosely timed: a register access
//! completes in one blocking call, and the delivery scan is an
//! event-driven kernel thread. This crate implements the *same
//! architectural contract* at cycle level — gateway IP latches, a
//! pairwise priority comparison tree, a claim/complete handshake state
//! machine, per-hart notification registers — advancing only on explicit
//! clock edges. [`adapter::CycleAdapter`] pins the timing contract
//! between the two abstraction levels (TLM transaction → N posedges),
//! and [`cross::CrossChecker`] drives both models from one symbolic
//! transaction stream, asserting observable equivalence path by path on
//! the solver.
//!
//! Both models sit on the same symbolic term layer, so a cross-level
//! testbench is still one `Explorer` run: COW forking, state merging and
//! deterministic parallel scheduling apply to the pair exactly as they
//! do to the TLM model alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod cross;
pub mod cycle;

pub use adapter::CycleAdapter;
pub use cross::CrossChecker;
pub use cycle::{CyclePlic, CycleSnapshot};

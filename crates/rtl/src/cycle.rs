//! The cycle-level PLIC: the same architectural contract as the TLM
//! peripheral, implemented as synchronous hardware would be.
//!
//! Where the TLM model is event-driven (the gateway notifies `e_run`, the
//! kernel schedules the run thread), this model is *clocked*: state only
//! advances on [`CyclePlic::posedge`], and the delivery scan is a pending
//! notification countdown in whole clock cycles. Where the TLM model
//! selects the best interrupt with a linear priority scan, this model
//! evaluates an explicit pairwise **comparison tree** — the reduction
//! shape a synthesized priority encoder would have. The two
//! implementations share *no* selection or scheduling code; only the
//! symbolic term layer underneath ([`SymArray`]/[`SymWord`] over
//! copy-on-write storage) is common, which is exactly what makes the
//! cross-level equivalence check meaningful.
//!
//! Every [`MutationOp`] hook of the TLM model is mirrored here with the
//! same semantics (and the same assertion/error strings where the fault
//! is variant-visible), so a mutant can be injected into *either* level
//! and caught by equivalence against the other.

use symsc_plic::{MutationOp, PlicConfig, PlicVariant, ThresholdCmp};
use symsc_symex::{ErrorKind, StateDigest, SymArray, SymBool, SymCtx, SymWord, Width};

/// The cycle-level PLIC model.
///
/// Register state is symbolic ([`SymArray`] flags, [`SymWord`]
/// thresholds) over the engine's copy-on-write storage, so COW forking,
/// state merging and subsumption pruning work on this model unchanged.
/// The handshake state (`eip`, rise counters, the notification countdown)
/// is concrete per path, like the TLM model's `hart_eip`.
pub struct CyclePlic {
    ctx: SymCtx,
    config: PlicConfig,
    /// `priority[irq]`, index 0 unused (id 0 is reserved).
    priorities: SymArray,
    /// Gateway latches: the IP bits, one 1-bit flag per id.
    pending: SymArray,
    /// Per-hart enable flags.
    enabled: Vec<SymArray>,
    /// Per-hart priority threshold registers.
    threshold: Vec<SymWord>,
    /// Per-hart external-interrupt notification registers.
    eip: Vec<bool>,
    /// Per-hart rising-edge counters on the notification line (the
    /// observable the TLM testbenches read from their mock harts).
    rises: Vec<u32>,
    /// Cycles until the delivery scan fires, `None` when idle. A single
    /// slot with earliest-wins scheduling — the synchronous equivalent of
    /// the kernel's timed-notification override rule on `e_run`.
    due: Option<u32>,
    /// Posedges seen since reset (debug/trace only).
    cycles: u64,
}

impl std::fmt::Debug for CyclePlic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CyclePlic")
            .field("config", &self.config)
            .field("eip", &self.eip)
            .field("due", &self.due)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl CyclePlic {
    /// A freshly reset cycle-level PLIC for `config`.
    pub fn new(ctx: &SymCtx, config: PlicConfig) -> CyclePlic {
        let flags = config.sources as usize + 1;
        let harts = config.harts as usize;
        CyclePlic {
            ctx: ctx.clone(),
            config,
            priorities: SymArray::filled(ctx, flags, 0, Width::W32),
            pending: SymArray::filled(ctx, flags, 0, Width::W1),
            enabled: (0..harts)
                .map(|_| SymArray::filled(ctx, flags, 0, Width::W1))
                .collect(),
            threshold: (0..harts).map(|_| ctx.word32(0)).collect(),
            eip: vec![false; harts],
            rises: vec![0; harts],
            due: None,
            cycles: 0,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> PlicConfig {
        self.config
    }

    /// Posedges since reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The hart-0 notification register.
    pub fn eip(&self) -> bool {
        self.eip[0]
    }

    /// The notification register of `hart`.
    pub fn eip_n(&self, hart: usize) -> bool {
        self.eip[hart]
    }

    /// Rising edges seen on hart 0's notification line.
    pub fn rises(&self) -> u32 {
        self.rises[0]
    }

    /// Rising edges seen on `hart`'s notification line.
    pub fn rises_n(&self, hart: usize) -> u32 {
        self.rises[hart]
    }

    // ----- the clock -----

    /// One positive clock edge: the notification countdown decrements,
    /// and the delivery scan runs in the cycle it reaches zero.
    pub fn posedge(&mut self) {
        self.cycles += 1;
        match self.due {
            Some(d) if d <= 1 => {
                self.due = None;
                self.deliver();
            }
            Some(d) => self.due = Some(d - 1),
            None => {}
        }
    }

    /// Schedules the delivery scan `cycles` edges out; an earlier pending
    /// schedule wins (the kernel's notify-override rule, synchronously).
    fn schedule(&mut self, cycles: u32) {
        self.due = Some(match self.due {
            Some(d) if d <= cycles => d,
            _ => cycles,
        });
    }

    /// The delivery scan: per hart, raise the notification register when
    /// an eligible request exists and none is in flight. This is the
    /// synchronous twin of the TLM run thread's body.
    fn deliver(&mut self) {
        let ctx = self.ctx.clone();
        let zero = ctx.word32(0);
        for hart in 0..self.config.harts as usize {
            if self.eip[hart] {
                continue;
            }
            let due = self.next_request(hart, true).ne(&zero);
            if ctx.decide(&due) {
                self.eip[hart] = true;
                self.rises[hart] += 1;
            }
        }
    }

    // ----- the comparison tree -----

    /// One leaf of the priority tournament: `(id, priority)` for `irq`,
    /// masked to `(0, 0)` when the request is not eligible. All mutation
    /// hooks touching eligibility live here, with the TLM semantics.
    fn request_leaf(&self, hart: usize, irq: u32, consider_threshold: bool) -> (SymWord, SymWord) {
        let ctx = &self.ctx;
        let zero = ctx.word32(0);
        let one_bit = ctx.word(1, Width::W1);
        let mut prio = self.priorities.get(irq as usize).clone();
        if let Some(MutationOp::StuckPriorityBit(bit)) = self.config.mutation {
            prio = prio.and(&ctx.word32(!(1u32 << bit)));
        }
        let pend = self.pending.get(irq as usize).eq(&one_bit);
        let mut enab = self.enabled[hart].get(irq as usize).eq(&one_bit);
        if self.config.mutation == Some(MutationOp::StuckEnableForId(irq)) {
            enab = ctx.lit(true);
        }
        let mut eligible = pend.and(&enab).and(&prio.ugt(&zero));
        if consider_threshold {
            let passes = match self.config.mutation {
                Some(MutationOp::ThresholdCompare(ThresholdCmp::OrEqual)) => {
                    prio.uge(&self.threshold[hart])
                }
                Some(MutationOp::ThresholdCompare(ThresholdCmp::AlwaysPass)) => ctx.lit(true),
                Some(MutationOp::ThresholdCompare(ThresholdCmp::NeverPass)) => ctx.lit(false),
                _ => prio.ugt(&self.threshold[hart]),
            };
            eligible = eligible.and(&passes);
        }
        let id = ctx.word32(irq).select(&eligible, &zero);
        let prio = prio.select(&eligible, &zero);
        (id, prio)
    }

    /// The winning request id for `hart`, or 0 when nothing is eligible.
    ///
    /// A pairwise tournament reduction over the per-source leaves — the
    /// log-depth comparator tree of a hardware priority encoder, not the
    /// TLM model's linear scan. With the strict `>` comparator the
    /// *leftmost* maximum survives every layer (lowest id wins ties, the
    /// RISC-V PLIC rule); the [`MutationOp::TieBreakHighestId`] hook
    /// relaxes it to `>=`, letting the rightmost maximum through instead.
    pub fn next_request(&self, hart: usize, consider_threshold: bool) -> SymWord {
        let tie_high = self.config.mutation == Some(MutationOp::TieBreakHighestId);
        let mut layer: Vec<(SymWord, SymWord)> = (1..=self.config.sources)
            .map(|irq| self.request_leaf(hart, irq, consider_threshold))
            .collect();
        if layer.is_empty() {
            return self.ctx.word32(0);
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if let [left, right] = pair {
                    let (lid, lp) = left;
                    let (rid, rp) = right;
                    let right_wins = if tie_high { rp.uge(lp) } else { rp.ugt(lp) };
                    next.push((rid.select(&right_wins, lid), rp.select(&right_wins, lp)));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.swap_remove(0).0
    }

    /// Whether `hart` has a deliverable request this cycle, as a symbolic
    /// boolean (pure dataflow).
    pub fn has_request(&self, hart: usize) -> SymBool {
        self.next_request(hart, true).ne(&self.ctx.word32(0))
    }

    // ----- the gateway -----

    /// An interrupt line fires: validate the id, latch the IP bit this
    /// cycle, and schedule the delivery scan one cycle out. Validation
    /// matches the TLM gateway exactly, including the variant-visible
    /// assertion and out-of-bounds error strings — the two levels must
    /// fail identically, or the cross-check would flag the fault model
    /// itself as a divergence.
    pub fn trigger(&mut self, irq: &SymWord) {
        let ctx = self.ctx.clone();
        let one = ctx.word32(1);
        let bound = match self.config.mutation {
            Some(MutationOp::GatewayBoundOffset(delta)) => {
                self.config.sources.saturating_add_signed(delta)
            }
            _ => self.config.sources,
        };
        let valid = irq.uge(&one).and(&irq.ule(&ctx.word32(bound)));
        match self.config.variant {
            PlicVariant::Faithful => {
                if ctx.decide(&valid.not()) {
                    panic!("assertion failed: interrupt id out of range in trigger_interrupt");
                }
            }
            PlicVariant::Fixed => {
                if ctx.decide(&valid.not()) {
                    return;
                }
            }
        }
        let n = ctx.word32(self.config.sources);
        if ctx.decide(&irq.ugt(&n)) {
            ctx.fail(
                ErrorKind::OutOfBounds,
                "write past the end of the pending-interrupt array",
            );
        }
        self.pending.store(irq, &ctx.word(1, Width::W1));
        if let Some(MutationOp::DropNotifyForId(id)) = self.config.mutation {
            if ctx.decide(&irq.eq(&ctx.word32(id))) {
                return;
            }
        }
        let mut cycles = 1u32;
        if let Some(MutationOp::LateNotifyAboveBoundary { boundary, factor }) = self.config.mutation
        {
            let above = ctx.word32(boundary.unwrap_or_else(|| self.config.if4_boundary()));
            if ctx.decide(&irq.ugt(&above)) {
                cycles = factor;
            }
        }
        self.schedule(cycles);
        if self.config.mutation == Some(MutationOp::DuplicateNotify) {
            self.schedule(cycles);
        }
    }

    /// Clears the IP latch of `irq` (with the early-clear mutation hook).
    fn clear_pending(&mut self, irq: &SymWord) {
        if let Some(MutationOp::EarlyClearReturnForId(id)) = self.config.mutation {
            let sticky = self.ctx.word32(id);
            if self.ctx.clone().decide(&irq.eq(&sticky)) {
                return;
            }
        }
        self.pending
            .store(irq, &self.ctx.word(0, Width::W1).clone());
    }

    // ----- the claim/complete handshake -----

    /// A claim by `hart`: combinationally resolve the comparison tree
    /// (threshold ignored, per the PLIC spec), clear the winner's IP
    /// latch, return its id (0 when nothing is pending).
    pub fn claim(&mut self, hart: usize) -> SymWord {
        let best = self.next_request(hart, false);
        let zero = self.ctx.word32(0);
        if self.ctx.clone().decide(&best.ne(&zero))
            && self.config.mutation != Some(MutationOp::ClaimSkipsClear)
        {
            self.clear_pending(&best);
        }
        best
    }

    /// A completion by `hart` (the claim/complete handshake's closing
    /// write; the completed id is ignored, as in the TLM model): drop the
    /// notification register and schedule a rescan one cycle out.
    pub fn complete(&mut self, hart: usize, _completed_id: &SymWord) {
        if self.config.variant == PlicVariant::Faithful {
            assert!(
                self.eip[hart],
                "assertion failed: claim_response written without external interrupt in flight"
            );
        }
        if self.config.mutation != Some(MutationOp::CompleteKeepsEip) {
            self.eip[hart] = false;
        }
        if self.config.mutation == Some(MutationOp::SkipRetrigger) {
            return;
        }
        if let Some(MutationOp::DropNotifyForId(id)) = self.config.mutation {
            let best = self.next_request(hart, false);
            let dropped = self.ctx.word32(id);
            if self.ctx.clone().decide(&best.eq(&dropped)) {
                return;
            }
        }
        self.schedule(1);
    }

    // ----- the architectural register file -----

    /// Priority register word `w` (holds `priority[w + 1]`).
    pub fn read_priority_word(&self, word_index: &SymWord) -> SymWord {
        let irq = word_index.add(&self.ctx.word32(1));
        self.priorities.select(&irq)
    }

    /// Writes priority register word `w` (i.e. `priority[w + 1]`).
    pub fn write_priority_word(&mut self, word_index: &SymWord, value: &SymWord) {
        let irq = word_index.add(&self.ctx.word32(1));
        self.priorities.store(&irq, value);
    }

    /// One 32-bit word of the pending bitmap, in the architectural
    /// register format (bit `b` of word `w` is source `32 * w + b`).
    pub fn read_pending_word(&self, word_index: &SymWord) -> SymWord {
        self.bitmap_word(&self.pending, word_index)
    }

    /// One 32-bit word of `hart`'s enable bitmap.
    pub fn read_enable_word(&self, hart: usize, word_index: &SymWord) -> SymWord {
        self.bitmap_word(&self.enabled[hart], word_index)
    }

    /// Writes one 32-bit word of `hart`'s enable bitmap.
    pub fn write_enable_word(&mut self, hart: usize, word_index: &SymWord, value: &SymWord) {
        let ctx = self.ctx.clone();
        let words = self.config.bitmap_words() as u32;
        let mut map = self.enabled[hart].clone();
        for w in 0..words {
            let here = word_index.eq(&ctx.word32(w));
            for b in 0..32 {
                let flag = (w * 32 + b) as usize;
                if flag >= map.len() {
                    break;
                }
                let bit = value.extract(b, b);
                let merged = bit.select(&here, map.get(flag));
                map.set(flag, merged);
            }
        }
        self.enabled[hart] = map;
    }

    /// `hart`'s threshold register.
    pub fn read_threshold(&self, hart: usize) -> SymWord {
        self.threshold[hart].clone()
    }

    /// Writes `hart`'s threshold register.
    pub fn write_threshold(&mut self, hart: usize, value: &SymWord) {
        self.threshold[hart] = value.clone();
    }

    fn bitmap_word(&self, map: &SymArray, word_index: &SymWord) -> SymWord {
        let ctx = &self.ctx;
        let words = self.config.bitmap_words() as u32;
        let mut out = ctx.word32(0);
        for w in 0..words {
            let mut composed: Option<SymWord> = None;
            for b in (0..32).rev() {
                let flag = (w * 32 + b) as usize;
                let bit = if flag < map.len() {
                    map.get(flag).clone()
                } else {
                    ctx.word(0, Width::W1)
                };
                composed = Some(match composed {
                    None => bit,
                    Some(c) => c.concat(&bit),
                });
            }
            let composed = composed.expect("32 bits composed");
            let here = word_index.eq(&ctx.word32(w));
            out = composed.select(&here, &out);
        }
        out
    }

    /// Testbench convenience: enable every source for every hart (flag 0
    /// included), mirroring the TLM model's `enable_all_sources` so the
    /// two levels' enable bitmaps stay register-identical.
    pub fn enable_all(&mut self) {
        let one = self.ctx.word(1, Width::W1);
        for map in &mut self.enabled {
            for flag in 0..map.len() {
                map.set(flag, one.clone());
            }
        }
    }

    /// Testbench convenience: `priority[irq] = priority` for a symbolic
    /// id (the mirror of the TLM model's `set_priority_symbolic`; no
    /// bounds decode, so the caller must constrain `irq` to valid ids).
    pub fn set_priority_symbolic(&mut self, irq: &SymWord, priority: &SymWord) {
        self.priorities.store(irq, priority);
    }

    // ----- snapshot / restore -----

    /// Captures the full model state — register file *and* handshake
    /// state machine — as a cheap copy-on-write snapshot, mirroring
    /// `PlicSnapshot` so COW forking and merge/subsumption treat both
    /// levels identically.
    pub fn snapshot(&self) -> CycleSnapshot {
        CycleSnapshot {
            priorities: self.priorities.clone(),
            pending: self.pending.clone(),
            enabled: self.enabled.clone(),
            threshold: self.threshold.clone(),
            eip: self.eip.clone(),
            rises: self.rises.clone(),
            due: self.due,
        }
    }

    /// Restores the state captured by [`snapshot`](CyclePlic::snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot comes from a model with a different
    /// source/hart topology.
    pub fn restore(&mut self, snapshot: &CycleSnapshot) {
        assert_eq!(
            snapshot.priorities.len(),
            self.priorities.len(),
            "snapshot topology mismatch: source count differs"
        );
        assert_eq!(
            snapshot.threshold.len(),
            self.threshold.len(),
            "snapshot topology mismatch: hart count differs"
        );
        self.priorities = snapshot.priorities.clone();
        self.pending = snapshot.pending.clone();
        self.enabled = snapshot.enabled.clone();
        self.threshold = snapshot.threshold.clone();
        self.eip = snapshot.eip.clone();
        self.rises = snapshot.rises.clone();
        self.due = snapshot.due;
    }

    /// A structural digest of the live state for
    /// [`SymCtx::note_state`](symsc_symex::SymCtx::note_state) fences.
    pub fn state_mark(&self) -> u64 {
        self.snapshot().structural_hash()
    }
}

/// An immutable capture of a [`CyclePlic`]'s state (registers plus the
/// handshake state machine). Capture and clone cost O(chunks) Arc bumps.
#[derive(Clone, Debug)]
pub struct CycleSnapshot {
    priorities: SymArray,
    pending: SymArray,
    enabled: Vec<SymArray>,
    threshold: Vec<SymWord>,
    eip: Vec<bool>,
    rises: Vec<u32>,
    due: Option<u32>,
}

impl CycleSnapshot {
    /// A structural hash of the captured state: the register folds mirror
    /// `PlicSnapshot::structural_hash`, followed by the cycle-level FSM
    /// extras (rise counters and the notification countdown). Two
    /// snapshots hash equal exactly when
    /// [`deep_equals`](CycleSnapshot::deep_equals) holds.
    pub fn structural_hash(&self) -> u64 {
        let mut digest = StateDigest::new();
        self.priorities.fold_digest(&mut digest);
        self.pending.fold_digest(&mut digest);
        digest.push_u64(self.enabled.len() as u64);
        for map in &self.enabled {
            map.fold_digest(&mut digest);
        }
        digest.push_u64(self.threshold.len() as u64);
        for threshold in &self.threshold {
            digest.push(threshold.fingerprint());
        }
        digest.push_u64(self.eip.len() as u64);
        for &eip in &self.eip {
            digest.push_bool(eip);
        }
        digest.push_u64(self.rises.len() as u64);
        for &r in &self.rises {
            digest.push_u64(u64::from(r));
        }
        digest.push_bool(self.due.is_some());
        digest.push_u64(u64::from(self.due.unwrap_or(0)));
        digest.finish()
    }

    /// Field-by-field structural equality, the ground truth the hash
    /// summarizes.
    pub fn deep_equals(&self, other: &CycleSnapshot) -> bool {
        fn arrays_equal(a: &SymArray, b: &SymArray) -> bool {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.fingerprint() == y.fingerprint())
        }
        arrays_equal(&self.priorities, &other.priorities)
            && arrays_equal(&self.pending, &other.pending)
            && self.enabled.len() == other.enabled.len()
            && self
                .enabled
                .iter()
                .zip(&other.enabled)
                .all(|(a, b)| arrays_equal(a, b))
            && self.threshold.len() == other.threshold.len()
            && self
                .threshold
                .iter()
                .zip(&other.threshold)
                .all(|(a, b)| a.fingerprint() == b.fingerprint())
            && self.eip == other.eip
            && self.rises == other.rises
            && self.due == other.due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::Explorer;

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn armed(ctx: &SymCtx, config: PlicConfig) -> CyclePlic {
        let mut m = CyclePlic::new(ctx, config);
        for irq in 1..=config.sources {
            m.write_priority_word(&ctx.word32(irq - 1), &ctx.word32(1));
            m.write_enable_word(0, &ctx.word32(irq / 32), &ctx.word32(u32::MAX));
        }
        m
    }

    #[test]
    fn trigger_latches_ip_and_delivers_one_edge_later() {
        let report = Explorer::new().explore(|ctx| {
            let mut m = armed(ctx, fixed());
            m.trigger(&ctx.word32(3));
            ctx.check(
                &m.read_pending_word(&ctx.word32(0)).eq(&ctx.word32(1 << 3)),
                "IP latches in the trigger cycle",
            );
            ctx.check_concrete(!m.eip(), "no delivery before the edge");
            m.posedge();
            ctx.check_concrete(m.eip() && m.rises() == 1, "delivery on the next edge");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn claim_resolves_the_tree_and_clears_ip() {
        let report = Explorer::new().explore(|ctx| {
            let mut m = armed(ctx, fixed());
            m.write_priority_word(&ctx.word32(4), &ctx.word32(7));
            m.trigger(&ctx.word32(2));
            m.trigger(&ctx.word32(5));
            m.posedge();
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(5)), "higher priority wins");
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(2)), "then the remaining request");
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(0)), "spurious claim returns 0");
            m.complete(0, &ctx.word32(2));
            ctx.check_concrete(!m.eip(), "completion drops the line");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn ties_break_toward_the_lowest_id() {
        let report = Explorer::new().explore(|ctx| {
            let mut m = armed(ctx, fixed());
            m.trigger(&ctx.word32(9));
            m.trigger(&ctx.word32(4));
            m.posedge();
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(4)), "equal priorities pick the lower id");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn tiebreak_mutant_picks_the_highest_id() {
        let report = Explorer::new().explore(|ctx| {
            let mut m = armed(ctx, fixed().mutate(MutationOp::TieBreakHighestId));
            m.trigger(&ctx.word32(9));
            m.trigger(&ctx.word32(4));
            m.posedge();
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(9)), "the mutant lets the highest id win");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn snapshot_round_trips_and_hashes_structurally() {
        let report = Explorer::new().explore(|ctx| {
            let mut m = armed(ctx, fixed());
            m.trigger(&ctx.word32(3));
            let snap = m.snapshot();
            let mark = m.state_mark();
            m.posedge();
            let _ = m.claim(0);
            assert_ne!(m.state_mark(), mark, "claim must change the mark");
            m.restore(&snap);
            assert_eq!(m.state_mark(), mark, "restore must reproduce the mark");
            assert!(snap.deep_equals(&m.snapshot()));
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn the_countdown_is_a_single_earliest_wins_slot() {
        let report = Explorer::new().explore(|ctx| {
            // IF4 stretches delivery above the boundary; a later trigger
            // of a low id overrides the countdown to the earlier slot,
            // and the stretched notification is absorbed (the kernel's
            // override rule, synchronously).
            let config = fixed().mutate(MutationOp::LateNotifyAboveBoundary {
                boundary: Some(4),
                factor: 3,
            });
            let mut m = armed(ctx, config);
            m.trigger(&ctx.word32(9)); // due in 3 cycles
            m.posedge();
            ctx.check_concrete(!m.eip(), "stretched delivery still pending");
            m.trigger(&ctx.word32(2)); // due next cycle, overrides
            m.posedge();
            ctx.check_concrete(m.eip(), "the earlier schedule wins");
            let id = m.claim(0);
            ctx.check(&id.eq(&ctx.word32(2)), "only the scan is shared");
            m.complete(0, &id);
            m.posedge();
            m.posedge();
            ctx.check_concrete(
                m.eip() && m.rises() == 2,
                "the rescan redelivers the absorbed request",
            );
        });
        assert!(report.passed(), "{report}");
    }
}

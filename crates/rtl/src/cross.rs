//! The cross-level checker: one symbolic transaction stream driving the
//! TLM PLIC and the cycle-level model in lockstep, with observable
//! equivalence asserted path by path on the solver.
//!
//! Every operation is applied to *both* models — the TLM side through
//! its real blocking-transport/gateway interfaces, the cycle side
//! through the [`CycleAdapter`]'s timing contract — and every
//! observation is cross-checked: interrupt lines and notification
//! counts concretely per path, claim ids and the architectural register
//! file as symbolic equalities the solver discharges. A mutant injected
//! into either level therefore fails against the other level as oracle,
//! with no expected-value bookkeeping in the testbench at all.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use symsc_pk::{Kernel, SimTime};
use symsc_plic::config::{
    CLAIM_BASE, CONTEXT_STRIDE, ENABLE_BASE, ENABLE_STRIDE, PENDING_BASE, PRIORITY_BASE,
    THRESHOLD_BASE,
};
use symsc_plic::{InterruptTarget, Plic, PlicConfig};
use symsc_symex::{StateDigest, SymCtx, SymWord};
use symsc_tlm::{BlockingTransport, GenericPayload};

use crate::adapter::CycleAdapter;

/// The TLM side's interrupt sink: counts rising edges of the external
/// interrupt line, the cross-level twin of the cycle model's rise
/// counters.
struct CountingTarget {
    rises: Rc<Cell<u32>>,
}

impl InterruptTarget for CountingTarget {
    fn trigger_external_interrupt(&mut self) {
        self.rises.set(self.rises.get() + 1);
    }
}

/// Drives the TLM PLIC and the cycle-level model from one transaction
/// stream and asserts observable equivalence after every step.
pub struct CrossChecker {
    ctx: SymCtx,
    kernel: Kernel,
    plic: Plic,
    rises: Vec<Rc<Cell<u32>>>,
    adapter: CycleAdapter,
    now: SimTime,
}

impl CrossChecker {
    /// Builds the paired testbench: the TLM model from `tlm_config`, the
    /// cycle model from `cycle_config`. The two configurations must
    /// agree on topology (sources, harts, clock) — they are *meant* to
    /// differ in variant or injected mutation, which is what the checker
    /// detects.
    ///
    /// # Panics
    ///
    /// Panics if the configurations disagree on topology.
    pub fn new(ctx: &SymCtx, tlm_config: PlicConfig, cycle_config: PlicConfig) -> CrossChecker {
        assert_eq!(
            tlm_config.sources, cycle_config.sources,
            "cross-check requires the same source count at both levels"
        );
        assert_eq!(
            tlm_config.harts, cycle_config.harts,
            "cross-check requires the same hart count at both levels"
        );
        assert_eq!(
            tlm_config.clock_cycle, cycle_config.clock_cycle,
            "cross-check requires the same clock at both levels"
        );
        let mut kernel = Kernel::new();
        let plic = Plic::new(ctx, &mut kernel, tlm_config);
        let rises: Vec<Rc<Cell<u32>>> = (0..tlm_config.harts)
            .map(|_| Rc::new(Cell::new(0)))
            .collect();
        for (hart, count) in rises.iter().enumerate() {
            plic.connect_hart_n(
                hart,
                Rc::new(RefCell::new(CountingTarget {
                    rises: Rc::clone(count),
                })),
            );
        }
        kernel.step();
        let adapter = CycleAdapter::new(ctx, cycle_config, tlm_config.clock_cycle);
        CrossChecker {
            ctx: ctx.clone(),
            kernel,
            plic,
            rises,
            adapter,
            now: SimTime::ZERO,
        }
    }

    /// The TLM side's configuration.
    pub fn config(&self) -> PlicConfig {
        self.plic.config()
    }

    /// The TLM model under check.
    pub fn plic(&self) -> &Plic {
        &self.plic
    }

    /// The cycle-level model under check.
    pub fn cycle(&self) -> &CycleAdapter {
        &self.adapter
    }

    /// Current simulated time (whole clock periods since reset).
    pub fn now(&self) -> SimTime {
        self.now
    }

    // ----- stimulus (applied to both levels) -----

    /// Enables every source for every hart at both levels.
    pub fn enable_all(&mut self) {
        self.plic.enable_all_sources(&self.ctx);
        self.adapter.model_mut().enable_all();
    }

    /// Sets `priority[irq]` (symbolic id, symbolic value) at both
    /// levels. Direct stores bypass the register decode, so the caller
    /// must constrain `irq` to `1..=sources`.
    pub fn set_priority(&mut self, irq: &SymWord, priority: &SymWord) {
        self.plic.set_priority_symbolic(irq, priority);
        self.adapter
            .model_mut()
            .set_priority_symbolic(irq, priority);
    }

    /// Sets `hart`'s threshold register at both levels (through the TLM
    /// register decode on the TLM side).
    pub fn set_threshold(&mut self, hart: usize, value: &SymWord) {
        let addr = (THRESHOLD_BASE + hart as u64 * CONTEXT_STRIDE) as u32;
        self.tlm_write(addr, value);
        self.adapter.model_mut().write_threshold(hart, value);
    }

    /// Writes word `word_index` of `hart`'s enable bitmap (symbolic
    /// value) at both levels.
    pub fn write_enable_word(&mut self, hart: usize, word_index: u32, value: &SymWord) {
        let addr = (ENABLE_BASE + hart as u64 * ENABLE_STRIDE) as u32 + 4 * word_index;
        self.tlm_write(addr, value);
        let index = self.ctx.word32(word_index);
        self.adapter
            .model_mut()
            .write_enable_word(hart, &index, value);
    }

    /// Fires interrupt line `irq` (symbolic) at both gateways.
    pub fn trigger(&mut self, irq: &SymWord) {
        self.plic
            .trigger_interrupt(&self.ctx, &mut self.kernel, irq);
        self.adapter.trigger(irq);
    }

    // ----- the clock, with the line checks -----

    /// Advances both levels by one clock period, then cross-checks the
    /// per-hart interrupt lines and notification counts.
    pub fn step(&mut self) {
        self.now += self.config().clock_cycle;
        self.kernel.run_until(self.now);
        self.adapter.advance(self.now);
        self.check_lines();
    }

    /// Advances both levels by `periods` clock periods, checking the
    /// lines after each.
    pub fn step_n(&mut self, periods: u32) {
        for _ in 0..periods {
            self.step();
        }
    }

    /// Cross-checks the interrupt line and rise count of every hart
    /// (concrete per path — the lines are concrete at both levels).
    pub fn check_lines(&self) {
        for hart in 0..self.config().harts as usize {
            self.ctx.check_concrete(
                self.plic.hart_eip_n(hart) == self.adapter.model().eip_n(hart),
                "external interrupt line agrees across levels",
            );
            self.ctx.check_concrete(
                self.rises[hart].get() == self.adapter.model().rises_n(hart),
                "interrupt notification count agrees across levels",
            );
        }
    }

    // ----- the handshake -----

    /// Claims on `hart` at both levels and checks the claimed ids are
    /// equal on the solver. Returns the TLM side's id.
    pub fn claim(&mut self, hart: usize) -> SymWord {
        let addr = (CLAIM_BASE + hart as u64 * CONTEXT_STRIDE) as u32;
        let tlm_id = self.tlm_read(addr);
        let cycle_id = self.adapter.claim(hart);
        self.ctx
            .check(&tlm_id.eq(&cycle_id), "claimed id agrees across levels");
        tlm_id
    }

    /// Completes `id` on `hart` at both levels (the effects — line drop,
    /// redelivery — are cross-checked by the following steps).
    pub fn complete(&mut self, hart: usize, id: &SymWord) {
        let addr = (CLAIM_BASE + hart as u64 * CONTEXT_STRIDE) as u32;
        self.tlm_write(addr, id);
        self.adapter.complete(hart, id);
    }

    // ----- the register sweep -----

    /// Reads every side-effect-free architectural register at both
    /// levels — priority words, the pending bitmap, every hart's enable
    /// bitmap and threshold — and checks each pair equal on the solver.
    /// (The claim register is excluded: reading it is the handshake.)
    pub fn check_registers(&mut self) {
        let config = self.config();
        for w in 0..config.sources {
            let tlm = self.tlm_read((PRIORITY_BASE + 4 * u64::from(w)) as u32);
            let cycle = self.adapter.model().read_priority_word(&self.ctx.word32(w));
            self.ctx
                .check(&tlm.eq(&cycle), "priority register agrees across levels");
        }
        for w in 0..config.bitmap_words() as u32 {
            let tlm = self.tlm_read((PENDING_BASE + 4 * u64::from(w)) as u32);
            let cycle = self.adapter.model().read_pending_word(&self.ctx.word32(w));
            self.ctx
                .check(&tlm.eq(&cycle), "pending bitmap agrees across levels");
        }
        for hart in 0..config.harts as usize {
            for w in 0..config.bitmap_words() as u32 {
                let addr = (ENABLE_BASE + hart as u64 * ENABLE_STRIDE) as u32 + 4 * w;
                let tlm = self.tlm_read(addr);
                let cycle = self
                    .adapter
                    .model()
                    .read_enable_word(hart, &self.ctx.word32(w));
                self.ctx
                    .check(&tlm.eq(&cycle), "enable bitmap agrees across levels");
            }
            let addr = (THRESHOLD_BASE + hart as u64 * CONTEXT_STRIDE) as u32;
            let tlm = self.tlm_read(addr);
            let cycle = self.adapter.model().read_threshold(hart);
            self.ctx
                .check(&tlm.eq(&cycle), "threshold register agrees across levels");
        }
    }

    /// Publishes a combined structural mark of both levels (plus the
    /// kernel) as a merge fence for `ExploreOrder::MergeEager`.
    pub fn fence(&self) {
        let mut mark = StateDigest::new();
        mark.push_u64(self.kernel.state_mark());
        mark.push_u64(self.plic.state_mark());
        mark.push_u64(self.adapter.state_mark());
        for count in &self.rises {
            mark.push_u64(u64::from(count.get()));
        }
        self.ctx.note_state("cross", mark.finish());
    }

    // ----- TLM transport helpers -----

    fn tlm_read(&mut self, addr: u32) -> SymWord {
        let mut txn = GenericPayload::read(&self.ctx, self.ctx.word32(addr), 4);
        self.plic.b_transport(&self.ctx, &mut self.kernel, &mut txn);
        self.ctx
            .check_concrete(txn.response.is_ok(), "TLM register read must succeed");
        txn.word(0).clone()
    }

    fn tlm_write(&mut self, addr: u32, value: &SymWord) {
        let mut txn = GenericPayload::write(&self.ctx, self.ctx.word32(addr), 4);
        txn.set_word(0, value.clone());
        self.plic.b_transport(&self.ctx, &mut self.kernel, &mut txn);
        self.ctx
            .check_concrete(txn.response.is_ok(), "TLM register write must succeed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{MutationOp, PlicVariant};
    use symsc_symex::{Explorer, Width};

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn basic_scenario(ctx: &SymCtx, tlm: PlicConfig, cycle: PlicConfig) {
        let mut x = CrossChecker::new(ctx, tlm, cycle);
        x.enable_all();
        let sources = x.config().sources;
        let irq = ctx.symbolic("irq", Width::W32);
        ctx.assume(&irq.uge(&ctx.word32(1)));
        ctx.assume(&irq.ule(&ctx.word32(sources)));
        let prio = ctx.symbolic("prio", Width::W32);
        ctx.assume(&prio.uge(&ctx.word32(1)));
        ctx.assume(&prio.ule(&ctx.word32(x.config().max_priority)));
        x.set_priority(&irq, &prio);
        x.trigger(&irq);
        x.step();
        x.fence();
        let id = x.claim(0);
        x.complete(0, &id);
        x.step();
        x.check_registers();
    }

    #[test]
    fn the_two_levels_agree_on_the_fixed_plic() {
        let report = Explorer::new().explore(|ctx| basic_scenario(ctx, fixed(), fixed()));
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn a_cycle_side_mutant_is_caught_by_the_tlm_oracle() {
        let report = Explorer::new().explore(|ctx| {
            basic_scenario(ctx, fixed(), fixed().mutate(MutationOp::ClaimSkipsClear));
        });
        assert!(!report.passed(), "the pending bitmap sweep must diverge");
    }

    #[test]
    fn a_tlm_side_mutant_is_caught_by_the_cycle_oracle() {
        let report = Explorer::new().explore(|ctx| {
            basic_scenario(ctx, fixed().mutate(MutationOp::DropNotifyForId(2)), fixed());
        });
        assert!(
            !report.passed(),
            "the interrupt line check must diverge on irq 2"
        );
    }

    #[test]
    fn stuck_enable_is_caught_only_with_symbolic_enables() {
        // With every source enabled the stuck-enable mutant is invisible
        // (the TLM-only matrix survivor); a symbolic enable word makes
        // the cycle side deliver where the TLM side stays masked.
        let report = Explorer::new().max_paths(512).explore(|ctx| {
            let mut x = CrossChecker::new(
                ctx,
                fixed(),
                fixed().mutate(MutationOp::StuckEnableForId(1)),
            );
            let enables = ctx.symbolic("enables", Width::W32);
            x.write_enable_word(0, 0, &enables);
            let irq = ctx.word32(1);
            x.set_priority(&irq, &ctx.word32(1));
            x.trigger(&irq);
            x.step();
        });
        assert!(
            !report.passed(),
            "the line check must diverge when bit 1 is 0"
        );
    }
}

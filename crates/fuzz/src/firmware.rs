//! The firmware fuzz lane: byte strings decode into *environment
//! schedules* — interrupt arrivals, priority/threshold/enable pokes and
//! clock ticks — injected around a fixed RV32I service driver running on
//! the symbolic ISS, with the same binary executing on the
//! [`RefMachine`](symsc_firmware::RefMachine) golden model as the
//! differential oracle.
//!
//! The stimulus grammar reuses the byte layout of [`Program`] (6-byte
//! slots, `op{i}_kind`/`op{i}_a`/`op{i}_b` variables), so corpus
//! machinery, seed exchange and counterexample round-trips work
//! unchanged; only the *interpretation* differs. Each slot is applied at
//! a driver park boundary: the DUV's simulated time is advanced one
//! clock so scheduled deliveries land, both harts resume, and their step
//! outcomes must agree. After the whole schedule, the differential
//! checks compare the driver-visible machine state — the full register
//! file and the memory-mapped log buffer — between DUV and golden run.
//!
//! Coverage is the usual structural `(fork-site fingerprint, direction)`
//! map of the concolic trace, which here spans both the firmware's
//! decode chains *and* the peripheral's internal fork sites — one
//! coverage space for software and hardware branches.

use symsc_firmware::soc::{enable_all_masks, service_driver, Soc, LOG_WORD0, RAM_WORDS};
use symsc_firmware::RefMachine;
use symsc_plic::config::ENABLE_BASE;
use symsc_plic::PlicConfig;
use symsc_symex::{Explorer, SymCtx, Width};
use symsc_tlm::{BlockingTransport, GenericPayload};

use crate::engine::InputOutcome;
use crate::grammar::Program;
use crate::harness::pin_mod;

/// Operation selectors of the firmware schedule (`kind % FW_OP_KINDS`).
pub mod fwop {
    /// Raise an interrupt line (`0..=sources+1`, invalid ids included).
    pub const TRIGGER: u32 = 0;
    /// Advance simulated time by one clock cycle.
    pub const TICK: u32 = 1;
    /// Backdoor-write `priority[irq]` on both machines.
    pub const SET_PRIORITY: u32 = 2;
    /// Backdoor-write the HART-0 threshold on both machines.
    pub const SET_THRESHOLD: u32 = 3;
    /// Toggle one source's enable bit (bus write on the DUV side).
    pub const ENABLE: u32 = 4;
}

/// Number of schedule operation kinds.
pub const FW_OP_KINDS: u8 = 5;

/// Interrupts the fixed driver services before halting.
pub const FW_SERVICES: u32 = 3;

/// Instruction budget per resume (generous; the driver is loop-bounded).
const FW_FUEL: u64 = 600;

/// The firmware differential testbench over `len` symbolic schedule
/// slots: the fixed service driver on the TLM-backed [`Soc`] versus the
/// same binary on the golden [`RefMachine`].
pub fn firmware_differential_bench(
    config: PlicConfig,
    len: usize,
) -> impl Fn(&SymCtx) + Send + Sync + 'static {
    move |ctx: &SymCtx| run_schedule(ctx, config, len)
}

fn resume_both(ctx: &SymCtx, duv: &mut Soc, gold: &mut RefMachine) {
    // Let any scheduled DUV delivery land before the harts resume (the
    // golden machine delivers eagerly, so only the DUV needs the clock).
    let clock = duv.plic.borrow().config().clock_cycle;
    let now = duv.kernel.time();
    duv.kernel.run_until(now + clock);
    let d = duv.run(ctx, FW_FUEL);
    let g = gold.run(ctx, FW_FUEL);
    ctx.check_concrete(
        d == g,
        &format!("driver outcomes agree with the golden machine ({d:?} vs {g:?})"),
    );
}

fn run_schedule(ctx: &SymCtx, config: PlicConfig, len: usize) {
    let program = service_driver(&enable_all_masks(&config), FW_SERVICES);
    let mut duv = Soc::new(ctx, config, program.clone());
    let mut gold = RefMachine::new(ctx, config.sources, program);
    for irq in 1..=config.sources {
        duv.plic.borrow().set_priority(ctx, irq, 1);
        gold.plic.borrow_mut().set_priority(irq, 1);
    }
    let mut enable_shadow = enable_all_masks(&config);
    resume_both(ctx, &mut duv, &mut gold);

    let sources = config.sources;
    for i in 0..len {
        let kind_w = ctx.symbolic(&format!("op{i}_kind"), Width::W8);
        let a_w = ctx.symbolic(&format!("op{i}_a"), Width::W32);
        let b_w = ctx.symbolic(&format!("op{i}_b"), Width::W8);
        let (_, kind) = pin_mod(ctx, &kind_w.zero_ext(Width::W32), u32::from(FW_OP_KINDS));
        match kind {
            fwop::TRIGGER => {
                let (irq_t, irq) = pin_mod(ctx, &a_w, sources + 2);
                duv.plic
                    .borrow()
                    .trigger_interrupt(ctx, &mut duv.kernel, &irq_t);
                gold.plic.borrow_mut().trigger(irq);
            }
            fwop::TICK => {}
            fwop::SET_PRIORITY => {
                let (_, irq) = pin_mod(ctx, &a_w, sources);
                let irq = irq + 1;
                let (_, prio) = pin_mod(ctx, &b_w.zero_ext(Width::W32), config.max_priority + 1);
                duv.plic.borrow().set_priority(ctx, irq, prio);
                gold.plic.borrow_mut().set_priority(irq, prio);
            }
            fwop::SET_THRESHOLD => {
                let (_, thr) = pin_mod(ctx, &a_w, config.max_priority + 1);
                duv.plic.borrow().set_threshold(ctx.word32(thr));
                gold.plic.borrow_mut().set_threshold(thr);
            }
            fwop::ENABLE => {
                let (_, irq) = pin_mod(ctx, &a_w, sources);
                let irq = irq + 1;
                let (_, on) = pin_mod(ctx, &b_w.zero_ext(Width::W32), 2);
                let widx = (irq / 32) as usize;
                if on == 1 {
                    enable_shadow[widx] |= 1 << (irq % 32);
                } else {
                    enable_shadow[widx] &= !(1 << (irq % 32));
                }
                // The DUV sees the toggle as the bus write a driver (or
                // a second core) would issue; the golden model is poked
                // directly.
                let addr = ctx.word32(ENABLE_BASE as u32 + 4 * widx as u32);
                let mut txn = GenericPayload::write(ctx, addr, 4);
                txn.set_word(0, ctx.word32(enable_shadow[widx]));
                duv.plic
                    .borrow_mut()
                    .b_transport(ctx, &mut duv.kernel, &mut txn);
                ctx.check_concrete(txn.response.is_ok(), "enable write must decode");
                gold.plic.borrow_mut().set_enabled(irq, on == 1);
            }
            _ => unreachable!("kind is reduced modulo FW_OP_KINDS"),
        }
        resume_both(ctx, &mut duv, &mut gold);
    }

    for r in 0..32 {
        ctx.check(
            &duv.cpu.reg(ctx, r).eq(&gold.cpu.reg(ctx, r)),
            "register file agrees with the golden machine",
        );
    }
    for slot in 0..(RAM_WORDS - LOG_WORD0) {
        ctx.check(
            &duv.log_word(slot).eq(&gold.log_word(slot)),
            "log buffer agrees with the golden machine",
        );
    }
}

/// Executes one firmware fuzz input as a concolic trace and collects its
/// coverage and errors — the firmware lane's
/// [`InputRunner`](crate::engine::InputRunner).
pub fn run_firmware_input(config: PlicConfig, bytes: &[u8]) -> InputOutcome {
    let program = Program::decode(bytes);
    let report = Explorer::new().trace(
        &program.to_assignment(),
        firmware_differential_bench(config, program.len()),
    );
    let mut coverage = std::collections::BTreeSet::new();
    for (site, cov) in &report.stats.branches {
        if cov.taken > 0 {
            coverage.insert((*site, true));
        }
        if cov.not_taken > 0 {
            coverage.insert((*site, false));
        }
    }
    let errors = report
        .errors
        .iter()
        .map(|e| (e.kind, e.message.clone()))
        .collect();
    InputOutcome { coverage, errors }
}

/// Handcrafted schedule seeds: protocol-shaped stimuli every campaign
/// replays first (the firmware analog of [`crate::corpus::dictionary`]).
pub fn firmware_dictionary(config: &PlicConfig) -> Vec<Vec<u8>> {
    let s = config.sources;
    let slot = |kind: u32, a: u32, b: u8| -> Vec<u8> {
        let mut v = vec![kind as u8];
        v.extend_from_slice(&a.to_le_bytes());
        v.push(b);
        v
    };
    let cat = |slots: &[Vec<u8>]| slots.concat();
    vec![
        // Three plain services, one trigger at a time.
        cat(&[
            slot(fwop::TRIGGER, 3, 0),
            slot(fwop::TRIGGER, 7, 0),
            slot(fwop::TRIGGER, 1, 0),
        ]),
        // Simultaneous arrivals with a priority split.
        cat(&[
            slot(fwop::SET_PRIORITY, 4, 7),
            slot(fwop::TRIGGER, 2, 0),
            slot(fwop::TRIGGER, 5, 0),
            slot(fwop::TICK, 0, 0),
        ]),
        // Threshold masking around the boundary.
        cat(&[
            slot(fwop::SET_THRESHOLD, 1, 0),
            slot(fwop::TRIGGER, 3, 0),
            slot(fwop::SET_THRESHOLD, 0, 0),
            slot(fwop::TRIGGER, 4, 0),
        ]),
        // Disable source 2 (`a` decodes as `1 + a % sources`), fire it,
        // re-enable, fire again.
        cat(&[
            slot(fwop::ENABLE, 1, 0),
            slot(fwop::TRIGGER, 2, 0),
            slot(fwop::ENABLE, 1, 1),
            slot(fwop::TRIGGER, 2, 0),
        ]),
        // Invalid and boundary ids through the gateway.
        cat(&[
            slot(fwop::TRIGGER, s + 1, 0),
            slot(fwop::TRIGGER, s, 0),
            slot(fwop::TRIGGER, s.wrapping_mul(7), 0),
        ]),
    ]
}

/// The firmware fuzz kill matrix: one campaign per mutant over the
/// firmware differential lane, mirroring
/// [`run_fuzz_matrix`](crate::matrix::run_fuzz_matrix).
pub fn run_firmware_fuzz_matrix(
    config: PlicConfig,
    mutants: &[symsc_mutate::Mutant],
    params: crate::matrix::FuzzMatrixParams,
) -> crate::matrix::FuzzMatrix {
    use symsc_plic::Mutation;

    let dictionary = firmware_dictionary(&config);
    let baseline = crate::engine::Fuzzer::new(config)
        .runner(run_firmware_input)
        .seed(params.seed)
        .workers(params.workers)
        .max_execs(params.baseline_execs)
        .batch(params.batch)
        .seeds(dictionary.clone())
        .run();
    let mut corpus = dictionary;
    let mut seen: std::collections::BTreeSet<Vec<u8>> = corpus.iter().cloned().collect();
    for entry in &baseline.corpus {
        if seen.insert(entry.clone()) {
            corpus.push(entry.clone());
        }
    }

    let rows = mutants
        .iter()
        .enumerate()
        .map(|(i, mutant)| {
            let campaign = crate::engine::Fuzzer::new(config.mutate(mutant.op()))
                .runner(run_firmware_input)
                .seed(params.seed.wrapping_add(0x9E37 * (i as u64 + 1)))
                .workers(params.workers)
                .max_execs(params.mutant_execs)
                .batch(params.batch)
                .seeds(corpus.clone())
                .stop_on_finding(true)
                .run();
            let finding = campaign
                .findings
                .first()
                .map(|f| format!("{}: {}", f.kind, f.message));
            crate::matrix::FuzzMutantRow {
                name: mutant.name(),
                description: mutant.description(),
                preset: mutant.preset().is_some(),
                killed: campaign.killed(),
                execs: campaign.execs,
                finding,
            }
        })
        .collect();

    crate::matrix::FuzzMatrix {
        config,
        baseline_execs: baseline.execs,
        baseline_findings: baseline.findings.len(),
        corpus_len: corpus.len(),
        coverage_points: baseline.coverage.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fuzzer;
    use symsc_plic::PlicVariant;

    fn scaled() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    #[test]
    fn the_fixed_duv_matches_the_golden_machine_on_the_dictionary() {
        for (i, seed) in firmware_dictionary(&scaled()).iter().enumerate() {
            let outcome = run_firmware_input(scaled(), seed);
            assert_eq!(outcome.errors, Vec::new(), "dictionary entry {i} diverged");
            assert!(!outcome.coverage.is_empty());
        }
    }

    #[test]
    fn a_firmware_campaign_is_clean_on_the_fixed_model() {
        let report = Fuzzer::new(scaled())
            .runner(run_firmware_input)
            .seed(21)
            .max_execs(48)
            .batch(12)
            .seeds(firmware_dictionary(&scaled()))
            .run();
        assert_eq!(report.findings, Vec::new(), "fixed model must not diverge");
        assert!(!report.corpus.is_empty());
    }

    #[test]
    fn firmware_campaigns_are_byte_identical_across_worker_counts() {
        let run = |workers| {
            Fuzzer::new(scaled())
                .runner(run_firmware_input)
                .seed(9)
                .workers(workers)
                .max_execs(36)
                .batch(12)
                .seeds(firmware_dictionary(&scaled()))
                .run()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.corpus, eight.corpus);
        assert_eq!(one.coverage, eight.coverage);
        assert_eq!(one.findings, eight.findings);
    }

    #[test]
    fn the_enable_dictionary_entry_kills_the_stuck_enable_mutant() {
        let mutated = scaled().mutate(symsc_plic::MutationOp::StuckEnableForId(2));
        let report = Fuzzer::new(mutated)
            .runner(run_firmware_input)
            .seed(2)
            .seeds(firmware_dictionary(&scaled()))
            .stop_on_finding(true)
            .max_execs(48)
            .run();
        assert!(
            report.killed(),
            "stuck enable must diverge on the disable seed"
        );
    }

    #[test]
    fn firmware_finding_inputs_replay_to_the_same_divergence() {
        let mutated = scaled().fault(symsc_plic::config::InjectedFault::If6ThresholdOffByOne);
        let report = Fuzzer::new(mutated)
            .runner(run_firmware_input)
            .seed(4)
            .seeds(firmware_dictionary(&scaled()))
            .stop_on_finding(true)
            .max_execs(96)
            .run();
        assert!(report.killed(), "IF6 must fall to the threshold seed");
        let finding = &report.findings[0];
        let again = run_firmware_input(mutated, &finding.input);
        assert!(
            again
                .errors
                .iter()
                .any(|(k, m)| *k == finding.kind && *m == finding.message),
            "replaying the finding input must reproduce it"
        );
    }
}

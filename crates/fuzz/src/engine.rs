//! The coverage-guided fuzzing engine.
//!
//! Determinism is the design driver: a campaign at a fixed seed produces
//! byte-identical corpora, coverage maps and findings at *any* worker
//! count. The engine achieves this with batch-synchronous rounds:
//!
//! 1. every candidate of a round is a pure function of
//!    `(campaign seed, round, slot index)` and the corpus snapshot taken
//!    at the round boundary;
//! 2. candidates execute in parallel (workers pull slot indexes from a
//!    shared counter — the PR-1 worker-pool pattern), but each result is
//!    written to its own slot;
//! 3. results are merged *in slot order*: coverage-novelty admission and
//!    finding deduplication see the same sequence regardless of which
//!    worker ran what.
//!
//! Executions are concolic traces (`Explorer::trace`) of the
//! differential harness, so the coverage map is keyed by the same
//! structural `(fork-site fingerprint, direction)` pairs that symbolic
//! branch coverage reports.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use symsc_plic::PlicConfig;
use symsc_rng::Rng;
use symsc_symex::{ErrorKind, Explorer};

use crate::grammar::{Program, MAX_OPS, OP_BYTES};
use crate::harness::differential_bench;

/// A branch-coverage point: one structural fork-site fingerprint plus the
/// direction taken — the same key symbolic branch coverage uses.
pub type CoveragePoint = (u128, bool);

/// One deduplicated divergence (or engine error) found by fuzzing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The error class reported by the engine.
    pub kind: ErrorKind,
    /// The check message (findings are deduplicated by `(kind, message)`).
    pub message: String,
    /// The byte input that first reached the divergence.
    pub input: Vec<u8>,
    /// 1-based execution index at which it was first found.
    pub exec: u64,
}

/// The outcome of executing one input: its branch coverage and any
/// errors, in engine order.
#[derive(Clone, Debug, Default)]
pub struct InputOutcome {
    /// `(fingerprint, direction)` pairs covered by the trace.
    pub coverage: BTreeSet<CoveragePoint>,
    /// `(kind, message)` of every error on the trace (at most one with
    /// the current kill-on-error trace semantics, but kept general).
    pub errors: Vec<(ErrorKind, String)>,
}

/// Executes one fuzz input as a concolic trace of the differential
/// harness and collects its coverage and errors.
pub fn run_input(config: PlicConfig, bytes: &[u8]) -> InputOutcome {
    let program = Program::decode(bytes);
    let report = Explorer::new().trace(
        &program.to_assignment(),
        differential_bench(config, program.len()),
    );
    let mut coverage = BTreeSet::new();
    for (site, cov) in &report.stats.branches {
        if cov.taken > 0 {
            coverage.insert((*site, true));
        }
        if cov.not_taken > 0 {
            coverage.insert((*site, false));
        }
    }
    let errors = report
        .errors
        .iter()
        .map(|e| (e.kind, e.message.clone()))
        .collect();
    InputOutcome { coverage, errors }
}

/// The result of a fuzzing campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Total executions performed.
    pub execs: u64,
    /// Rounds completed (round 0 replays the initial seeds).
    pub rounds: u64,
    /// The admitted corpus, in admission order.
    pub corpus: Vec<Vec<u8>>,
    /// The accumulated coverage map.
    pub coverage: BTreeSet<CoveragePoint>,
    /// Deduplicated findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Whether the campaign found any divergence.
    pub fn killed(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// The execution engine behind a campaign: decodes one byte string and
/// reports its coverage and errors. [`run_input`] (the TLM differential
/// harness) is the default; the firmware lane substitutes its own.
pub type InputRunner = fn(PlicConfig, &[u8]) -> InputOutcome;

/// A configured fuzzing campaign (builder-style).
#[derive(Clone, Debug)]
pub struct Fuzzer {
    config: PlicConfig,
    seed: u64,
    workers: usize,
    max_execs: u64,
    batch: usize,
    max_ops: usize,
    seeds: Vec<Vec<u8>>,
    stop_on_finding: bool,
    runner: InputRunner,
}

impl Fuzzer {
    /// A campaign against `config` with the default budget.
    pub fn new(config: PlicConfig) -> Fuzzer {
        Fuzzer {
            config,
            seed: 0,
            workers: 1,
            max_execs: 512,
            batch: 32,
            max_ops: MAX_OPS,
            seeds: Vec::new(),
            stop_on_finding: false,
            runner: run_input,
        }
    }

    /// Campaign seed — the single source of randomness.
    pub fn seed(mut self, seed: u64) -> Fuzzer {
        self.seed = seed;
        self
    }

    /// Worker threads (must not change results, only wall-clock).
    pub fn workers(mut self, workers: usize) -> Fuzzer {
        self.workers = workers.max(1);
        self
    }

    /// Execution budget (rounded up to whole rounds).
    pub fn max_execs(mut self, max_execs: u64) -> Fuzzer {
        self.max_execs = max_execs;
        self
    }

    /// Candidates per round.
    pub fn batch(mut self, batch: usize) -> Fuzzer {
        self.batch = batch.max(1);
        self
    }

    /// Cap on operations per generated program.
    pub fn max_ops(mut self, max_ops: usize) -> Fuzzer {
        self.max_ops = max_ops.clamp(1, MAX_OPS);
        self
    }

    /// Initial seed corpus, replayed as round 0 (e.g. symbolic
    /// counterexample models from the seed exchange).
    pub fn seeds(mut self, seeds: Vec<Vec<u8>>) -> Fuzzer {
        self.seeds = seeds;
        self
    }

    /// Stop at the first round that produced a finding (kill-matrix
    /// mode).
    pub fn stop_on_finding(mut self, stop: bool) -> Fuzzer {
        self.stop_on_finding = stop;
        self
    }

    /// Substitutes the input runner (default: the TLM differential
    /// harness, [`run_input`]). The mutation/coverage machinery is
    /// runner-agnostic — the firmware lane plugs in here.
    pub fn runner(mut self, runner: InputRunner) -> Fuzzer {
        self.runner = runner;
        self
    }

    /// Runs the campaign to its budget (or first finding, if configured).
    pub fn run(&self) -> FuzzReport {
        let mut report = FuzzReport::default();
        let mut seen: BTreeMap<(ErrorKind, String), ()> = BTreeMap::new();
        let mut round: u64 = 0;
        while report.execs < self.max_execs {
            if self.stop_on_finding && report.killed() {
                break;
            }
            let candidates = if round == 0 && !self.seeds.is_empty() {
                self.seeds.clone()
            } else {
                (0..self.batch)
                    .map(|slot| {
                        let mut rng = Rng::seed_from_u64(lane_seed(self.seed, round, slot as u64));
                        generate(&mut rng, &report.corpus, self.max_ops)
                    })
                    .collect()
            };
            let outcomes = run_batch(self.config, &candidates, self.workers, self.runner);
            for (slot, outcome) in outcomes.into_iter().enumerate() {
                let exec = report.execs + 1;
                report.execs = exec;
                let novel: Vec<CoveragePoint> = outcome
                    .coverage
                    .iter()
                    .filter(|p| !report.coverage.contains(*p))
                    .copied()
                    .collect();
                if !novel.is_empty() {
                    report.coverage.extend(novel);
                    report.corpus.push(candidates[slot].clone());
                }
                for (kind, message) in outcome.errors {
                    if seen.insert((kind, message.clone()), ()).is_none() {
                        report.findings.push(Finding {
                            kind,
                            message,
                            input: candidates[slot].clone(),
                            exec,
                        });
                    }
                }
            }
            round += 1;
            report.rounds = round;
        }
        report
    }
}

/// Derives the per-slot RNG seed: a pure function of the campaign seed,
/// the round, and the slot index (never of worker identity).
fn lane_seed(seed: u64, round: u64, slot: u64) -> u64 {
    let mut h = seed ^ 0x6A09_E667_F3BC_C908;
    for v in [round, slot] {
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
    }
    h
}

/// Executes a batch of candidates, `workers`-wide, results in slot order.
fn run_batch(
    config: PlicConfig,
    candidates: &[Vec<u8>],
    workers: usize,
    runner: InputRunner,
) -> Vec<InputOutcome> {
    if workers <= 1 || candidates.len() <= 1 {
        return candidates.iter().map(|c| runner(config, c)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<InputOutcome>>> = Mutex::new(vec![None; candidates.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(candidates.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                let outcome = runner(config, &candidates[i]);
                slots.lock().expect("batch slots poisoned")[i] = Some(outcome);
            });
        }
    });
    slots
        .into_inner()
        .expect("batch slots poisoned")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// One candidate: usually a havoc mutation of a corpus entry, sometimes a
/// fresh random program (always, while the corpus is empty).
fn generate(rng: &mut Rng, corpus: &[Vec<u8>], max_ops: usize) -> Vec<u8> {
    if corpus.is_empty() || rng.gen_range_inclusive(0, 9) == 0 {
        return random_program(rng, max_ops);
    }
    let base = corpus[rng.gen_range_inclusive(0, corpus.len() as u64 - 1) as usize].clone();
    havoc(rng, base, corpus, max_ops)
}

fn random_program(rng: &mut Rng, max_ops: usize) -> Vec<u8> {
    let ops = rng.gen_range_inclusive(1, max_ops as u64) as usize;
    (0..ops * OP_BYTES).map(|_| rng.next_u32() as u8).collect()
}

/// Stacked havoc mutations: byte-level tweaks plus op-slot-level
/// insertion/removal/duplication and corpus splicing.
fn havoc(rng: &mut Rng, mut bytes: Vec<u8>, corpus: &[Vec<u8>], max_ops: usize) -> Vec<u8> {
    let stack = 1 + rng.gen_range_inclusive(0, 3);
    for _ in 0..stack {
        let choice = rng.gen_range_inclusive(0, 6);
        match choice {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range_inclusive(0, bytes.len() as u64 - 1) as usize;
                bytes[i] ^= 1 << rng.gen_range_inclusive(0, 7);
            }
            1 if !bytes.is_empty() => {
                let i = rng.gen_range_inclusive(0, bytes.len() as u64 - 1) as usize;
                bytes[i] = rng.next_u32() as u8;
            }
            2 if !bytes.is_empty() => {
                let i = rng.gen_range_inclusive(0, bytes.len() as u64 - 1) as usize;
                let delta = rng.gen_range_inclusive(1, 4) as u8;
                bytes[i] = if rng.gen_bool() {
                    bytes[i].wrapping_add(delta)
                } else {
                    bytes[i].wrapping_sub(delta)
                };
            }
            3 => {
                // insert a fresh random op slot at a slot boundary
                if bytes.len() / OP_BYTES < max_ops {
                    let slots = bytes.len() / OP_BYTES;
                    let at = rng.gen_range_inclusive(0, slots as u64) as usize * OP_BYTES;
                    let fresh: Vec<u8> = (0..OP_BYTES).map(|_| rng.next_u32() as u8).collect();
                    bytes.splice(at..at, fresh);
                }
            }
            4 => {
                // drop one op slot
                let slots = bytes.len() / OP_BYTES;
                if slots > 1 {
                    let at = rng.gen_range_inclusive(0, slots as u64 - 1) as usize * OP_BYTES;
                    bytes.drain(at..at + OP_BYTES);
                }
            }
            5 => {
                // duplicate one op slot in place
                let slots = bytes.len() / OP_BYTES;
                if slots >= 1 && slots < max_ops {
                    let at = rng.gen_range_inclusive(0, slots as u64 - 1) as usize * OP_BYTES;
                    let dup: Vec<u8> = bytes[at..at + OP_BYTES].to_vec();
                    bytes.splice(at..at, dup);
                }
            }
            _ => {
                // splice: replace the tail with another corpus entry's tail
                let other = &corpus[rng.gen_range_inclusive(0, corpus.len() as u64 - 1) as usize];
                if !other.is_empty() && !bytes.is_empty() {
                    let cut = rng.gen_range_inclusive(0, bytes.len() as u64 - 1) as usize;
                    let from = rng.gen_range_inclusive(0, other.len() as u64 - 1) as usize;
                    bytes.truncate(cut);
                    bytes.extend_from_slice(&other[from..]);
                }
            }
        }
    }
    bytes.truncate(max_ops * OP_BYTES);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::PlicVariant;

    fn scaled() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    #[test]
    fn baseline_campaign_is_clean_and_grows_coverage() {
        let report = Fuzzer::new(scaled()).seed(11).max_execs(96).batch(24).run();
        assert_eq!(
            report.findings,
            Vec::new(),
            "fixed model must not diverge from the reference"
        );
        assert!(report.execs >= 96);
        assert!(!report.corpus.is_empty());
        assert!(report.coverage.len() > 50, "coverage map stays too small");
    }

    #[test]
    fn campaigns_are_byte_identical_across_worker_counts() {
        let run = |workers| {
            Fuzzer::new(scaled())
                .seed(7)
                .workers(workers)
                .max_execs(72)
                .batch(18)
                .run()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.corpus, eight.corpus);
        assert_eq!(one.coverage, eight.coverage);
        assert_eq!(one.findings, eight.findings);
        assert_eq!(one.execs, eight.execs);
        assert_eq!(one.rounds, eight.rounds);
    }

    #[test]
    fn seeded_campaign_replays_seeds_first() {
        use crate::harness::op;
        let killer = vec![op::TRIGGER as u8, 17, 0, 0, 0, 0];
        let mutated = scaled().fault(symsc_plic::config::InjectedFault::If1OffByOneGateway);
        let report = Fuzzer::new(mutated)
            .seed(3)
            .seeds(vec![killer.clone()])
            .stop_on_finding(true)
            .max_execs(64)
            .run();
        assert!(report.killed());
        assert_eq!(report.findings[0].exec, 1, "seed must kill on first exec");
        assert_eq!(report.findings[0].input, killer);
    }
}

//! The cross-level fuzz lane: the cycle-level PLIC as a second
//! [`InputRunner`](crate::engine::InputRunner), differentially checked
//! against the *fixed TLM model* instead of the concrete reference.
//!
//! The lane reuses the byte grammar and operation selectors of the TLM
//! lane verbatim ([`crate::harness::op`], same 6-byte slots, same
//! `op{i}_kind`/`op{i}_a`/`op{i}_b` variables), so corpus machinery,
//! probe scripts and counterexample round-trips work unchanged. The
//! configuration's mutation is carried by the **cycle-level side**; the
//! TLM oracle runs with the mutation stripped — a fuzz campaign over a
//! mutated config therefore hunts for concrete inputs on which the
//! mutated cycle model diverges from the clean TLM model, the concrete
//! complement of the solver-checked X suite.

use symsc_plic::PlicConfig;
use symsc_rtl::CrossChecker;
use symsc_symex::{Explorer, SymCtx, Width};

use crate::engine::InputOutcome;
use crate::grammar::{Program, OP_KINDS};
use crate::harness::{op, pin_mod, OpPin};

/// The cross-level differential testbench over `len` fully symbolic
/// operation slots.
pub fn cycle_differential_bench(
    config: PlicConfig,
    len: usize,
) -> impl Fn(&SymCtx) + Send + Sync + 'static {
    scripted_cycle_bench(config, vec![OpPin::free(); len])
}

/// The cross-level differential testbench with per-slot pinning (the
/// cycle lane's analog of [`crate::harness::scripted_bench`]).
pub fn scripted_cycle_bench(
    config: PlicConfig,
    pins: Vec<OpPin>,
) -> impl Fn(&SymCtx) + Send + Sync + 'static {
    move |ctx: &SymCtx| run_cycle_program(ctx, config, &pins)
}

fn run_cycle_program(ctx: &SymCtx, config: PlicConfig, pins: &[OpPin]) {
    let sources = config.sources;
    let bitmap_words = config.bitmap_words() as u32;

    // The mutation under test lives in the cycle-level model; the TLM
    // side is the clean oracle.
    let mut tlm_config = config;
    tlm_config.mutation = None;
    let mut x = CrossChecker::new(ctx, tlm_config, config);

    for (i, pin) in pins.iter().enumerate() {
        let kind_w = ctx.symbolic(&format!("op{i}_kind"), Width::W8);
        let a_w = ctx.symbolic(&format!("op{i}_a"), Width::W32);
        let b_w = ctx.symbolic(&format!("op{i}_b"), Width::W8);
        if let Some(k) = pin.kind {
            ctx.assume(&kind_w.eq(&ctx.word(u64::from(k), Width::W8)));
        }
        if let Some(a) = pin.a {
            ctx.assume(&a_w.eq(&ctx.word32(a)));
        }
        if let Some(b) = pin.b {
            ctx.assume(&b_w.eq(&ctx.word(u64::from(b), Width::W8)));
        }

        let (_, kind) = pin_mod(ctx, &kind_w.zero_ext(Width::W32), u32::from(OP_KINDS));
        match kind {
            // Same id range as the TLM lane (`0..=sources+1`); the TLM
            // decode rejects invalid ids as a no-op, and the paired
            // direct store mirrors that by skipping them.
            op::SET_PRIORITY => {
                let (irq_t, irq) = pin_mod(ctx, &a_w, sources + 2);
                let (val_t, _) = pin_mod(ctx, &b_w.zero_ext(Width::W32), config.max_priority + 1);
                if (1..=sources).contains(&irq) {
                    x.set_priority(&irq_t, &val_t);
                }
            }
            op::WRITE_ENABLE => {
                let (_, widx) = pin_mod(ctx, &b_w.zero_ext(Width::W32), bitmap_words);
                // Both levels' bitmap writers ignore out-of-range flags
                // identically, so the raw word goes through unmasked.
                x.write_enable_word(0, widx, &a_w);
            }
            op::SET_THRESHOLD => {
                let (thr_t, _) = pin_mod(ctx, &a_w, config.max_priority + 1);
                x.set_threshold(0, &thr_t);
            }
            op::TRIGGER => {
                let (irq_t, _) = pin_mod(ctx, &a_w, sources + 2);
                x.trigger(&irq_t);
            }
            op::STEP => {
                x.step();
                let expect = x.cycle().model().next_request(0, true);
                ctx.check(
                    &x.plic().next_deliverable().eq(&expect),
                    "next deliverable interrupt agrees across levels",
                );
            }
            op::CLAIM => {
                let _ = x.claim(0);
            }
            op::COMPLETE => {
                let (irq_t, _) = pin_mod(ctx, &a_w, sources + 2);
                x.complete(0, &irq_t);
            }
            // The cross lane's read op is the full register sweep — every
            // visible register pair checked on the solver.
            op::READ_PENDING => {
                x.check_registers();
            }
            _ => unreachable!("kind is reduced modulo OP_KINDS"),
        }
    }
    x.check_lines();
}

/// Executes one cross-level fuzz input as a concolic trace and collects
/// its coverage and errors — the cycle lane's
/// [`InputRunner`](crate::engine::InputRunner).
pub fn run_cycle_input(config: PlicConfig, bytes: &[u8]) -> InputOutcome {
    let program = Program::decode(bytes);
    let report = Explorer::new().trace(
        &program.to_assignment(),
        cycle_differential_bench(config, program.len()),
    );
    let mut coverage = std::collections::BTreeSet::new();
    for (site, cov) in &report.stats.branches {
        if cov.taken > 0 {
            coverage.insert((*site, true));
        }
        if cov.not_taken > 0 {
            coverage.insert((*site, false));
        }
    }
    let errors = report
        .errors
        .iter()
        .map(|e| (e.kind, e.message.clone()))
        .collect();
    InputOutcome { coverage, errors }
}

/// Harvests fuzz seeds from a bounded symbolic exploration of a
/// cross-level probe: every distinct counterexample model (a concrete
/// input on which the mutated cycle model diverges from the clean TLM
/// model) is encoded as a byte input. The cycle-lane analog of
/// [`crate::exchange::seeds_from_symbolic`].
pub fn seeds_from_cycle_symbolic(
    config: PlicConfig,
    pins: &[OpPin],
    max_paths: u64,
) -> Vec<Vec<u8>> {
    let report = Explorer::new()
        .max_paths(max_paths)
        .explore(scripted_cycle_bench(config, pins.to_vec()));
    let mut seen: std::collections::BTreeSet<Vec<u8>> = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for error in report.distinct_errors() {
        let bytes = Program::from_assignment(&error.counterexample, pins.len()).encode();
        if seen.insert(bytes.clone()) {
            out.push(bytes);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fuzzer;
    use symsc_plic::{MutationOp, PlicVariant};

    fn scaled() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    /// arm irq 3 (prio 5), trigger it, step, claim, complete, step —
    /// the cross-lane twin of the TLM harness's `arm_and_fire`.
    fn arm_and_fire() -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 3, 0, 0, 0, 5]);
        p.extend_from_slice(&[op::WRITE_ENABLE as u8, 0xFF, 0xFF, 0xFF, 0xFF, 0]);
        p.extend_from_slice(&[op::TRIGGER as u8, 3, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::CLAIM as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::COMPLETE as u8, 3, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::READ_PENDING as u8, 0, 0, 0, 0, 0]);
        p
    }

    #[test]
    fn the_levels_agree_on_the_happy_path() {
        let outcome = run_cycle_input(scaled(), &arm_and_fire());
        assert_eq!(outcome.errors, Vec::new(), "unexpected divergence");
        assert!(!outcome.coverage.is_empty());
    }

    #[test]
    fn a_cycle_campaign_is_clean_on_the_fixed_model() {
        let report = Fuzzer::new(scaled())
            .runner(run_cycle_input)
            .seed(31)
            .max_execs(48)
            .batch(12)
            .seeds(vec![arm_and_fire()])
            .run();
        assert_eq!(report.findings, Vec::new(), "fixed model must not diverge");
        assert!(!report.corpus.is_empty());
    }

    #[test]
    fn cycle_campaigns_are_byte_identical_across_worker_counts() {
        let run = |workers| {
            Fuzzer::new(scaled())
                .runner(run_cycle_input)
                .seed(17)
                .workers(workers)
                .max_execs(36)
                .batch(12)
                .seeds(vec![arm_and_fire()])
                .run()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.corpus, eight.corpus);
        assert_eq!(one.coverage, eight.coverage);
        assert_eq!(one.findings, eight.findings);
    }

    #[test]
    fn a_cycle_side_mutant_falls_to_the_seeded_campaign() {
        let mutated = scaled().mutate(MutationOp::ClaimSkipsClear);
        let report = Fuzzer::new(mutated)
            .runner(run_cycle_input)
            .seed(5)
            .seeds(vec![arm_and_fire()])
            .stop_on_finding(true)
            .max_execs(48)
            .run();
        assert!(report.killed(), "claim-skips-clear must diverge on replay");
    }

    #[test]
    fn cycle_findings_replay_to_the_same_divergence() {
        let mutated = scaled().mutate(MutationOp::TieBreakHighestId);
        // Two equal-priority requests: the tie-break mutant claims the
        // higher id, the TLM oracle the lower.
        let mut p = Vec::new();
        p.extend_from_slice(&[op::WRITE_ENABLE as u8, 0xFF, 0xFF, 0xFF, 0xFF, 0]);
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 4, 0, 0, 0, 2]);
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 9, 0, 0, 0, 2]);
        p.extend_from_slice(&[op::TRIGGER as u8, 4, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::TRIGGER as u8, 9, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::CLAIM as u8, 0, 0, 0, 0, 0]);
        let outcome = run_cycle_input(mutated, &p);
        // The trace kills on the first divergent check — the STEP's
        // next-deliverable comparison fires before the claim itself.
        assert!(
            outcome
                .errors
                .iter()
                .any(|(_, m)| m.contains("agrees across levels")),
            "tie-break divergence must surface on an equivalence check: {:?}",
            outcome.errors
        );
        let again = run_cycle_input(mutated, &p);
        assert_eq!(outcome.errors, again.errors, "replay is deterministic");
    }

    #[test]
    fn a_cross_probe_exports_seeds_against_a_threshold_mutant() {
        use symsc_plic::ThresholdCmp;
        let mutated = scaled().mutate(MutationOp::ThresholdCompare(ThresholdCmp::OrEqual));
        let seeds = seeds_from_cycle_symbolic(mutated, &crate::exchange::masking_probe(3), 64);
        assert!(
            !seeds.is_empty(),
            "exploration must find the boundary model"
        );
        let killed = seeds
            .iter()
            .any(|s| !run_cycle_input(mutated, s).errors.is_empty());
        assert!(killed, "an exported seed must reproduce the divergence");
        // The same probe on the unmutated model exports nothing.
        assert!(
            seeds_from_cycle_symbolic(scaled(), &crate::exchange::masking_probe(3), 64).is_empty()
        );
    }
}

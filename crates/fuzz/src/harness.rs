//! The differential testbench: one decoded program, executed against the
//! PLIC TLM model with the concrete [`ReferencePlic`] as oracle.
//!
//! The harness is an ordinary symbolic testbench closure — the same shape
//! as the paper's T1–T5 — and is executed in three modes without any code
//! change:
//!
//! * **concolic trace** (`Explorer::trace`): the fuzzer's execution mode.
//!   Inputs stay symbolic terms, every `decide` is evaluated under the
//!   fuzz input's variable assignment, and the `(fork-site fingerprint,
//!   direction)` pairs recorded are *identical* to the ones full symbolic
//!   exploration would record on the same path. That is what makes fuzz
//!   coverage and symbolic branch coverage directly comparable.
//! * **full exploration** (`Explorer::explore`): used by the seed
//!   exchange to harvest counterexample models as fuzz seeds.
//! * **replay** (`Explorer::replay`): used to confirm fuzz findings.
//!
//! Every operand is interpreted modulo its arm-specific range, so any
//! byte string is a valid stimulus. Concrete values are pinned with the
//! *enumerate* idiom (a `decide` equality chain over the reduced term):
//! in trace mode the chain evaluates; under exploration it forks — either
//! way the same term structure, hence the same fork-site fingerprints.

use std::cell::Cell;
use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Kernel, SimTime};
use symsc_plic::config::{CLAIM_BASE, ENABLE_BASE, PENDING_BASE, THRESHOLD_BASE};
use symsc_plic::reference::ReferencePlic;
use symsc_plic::{InterruptTarget, Plic, PlicConfig};
use symsc_symex::{SymCtx, SymWord, Width};
use symsc_tlm::{BlockingTransport, GenericPayload};

use crate::grammar::OP_KINDS;

/// Operation selectors (`kind % OP_KINDS`), in the order the enumerate
/// chain probes them.
pub mod op {
    /// Write `priority[irq]` over TLM (`irq` ranges over `0..=sources+1`
    /// so invalid decodes are exercised).
    pub const SET_PRIORITY: u32 = 0;
    /// Write one word of the enable bitmap over TLM.
    pub const WRITE_ENABLE: u32 = 1;
    /// Write the HART-0 threshold register over TLM.
    pub const SET_THRESHOLD: u32 = 2;
    /// Raise an external interrupt line (`0..=sources+1`).
    pub const TRIGGER: u32 = 3;
    /// Advance simulated time by one clock cycle and cross-check the
    /// interrupt line, notification count and next deliverable id.
    pub const STEP: u32 = 4;
    /// Read `claim_response` and cross-check the claimed id.
    pub const CLAIM: u32 = 5;
    /// Write `claim_response` (completion handshake).
    pub const COMPLETE: u32 = 6;
    /// Read one word of the pending bitmap and cross-check it.
    pub const READ_PENDING: u32 = 7;
}

/// Per-slot constraints for the scripted variant: `Some` pins the
/// variable to a concrete value with an `assume`, `None` leaves it fully
/// symbolic. Used by the seed exchange to carve tractable scenario slices
/// out of the full program space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpPin {
    /// Pin the operation selector.
    pub kind: Option<u8>,
    /// Pin the primary operand.
    pub a: Option<u32>,
    /// Pin the secondary operand.
    pub b: Option<u8>,
}

impl OpPin {
    /// A fully symbolic slot.
    pub fn free() -> OpPin {
        OpPin::default()
    }

    /// A slot with the operation selector pinned and both operands free.
    pub fn kind(kind: u32) -> OpPin {
        OpPin {
            kind: Some(kind as u8),
            ..OpPin::default()
        }
    }

    /// A fully pinned slot.
    pub fn fixed(kind: u32, a: u32, b: u8) -> OpPin {
        OpPin {
            kind: Some(kind as u8),
            a: Some(a),
            b: Some(b),
        }
    }
}

struct CountingTarget {
    rises: Rc<Cell<u32>>,
}

impl InterruptTarget for CountingTarget {
    fn trigger_external_interrupt(&mut self) {
        self.rises.set(self.rises.get() + 1);
    }
}

/// The differential testbench over `len` fully symbolic operation slots.
pub fn differential_bench(
    config: PlicConfig,
    len: usize,
) -> impl Fn(&SymCtx) + Send + Sync + 'static {
    scripted_bench(config, vec![OpPin::free(); len])
}

/// The differential testbench with per-slot pinning (see [`OpPin`]).
pub fn scripted_bench(
    config: PlicConfig,
    pins: Vec<OpPin>,
) -> impl Fn(&SymCtx) + Send + Sync + 'static {
    move |ctx: &SymCtx| run_program(ctx, config, &pins)
}

/// Reduces `w` modulo `range` and pins a concrete value with an
/// enumerate chain. Returns the *term* (for the model) and the *value*
/// (for the oracle); on any single path the two agree.
pub(crate) fn pin_mod(ctx: &SymCtx, w: &SymWord, range: u32) -> (SymWord, u32) {
    debug_assert!(range >= 1);
    let m = w.urem(&ctx.word32(range));
    for k in 0..range.saturating_sub(1) {
        if ctx.decide(&m.eq(&ctx.word32(k))) {
            return (m, k);
        }
    }
    (m, range - 1)
}

fn write_word(
    ctx: &SymCtx,
    kernel: &mut Kernel,
    plic: &mut Plic,
    addr: &SymWord,
    value: &SymWord,
) -> bool {
    let mut txn = GenericPayload::write(ctx, addr.clone(), 4);
    txn.set_word(0, value.clone());
    plic.b_transport(ctx, kernel, &mut txn);
    txn.response.is_ok()
}

fn read_word(
    ctx: &SymCtx,
    kernel: &mut Kernel,
    plic: &mut Plic,
    addr: &SymWord,
) -> (SymWord, bool) {
    let mut txn = GenericPayload::read(ctx, addr.clone(), 4);
    plic.b_transport(ctx, kernel, &mut txn);
    (txn.word(0).clone(), txn.response.is_ok())
}

fn run_program(ctx: &SymCtx, config: PlicConfig, pins: &[OpPin]) {
    let sources = config.sources;
    let bitmap_words = config.bitmap_words() as u32;

    let mut kernel = Kernel::new();
    let mut plic = Plic::new(ctx, &mut kernel, config);
    let rises = Rc::new(Cell::new(0u32));
    plic.connect_hart(Rc::new(RefCell::new(CountingTarget {
        rises: rises.clone(),
    })));
    kernel.step();

    let mut oracle = ReferencePlic::new(sources);
    // The shadow protocol mirrors the kernel-level delivery contract:
    // `trigger`/`complete` schedule a delivery attempt one clock cycle
    // out (duplicates collapse, earliest wins — the kernel's notify
    // override rule), and each STEP consumes attempts that have come due.
    let mut now = SimTime::ZERO;
    let mut shadow_due: Option<SimTime> = None;
    let mut shadow_eip = false;
    let mut shadow_rises = 0u32;

    let schedule_attempt = |due: &mut Option<SimTime>, at: SimTime| {
        *due = Some(match *due {
            Some(d) if d <= at => d,
            _ => at,
        });
    };

    for (i, pin) in pins.iter().enumerate() {
        let kind_w = ctx.symbolic(&format!("op{i}_kind"), Width::W8);
        let a_w = ctx.symbolic(&format!("op{i}_a"), Width::W32);
        let b_w = ctx.symbolic(&format!("op{i}_b"), Width::W8);
        if let Some(k) = pin.kind {
            ctx.assume(&kind_w.eq(&ctx.word(u64::from(k), Width::W8)));
        }
        if let Some(a) = pin.a {
            ctx.assume(&a_w.eq(&ctx.word32(a)));
        }
        if let Some(b) = pin.b {
            ctx.assume(&b_w.eq(&ctx.word(u64::from(b), Width::W8)));
        }

        let (_, kind) = pin_mod(ctx, &kind_w.zero_ext(Width::W32), u32::from(OP_KINDS));
        match kind {
            op::SET_PRIORITY => {
                let (irq_t, irq) = pin_mod(ctx, &a_w, sources + 2);
                let (val_t, val) = pin_mod(ctx, &b_w.zero_ext(Width::W32), config.max_priority + 1);
                let addr = irq_t.mul(&ctx.word32(4));
                let ok = write_word(ctx, &mut kernel, &mut plic, &addr, &val_t);
                let valid = (1..=sources).contains(&irq);
                ctx.check_concrete(ok == valid, "priority write status matches decode");
                if valid {
                    oracle.set_priority(irq, val);
                }
            }
            op::WRITE_ENABLE => {
                let (widx_t, widx) = pin_mod(ctx, &b_w.zero_ext(Width::W32), bitmap_words);
                let addr = ctx
                    .word32(ENABLE_BASE as u32)
                    .add(&widx_t.mul(&ctx.word32(4)));
                let mut mask = 0u32;
                for j in 0..32u32 {
                    if (1..=sources).contains(&(32 * widx + j)) {
                        mask |= 1 << j;
                    }
                }
                let val_t = a_w.and(&ctx.word32(mask));
                let mut bits = 0u32;
                for j in 0..32u32 {
                    if mask & (1 << j) != 0 && ctx.decide(&a_w.bit(j)) {
                        bits |= 1 << j;
                    }
                }
                let ok = write_word(ctx, &mut kernel, &mut plic, &addr, &val_t);
                ctx.check_concrete(ok, "enable write must succeed");
                for j in 0..32u32 {
                    if mask & (1 << j) != 0 {
                        oracle.set_enabled(32 * widx + j, bits & (1 << j) != 0);
                    }
                }
            }
            op::SET_THRESHOLD => {
                let (thr_t, thr) = pin_mod(ctx, &a_w, config.max_priority + 1);
                let addr = ctx.word32(THRESHOLD_BASE as u32);
                let ok = write_word(ctx, &mut kernel, &mut plic, &addr, &thr_t);
                ctx.check_concrete(ok, "threshold write must succeed");
                oracle.set_threshold(thr);
            }
            op::TRIGGER => {
                let (irq_t, irq) = pin_mod(ctx, &a_w, sources + 2);
                plic.trigger_interrupt(ctx, &mut kernel, &irq_t);
                if (1..=sources).contains(&irq) {
                    let _ = oracle.trigger(irq);
                    schedule_attempt(&mut shadow_due, now + config.clock_cycle);
                }
            }
            op::STEP => {
                now += config.clock_cycle;
                kernel.run_until(now);
                if shadow_due.is_some_and(|d| d <= now) {
                    shadow_due = None;
                    if !shadow_eip && oracle.next_deliverable().is_some() {
                        shadow_eip = true;
                        shadow_rises += 1;
                    }
                }
                ctx.check_concrete(
                    plic.hart_eip() == shadow_eip,
                    "external interrupt line matches reference",
                );
                ctx.check_concrete(
                    rises.get() == shadow_rises,
                    "interrupt notification count matches reference",
                );
                let expect = oracle.next_deliverable().unwrap_or(0);
                ctx.check(
                    &plic.next_deliverable().eq(&ctx.word32(expect)),
                    "next deliverable interrupt matches reference",
                );
            }
            op::CLAIM => {
                let addr = ctx.word32(CLAIM_BASE as u32);
                let (word, ok) = read_word(ctx, &mut kernel, &mut plic, &addr);
                ctx.check_concrete(ok, "claim read must succeed");
                let expect = oracle.claim();
                ctx.check(
                    &word.eq(&ctx.word32(expect)),
                    "claimed id matches reference",
                );
            }
            op::COMPLETE => {
                let (irq_t, _) = pin_mod(ctx, &a_w, sources + 2);
                let addr = ctx.word32(CLAIM_BASE as u32);
                let ok = write_word(ctx, &mut kernel, &mut plic, &addr, &irq_t);
                ctx.check_concrete(ok, "completion write must succeed");
                shadow_eip = false;
                schedule_attempt(&mut shadow_due, now + config.clock_cycle);
            }
            op::READ_PENDING => {
                let (widx_t, widx) = pin_mod(ctx, &b_w.zero_ext(Width::W32), bitmap_words);
                let addr = ctx
                    .word32(PENDING_BASE as u32)
                    .add(&widx_t.mul(&ctx.word32(4)));
                let (word, ok) = read_word(ctx, &mut kernel, &mut plic, &addr);
                ctx.check_concrete(ok, "pending read must succeed");
                let mut expect = 0u32;
                for j in 0..32u32 {
                    let id = 32 * widx + j;
                    if (1..=sources).contains(&id) && oracle.is_pending(id) {
                        expect |= 1 << j;
                    }
                }
                ctx.check(
                    &word.eq(&ctx.word32(expect)),
                    "pending bitmap matches reference",
                );
            }
            _ => unreachable!("kind is reduced modulo OP_KINDS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Program;
    use symsc_plic::PlicVariant;
    use symsc_symex::Explorer;

    fn scaled() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn trace(config: PlicConfig, bytes: &[u8]) -> symsc_symex::Report {
        let program = Program::decode(bytes);
        Explorer::new().trace(
            &program.to_assignment(),
            differential_bench(config, program.len()),
        )
    }

    /// arm irq 3 (prio 5), trigger it, step, claim, complete, step.
    fn arm_and_fire() -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 3, 0, 0, 0, 5]);
        p.extend_from_slice(&[op::WRITE_ENABLE as u8, 0xFF, 0xFF, 0xFF, 0xFF, 0]);
        p.extend_from_slice(&[op::TRIGGER as u8, 3, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::CLAIM as u8, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::COMPLETE as u8, 3, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        p
    }

    #[test]
    fn fixed_model_agrees_with_reference_on_the_happy_path() {
        let report = trace(scaled(), &arm_and_fire());
        assert!(report.passed(), "unexpected divergence: {report}");
        assert_eq!(report.stats.paths, 1);
    }

    #[test]
    fn invalid_priority_write_is_rejected_on_both_sides() {
        // irq decode 0 and sources+1 are both invalid addresses.
        let mut p = Vec::new();
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 0, 0, 0, 0, 5]);
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 17, 0, 0, 0, 5]);
        let report = trace(scaled(), &p);
        assert!(report.passed(), "unexpected divergence: {report}");
    }

    #[test]
    fn trace_uses_no_solver_queries() {
        let report = trace(scaled(), &arm_and_fire());
        assert_eq!(report.stats.solver.queries, 0);
    }

    #[test]
    fn if6_threshold_boundary_diverges() {
        // priority == threshold: the fixed model masks the interrupt,
        // IF6's `>=` delivers it.
        let mut p = Vec::new();
        p.extend_from_slice(&[op::SET_PRIORITY as u8, 3, 0, 0, 0, 5]);
        p.extend_from_slice(&[op::WRITE_ENABLE as u8, 0xFF, 0xFF, 0xFF, 0xFF, 0]);
        p.extend_from_slice(&[op::SET_THRESHOLD as u8, 5, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::TRIGGER as u8, 3, 0, 0, 0, 0]);
        p.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        assert!(trace(scaled(), &p).passed());
        let mutated = scaled().fault(symsc_plic::config::InjectedFault::If6ThresholdOffByOne);
        let report = trace(mutated, &p);
        assert!(!report.passed(), "IF6 must diverge at the boundary");
    }

    #[test]
    fn if1_gateway_overflow_is_an_engine_error() {
        let p = [op::TRIGGER as u8, 17, 0, 0, 0, 0];
        assert!(trace(scaled(), &p).passed());
        let mutated = scaled().fault(symsc_plic::config::InjectedFault::If1OffByOneGateway);
        let report = trace(mutated, &p);
        assert!(!report.passed());
        assert_eq!(
            report.first_error().unwrap().kind,
            symsc_symex::ErrorKind::OutOfBounds
        );
    }
}

//! The fuzz kill matrix: one coverage-guided differential campaign per
//! mutant, sharing a single minimized baseline corpus.
//!
//! The procedure mirrors the symbolic kill matrix of `symsc-mutate` so
//! the two columns are comparable mutant-by-mutant:
//!
//! 1. a baseline campaign runs against the *unmutated* configuration —
//!    it must stay finding-free and its corpus, minimized, becomes the
//!    shared seed set;
//! 2. each mutant gets its own campaign that replays the shared corpus
//!    first (round 0) and then runs seeded havoc rounds until the first
//!    finding or the budget;
//! 3. a mutant is *killed* when its campaign reports any divergence from
//!    the reference model (or any engine error, e.g. the IF1 overflow).

use symsc_mutate::Mutant;
use symsc_plic::{Mutation, PlicConfig};

use crate::engine::Fuzzer;
use crate::minimize::minimize;

/// Tunables of a fuzz kill-matrix run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzMatrixParams {
    /// Campaign seed (the single source of randomness).
    pub seed: u64,
    /// Worker threads per campaign (results are worker-count invariant).
    pub workers: usize,
    /// Execution budget of the baseline corpus-building campaign.
    pub baseline_execs: u64,
    /// Execution budget of each per-mutant campaign.
    pub mutant_execs: u64,
    /// Candidates per round.
    pub batch: usize,
}

impl Default for FuzzMatrixParams {
    fn default() -> FuzzMatrixParams {
        FuzzMatrixParams {
            seed: 0xF0F2,
            workers: 1,
            baseline_execs: 256,
            mutant_execs: 320,
            batch: 32,
        }
    }
}

/// Per-mutant result of the fuzz matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzMutantRow {
    /// Mutant name (matches the symbolic matrix).
    pub name: String,
    /// One-line description of the seeded defect.
    pub description: String,
    /// Whether this is one of the paper's IF presets.
    pub preset: bool,
    /// Whether the campaign found a divergence.
    pub killed: bool,
    /// Executions spent (including the corpus replay).
    pub execs: u64,
    /// `kind: message` of the killing finding, if any.
    pub finding: Option<String>,
}

/// The complete fuzz kill matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzMatrix {
    /// The unmutated configuration all campaigns derive from.
    pub config: PlicConfig,
    /// Executions spent building the baseline corpus.
    pub baseline_execs: u64,
    /// Findings of the baseline campaign (must be 0 — the fixed model
    /// agrees with the reference).
    pub baseline_findings: usize,
    /// Size of the minimized shared corpus.
    pub corpus_len: usize,
    /// `(fork-site, direction)` points covered by the baseline campaign.
    pub coverage_points: usize,
    /// One row per mutant, in registry order.
    pub rows: Vec<FuzzMutantRow>,
}

impl FuzzMatrix {
    /// Killed mutants / total mutants, in percent.
    pub fn kill_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let killed = self.rows.iter().filter(|r| r.killed).count();
        100.0 * killed as f64 / self.rows.len() as f64
    }

    /// Killed preset mutants (of the paper's IF1–IF6).
    pub fn presets_killed(&self) -> usize {
        self.rows.iter().filter(|r| r.preset && r.killed).count()
    }

    /// Killed generated (non-preset) mutants.
    pub fn generated_killed(&self) -> usize {
        self.rows.iter().filter(|r| !r.preset && r.killed).count()
    }

    /// Mutants no campaign killed.
    pub fn survivors(&self) -> Vec<&FuzzMutantRow> {
        self.rows.iter().filter(|r| !r.killed).collect()
    }
}

/// Runs the fuzz kill matrix over `mutants` (see the module docs for the
/// procedure). Deterministic for fixed `params.seed` at any
/// `params.workers`.
pub fn run_fuzz_matrix(
    config: PlicConfig,
    mutants: &[Mutant],
    params: FuzzMatrixParams,
) -> FuzzMatrix {
    let dictionary = crate::corpus::dictionary(&config);
    let baseline = Fuzzer::new(config)
        .seed(params.seed)
        .workers(params.workers)
        .max_execs(params.baseline_execs)
        .batch(params.batch)
        .seeds(dictionary.clone())
        .run();
    // Per-mutant campaigns replay the dictionary *verbatim* plus the
    // minimized havoc corpus: minimization preserves coverage, not
    // behavior, so it may replace a protocol-shaped killer with a
    // coverage-equivalent but harmless havoc entry.
    let mut corpus = dictionary;
    let mut seen: std::collections::BTreeSet<Vec<u8>> = corpus.iter().cloned().collect();
    for entry in minimize(config, &baseline.corpus) {
        if seen.insert(entry.clone()) {
            corpus.push(entry);
        }
    }

    let rows = mutants
        .iter()
        .enumerate()
        .map(|(i, mutant)| {
            let campaign = Fuzzer::new(config.mutate(mutant.op()))
                .seed(params.seed.wrapping_add(0x9E37 * (i as u64 + 1)))
                .workers(params.workers)
                .max_execs(params.mutant_execs)
                .batch(params.batch)
                .seeds(corpus.clone())
                .stop_on_finding(true)
                .run();
            let finding = campaign
                .findings
                .first()
                .map(|f| format!("{}: {}", f.kind, f.message));
            FuzzMutantRow {
                name: mutant.name(),
                description: mutant.description(),
                preset: mutant.preset().is_some(),
                killed: campaign.killed(),
                execs: campaign.execs,
                finding,
            }
        })
        .collect();

    FuzzMatrix {
        config,
        baseline_execs: baseline.execs,
        baseline_findings: baseline.findings.len(),
        corpus_len: corpus.len(),
        coverage_points: baseline.coverage.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_mutate::presets;
    use symsc_plic::PlicVariant;

    #[test]
    fn preset_matrix_kills_all_six_faults() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let params = FuzzMatrixParams {
            baseline_execs: 192,
            mutant_execs: 480,
            ..FuzzMatrixParams::default()
        };
        let matrix = run_fuzz_matrix(config, &presets(), params);
        assert_eq!(matrix.baseline_findings, 0, "baseline must stay clean");
        let survivors: Vec<&str> = matrix.survivors().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(survivors, Vec::<&str>::new(), "every IF preset must die");
    }

    #[test]
    fn matrix_is_identical_at_one_and_eight_workers() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let small = FuzzMatrixParams {
            baseline_execs: 96,
            mutant_execs: 96,
            ..FuzzMatrixParams::default()
        };
        let mutants = &presets()[..2];
        let one = run_fuzz_matrix(
            config,
            mutants,
            FuzzMatrixParams {
                workers: 1,
                ..small
            },
        );
        let eight = run_fuzz_matrix(
            config,
            mutants,
            FuzzMatrixParams {
                workers: 8,
                ..small
            },
        );
        assert_eq!(one, eight);
    }
}

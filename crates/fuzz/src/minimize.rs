//! Deterministic corpus minimization: a greedy set cover over the
//! corpus entries' coverage sets. The minimized corpus covers exactly the
//! same `(fork-site, direction)` points with (usually far) fewer inputs —
//! the kill matrix replays it at the start of every per-mutant campaign.

use std::collections::BTreeSet;

use symsc_plic::PlicConfig;

use crate::engine::{run_input, CoveragePoint};

/// Greedily selects a subset of `corpus` with the same total coverage.
///
/// Entries are re-executed to obtain their coverage sets, then picked
/// largest-marginal-gain first (ties resolved toward the earlier entry),
/// so the result is a pure function of `(config, corpus)`.
pub fn minimize(config: PlicConfig, corpus: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let sets: Vec<BTreeSet<CoveragePoint>> = corpus
        .iter()
        .map(|c| run_input(config, c).coverage)
        .collect();
    let mut covered: BTreeSet<CoveragePoint> = BTreeSet::new();
    let mut taken = vec![false; corpus.len()];
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, set) in sets.iter().enumerate() {
            if taken[i] {
                continue;
            }
            let gain = set.difference(&covered).count();
            if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
        }
        let Some((_, i)) = best else { break };
        taken[i] = true;
        covered.extend(sets[i].iter().copied());
        out.push(corpus[i].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fuzzer;
    use symsc_plic::PlicVariant;

    #[test]
    fn minimized_corpus_preserves_total_coverage() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let report = Fuzzer::new(config).seed(5).max_execs(64).batch(16).run();
        let minimized = minimize(config, &report.corpus);
        assert!(minimized.len() <= report.corpus.len());
        let mut covered = BTreeSet::new();
        for entry in &minimized {
            covered.extend(run_input(config, entry).coverage);
        }
        assert_eq!(covered, report.coverage);
    }

    #[test]
    fn duplicate_entries_collapse() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let entry = vec![3u8, 2, 0, 0, 0, 0];
        let corpus = vec![entry.clone(), entry.clone(), entry.clone()];
        assert_eq!(minimize(config, &corpus), vec![entry]);
    }
}

//! The deterministic seed dictionary: canonical stimulus programs derived
//! from the PLIC protocol, replayed as round 0 of every campaign.
//!
//! Raw havoc has to assemble `arm → enable → trigger → step → observe`
//! chains by chance; the dictionary encodes that protocol knowledge once,
//! parameterized over every source id and priority level. Each operand
//! value is pinned by its own enumerate-chain decide in the harness, so
//! every dictionary entry contributes distinct `(fork-site, direction)`
//! coverage points and survives corpus minimization.

use symsc_plic::PlicConfig;

use crate::grammar::{Program, RawOp};
use crate::harness::op;

fn raw(kind: u32, a: u32, b: u8) -> RawOp {
    RawOp {
        kind: kind as u8,
        a,
        b,
    }
}

/// The full dictionary for `config`: arm-and-fire for every source (with
/// cycling priorities, covering every priority level), threshold boundary
/// probes for every level, masked-arm probes, a two-source retrigger
/// chain, and gateway bound probes.
pub fn dictionary(config: &PlicConfig) -> Vec<Vec<u8>> {
    let sources = config.sources;
    let maxp = config.max_priority;
    let mut out: Vec<Program> = Vec::new();

    // Arm one source, fire it, observe delivery, claim, complete, observe
    // the retrigger window and the pending bitmap. Kills notify-drop,
    // late-notify, early-clear, claim/complete and priority-datapath
    // mutants for the specific id/priority they are seeded on.
    for irq in 1..=sources {
        let prio = 1 + ((irq - 1) % maxp);
        let word = (irq / 32) as u8;
        out.push(Program::from_ops(vec![
            raw(op::SET_PRIORITY, irq, prio as u8),
            raw(op::WRITE_ENABLE, u32::MAX, word),
            raw(op::TRIGGER, irq, 0),
            raw(op::STEP, 0, 0),
            raw(op::CLAIM, 0, 0),
            raw(op::COMPLETE, irq, 0),
            raw(op::STEP, 0, 0),
            raw(op::READ_PENDING, 0, word),
        ]));
    }

    // Threshold boundary: priority == threshold must be masked; kills
    // threshold-compare mutants at every level.
    for p in 1..=maxp {
        out.push(Program::from_ops(vec![
            raw(op::SET_PRIORITY, 1, p as u8),
            raw(op::WRITE_ENABLE, u32::MAX, 0),
            raw(op::SET_THRESHOLD, p, 0),
            raw(op::TRIGGER, 1, 0),
            raw(op::STEP, 0, 0),
            raw(op::CLAIM, 0, 0),
        ]));
    }

    // Armed but *disabled* source: nothing may be delivered; kills
    // stuck-enable mutants.
    for irq in 1..=sources.min(2) {
        out.push(Program::from_ops(vec![
            raw(op::SET_PRIORITY, irq, 1 + (maxp as u8 / 2)),
            raw(op::TRIGGER, irq, 0),
            raw(op::STEP, 0, 0),
            raw(op::READ_PENDING, 0, 0),
        ]));
    }

    // Two equal-priority sources, claim and complete the first: the
    // second must be delivered afterwards. Kills skip-retrigger and
    // tie-break mutants.
    if sources >= 2 {
        out.push(Program::from_ops(vec![
            raw(op::SET_PRIORITY, 1, 3.min(maxp as u8)),
            raw(op::SET_PRIORITY, 2, 3.min(maxp as u8)),
            raw(op::WRITE_ENABLE, u32::MAX, 0),
            raw(op::TRIGGER, 1, 0),
            raw(op::TRIGGER, 2, 0),
            raw(op::STEP, 0, 0),
            raw(op::CLAIM, 0, 0),
            raw(op::COMPLETE, 1, 0),
            raw(op::STEP, 0, 0),
            raw(op::CLAIM, 0, 0),
        ]));
    }

    // Gateway bound probes: id 0 and id sources+1 must both be ignored.
    for bad in [0, sources + 1] {
        out.push(Program::from_ops(vec![
            raw(op::TRIGGER, bad, 0),
            raw(op::STEP, 0, 0),
            raw(op::READ_PENDING, 0, 0),
        ]));
    }

    out.into_iter().map(|p| p.encode()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_input;
    use symsc_plic::PlicVariant;

    #[test]
    fn dictionary_is_clean_on_the_fixed_model() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        for entry in dictionary(&config) {
            let outcome = run_input(config, &entry);
            assert_eq!(outcome.errors, Vec::new(), "entry {entry:?} diverged");
        }
    }

    #[test]
    fn dictionary_scales_with_the_configuration() {
        let scaled = dictionary(&PlicConfig::fe310_scaled());
        let full = dictionary(&PlicConfig::fe310());
        assert!(full.len() > scaled.len());
    }
}

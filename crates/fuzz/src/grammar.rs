//! The byte-string ↔ transaction-program grammar.
//!
//! A fuzz input is a flat byte string. It decodes into a bounded sequence
//! of *operations*, each occupying one fixed-size slot, and every decoded
//! operation maps onto exactly three symbolic input variables of the
//! differential harness (`op{i}_kind`, `op{i}_a`, `op{i}_b`). Because the
//! mapping is exact in both directions — every operand byte is carried
//! verbatim into a variable and back — a fuzz input, a concolic trace
//! assignment and a symbolic counterexample model are three encodings of
//! the same point in the input space. That is what makes the two-way seed
//! exchange of [`crate::exchange`] lossless.

use symsc_symex::Counterexample;

/// Bytes per operation slot: `[kind, a0, a1, a2, a3, b]` with `a` stored
/// little-endian.
pub const OP_BYTES: usize = 6;

/// Hard cap on decoded operations per input (keeps executions bounded no
/// matter what the mutator produces).
pub const MAX_OPS: usize = 12;

/// Number of operation kinds understood by the harness (`kind % OP_KINDS`
/// selects the arm).
pub const OP_KINDS: u8 = 8;

/// One decoded operation slot. The raw fields are interpreted by the
/// harness (`kind` modulo [`OP_KINDS`], operands modulo their arm-specific
/// ranges), so *every* byte string decodes into a valid program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RawOp {
    /// Operation selector (used modulo [`OP_KINDS`]).
    pub kind: u8,
    /// Primary 32-bit operand.
    pub a: u32,
    /// Secondary 8-bit operand.
    pub b: u8,
}

/// A decoded fuzz input: a bounded sequence of raw operations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Program {
    ops: Vec<RawOp>,
}

impl Program {
    /// Decodes a byte string: consecutive [`OP_BYTES`]-sized slots, a
    /// trailing partial slot is ignored, at most [`MAX_OPS`] operations.
    pub fn decode(bytes: &[u8]) -> Program {
        let ops = bytes
            .chunks_exact(OP_BYTES)
            .take(MAX_OPS)
            .map(|s| RawOp {
                kind: s[0],
                a: u32::from_le_bytes([s[1], s[2], s[3], s[4]]),
                b: s[5],
            })
            .collect();
        Program { ops }
    }

    /// Builds a program directly from operations (truncated to
    /// [`MAX_OPS`]).
    pub fn from_ops(ops: Vec<RawOp>) -> Program {
        let mut ops = ops;
        ops.truncate(MAX_OPS);
        Program { ops }
    }

    /// Re-encodes the program as the canonical byte string.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ops.len() * OP_BYTES);
        for op in &self.ops {
            out.push(op.kind);
            out.extend_from_slice(&op.a.to_le_bytes());
            out.push(op.b);
        }
        out
    }

    /// The decoded operations.
    pub fn ops(&self) -> &[RawOp] {
        &self.ops
    }

    /// Number of decoded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program decodes to no operations at all.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The program as a concolic trace assignment: the variable
    /// environment consumed by `Explorer::trace` over the differential
    /// harness of matching length.
    pub fn to_assignment(&self) -> Counterexample {
        let mut pairs: Vec<(String, u64)> = Vec::with_capacity(self.ops.len() * 3);
        for (i, op) in self.ops.iter().enumerate() {
            pairs.push((format!("op{i}_kind"), u64::from(op.kind)));
            pairs.push((format!("op{i}_a"), u64::from(op.a)));
            pairs.push((format!("op{i}_b"), u64::from(op.b)));
        }
        Counterexample::from_pairs(pairs)
    }

    /// Rebuilds a program of `len` operations from a symbolic
    /// counterexample over the harness variables (missing variables
    /// default to 0, mirroring the engine's treatment of unconstrained
    /// inputs).
    pub fn from_assignment(cex: &Counterexample, len: usize) -> Program {
        let map = cex.to_map();
        let len = len.min(MAX_OPS);
        let ops = (0..len)
            .map(|i| RawOp {
                kind: map.get(&format!("op{i}_kind")).copied().unwrap_or(0) as u8,
                a: map.get(&format!("op{i}_a")).copied().unwrap_or(0) as u32,
                b: map.get(&format!("op{i}_b")).copied().unwrap_or(0) as u8,
            })
            .collect();
        Program { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trips_whole_slots() {
        let bytes: Vec<u8> = (0..OP_BYTES as u8 * 3).collect();
        let p = Program::decode(&bytes);
        assert_eq!(p.len(), 3);
        assert_eq!(p.encode(), bytes);
    }

    #[test]
    fn trailing_partial_slot_is_ignored() {
        let bytes = vec![7u8; OP_BYTES + 2];
        let p = Program::decode(&bytes);
        assert_eq!(p.len(), 1);
        assert_eq!(p.encode(), vec![7u8; OP_BYTES]);
    }

    #[test]
    fn decode_caps_at_max_ops() {
        let bytes = vec![1u8; OP_BYTES * (MAX_OPS + 5)];
        assert_eq!(Program::decode(&bytes).len(), MAX_OPS);
    }

    #[test]
    fn operand_a_is_little_endian() {
        let p = Program::decode(&[0, 0x78, 0x56, 0x34, 0x12, 9]);
        assert_eq!(p.ops()[0].a, 0x1234_5678);
        assert_eq!(p.ops()[0].b, 9);
    }

    #[test]
    fn assignment_round_trips_through_counterexample() {
        let bytes = vec![3, 0xAA, 0xBB, 0xCC, 0xDD, 0x44, 250, 1, 2, 3, 4, 5];
        let p = Program::decode(&bytes);
        let cex = p.to_assignment();
        assert_eq!(cex.value("op0_kind"), 3);
        assert_eq!(cex.value("op1_b"), 5);
        let back = Program::from_assignment(&cex, p.len());
        assert_eq!(back, p);
        assert_eq!(back.encode(), bytes);
    }
}

//! Two-way seed exchange between the fuzzer and the symbolic engine.
//!
//! Because the byte grammar, the trace assignment and the symbolic input
//! model are lossless encodings of one another ([`crate::grammar`]), the
//! two engines can trade work in both directions:
//!
//! * **symbolic → fuzz**: bounded symbolic exploration of a *probe* — the
//!   differential harness with most slots pinned ([`OpPin`]) so the fork
//!   space stays tractable — yields counterexample models, which encode
//!   directly into fuzz seeds ([`seeds_from_symbolic`]). Replayed as
//!   round 0 of a campaign they kill on the first execution.
//! * **fuzz → symbolic**: a fuzz-found divergence is re-executed through
//!   `symsc-symex` — as a concolic trace ([`confirm_by_trace`], same
//!   fork-site fingerprints as exploration) or as a constant-folded
//!   replay ([`confirm_by_replay`]) — for independent path confirmation.

use std::collections::BTreeSet;

use symsc_plic::PlicConfig;
use symsc_symex::{Explorer, Report};

use crate::grammar::Program;
use crate::harness::{differential_bench, op, scripted_bench, OpPin};

/// Harvests fuzz seeds from a bounded symbolic exploration of the probe
/// described by `pins`: every distinct counterexample model is encoded
/// as a byte input. Deduplicated, in discovery order.
pub fn seeds_from_symbolic(config: PlicConfig, pins: &[OpPin], max_paths: u64) -> Vec<Vec<u8>> {
    let report = Explorer::new()
        .max_paths(max_paths)
        .explore(scripted_bench(config, pins.to_vec()));
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut out = Vec::new();
    for error in report.distinct_errors() {
        let bytes = Program::from_assignment(&error.counterexample, pins.len()).encode();
        if seen.insert(bytes.clone()) {
            out.push(bytes);
        }
    }
    out
}

/// Probe: a single fully symbolic trigger. Exercises the gateway's id
/// validation — against a gateway-bound mutant the explorer produces the
/// out-of-bounds model directly.
pub fn gateway_probe() -> Vec<OpPin> {
    vec![OpPin::kind(op::TRIGGER)]
}

/// Which differential harness a probe's bounded exploration (and the
/// fuzz lane its seeds feed) runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeLane {
    /// The TLM model against the concrete [`ReferencePlic`] oracle
    /// ([`crate::harness`]).
    ///
    /// [`ReferencePlic`]: symsc_plic::reference::ReferencePlic
    Tlm,
    /// The cycle-level model against the fixed TLM oracle
    /// ([`crate::cycle`]); the configuration's mutation rides the
    /// cycle-level side.
    Cross,
}

/// A named symbolic probe: a pin script plus the path budget its bounded
/// exploration runs under. The campaign orchestrator schedules one probe
/// job per `(probe, mutant)` pair and streams the resulting seeds into
/// that mutant's fuzz lane — the streaming lift of
/// [`seeds_from_symbolic`].
#[derive(Clone, Debug)]
pub struct Probe {
    /// Stable probe name (journaled; part of the campaign spec).
    pub name: String,
    /// The pin script handed to [`scripted_bench`] (or its cross-level
    /// analog).
    pub pins: Vec<OpPin>,
    /// Path budget of the bounded exploration.
    pub max_paths: u64,
    /// The differential harness the probe explores.
    pub lane: ProbeLane,
}

impl Probe {
    /// Runs the probe against `config` and returns the exported seeds.
    pub fn run(&self, config: PlicConfig) -> Vec<Vec<u8>> {
        match self.lane {
            ProbeLane::Tlm => seeds_from_symbolic(config, &self.pins, self.max_paths),
            ProbeLane::Cross => {
                crate::cycle::seeds_from_cycle_symbolic(config, &self.pins, self.max_paths)
            }
        }
    }
}

/// The standard probe set: the gateway probe, masking probes on a low
/// and a mid-range source, and the same masking script explored on the
/// cross-level lane. Stable names and order — campaign specs reference
/// probes by name.
pub fn probe_registry(config: &PlicConfig) -> Vec<Probe> {
    vec![
        Probe {
            name: "gateway".to_string(),
            pins: gateway_probe(),
            max_paths: 64,
            lane: ProbeLane::Tlm,
        },
        Probe {
            name: "masking_3".to_string(),
            pins: masking_probe(3),
            max_paths: 400,
            lane: ProbeLane::Tlm,
        },
        Probe {
            name: format!("masking_{}", config.sources / 2),
            pins: masking_probe(config.sources / 2),
            max_paths: 400,
            lane: ProbeLane::Tlm,
        },
        Probe {
            name: "cross_3".to_string(),
            pins: masking_probe(3),
            max_paths: 96,
            lane: ProbeLane::Cross,
        },
    ]
}

/// Probe: arm source `irq` with a symbolic priority, enable everything,
/// set a symbolic threshold, fire and step. Exercises the
/// priority-vs-threshold comparison — against a threshold-compare mutant
/// the explorer finds the masking boundary.
pub fn masking_probe(irq: u32) -> Vec<OpPin> {
    vec![
        OpPin {
            kind: Some(op::SET_PRIORITY as u8),
            a: Some(irq),
            b: None,
        },
        OpPin::fixed(op::WRITE_ENABLE, u32::MAX, 0),
        OpPin {
            kind: Some(op::SET_THRESHOLD as u8),
            a: None,
            b: Some(0),
        },
        OpPin::fixed(op::TRIGGER, irq, 0),
        OpPin::fixed(op::STEP, 0, 0),
        OpPin::fixed(op::CLAIM, 0, 0),
    ]
}

/// Confirms a fuzz finding by re-executing the input as a concolic trace:
/// the engine re-derives the divergence on the exact fork-site path the
/// fuzzer covered (zero solver queries).
pub fn confirm_by_trace(config: PlicConfig, bytes: &[u8]) -> Report {
    let program = Program::decode(bytes);
    Explorer::new().trace(
        &program.to_assignment(),
        differential_bench(config, program.len()),
    )
}

/// Confirms a fuzz finding by constant-folded replay (the PR-0 replay
/// entry point): an independent second execution mode.
pub fn confirm_by_replay(config: PlicConfig, bytes: &[u8]) -> Report {
    let program = Program::decode(bytes);
    Explorer::new().replay(
        &program.to_assignment(),
        differential_bench(config, program.len()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fuzzer;
    use symsc_plic::config::InjectedFault;
    use symsc_plic::PlicVariant;

    fn scaled() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    #[test]
    fn symbolic_gateway_model_becomes_an_instant_fuzz_kill() {
        let mutated = scaled().fault(InjectedFault::If1OffByOneGateway);
        let seeds = seeds_from_symbolic(mutated, &gateway_probe(), 64);
        assert!(!seeds.is_empty(), "exploration must find the OOB model");
        let report = Fuzzer::new(mutated)
            .seed(1)
            .seeds(seeds)
            .stop_on_finding(true)
            .max_execs(32)
            .run();
        assert!(report.killed());
        assert_eq!(report.findings[0].exec, 1);
    }

    #[test]
    fn symbolic_masking_model_kills_the_threshold_mutant() {
        let mutated = scaled().fault(InjectedFault::If6ThresholdOffByOne);
        let seeds = seeds_from_symbolic(mutated, &masking_probe(3), 400);
        assert!(
            !seeds.is_empty(),
            "exploration must find the boundary model"
        );
        let killed = seeds.iter().any(|s| !confirm_by_trace(mutated, s).passed());
        assert!(killed, "an exported seed must reproduce the divergence");
    }

    #[test]
    fn probes_are_clean_on_the_fixed_model() {
        assert!(seeds_from_symbolic(scaled(), &gateway_probe(), 64).is_empty());
        assert!(seeds_from_symbolic(scaled(), &masking_probe(3), 400).is_empty());
    }

    #[test]
    fn fuzz_findings_confirm_by_trace_and_replay() {
        // the IF6 boundary program from the harness tests
        let mut input = Vec::new();
        input.extend_from_slice(&[op::SET_PRIORITY as u8, 3, 0, 0, 0, 5]);
        input.extend_from_slice(&[op::WRITE_ENABLE as u8, 0xFF, 0xFF, 0xFF, 0xFF, 0]);
        input.extend_from_slice(&[op::SET_THRESHOLD as u8, 5, 0, 0, 0, 0]);
        input.extend_from_slice(&[op::TRIGGER as u8, 3, 0, 0, 0, 0]);
        input.extend_from_slice(&[op::STEP as u8, 0, 0, 0, 0, 0]);
        let mutated = scaled().fault(InjectedFault::If6ThresholdOffByOne);
        let traced = confirm_by_trace(mutated, &input);
        let replayed = confirm_by_replay(mutated, &input);
        assert!(!traced.passed());
        assert!(!replayed.passed());
        assert_eq!(
            traced.first_error().unwrap().message,
            replayed.first_error().unwrap().message
        );
        // both engines report the traced input bytes back verbatim
        let p = Program::decode(&input);
        assert_eq!(
            Program::from_assignment(&traced.first_error().unwrap().counterexample, p.len()),
            p
        );
    }
}

//! # symsc-fuzz — coverage-guided differential fuzzing
//!
//! A second, independent detection engine next to symbolic exploration:
//! concrete Peripheral-Kernel simulations of the PLIC driven from byte
//! strings, differentially checked against the [`ReferencePlic`] oracle,
//! with the *same* structural fork-site fingerprints used by symbolic
//! branch coverage as the coverage map.
//!
//! [`ReferencePlic`]: symsc_plic::reference::ReferencePlic

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod cycle;
pub mod engine;
pub mod exchange;
pub mod firmware;
pub mod grammar;
pub mod harness;
pub mod matrix;
pub mod minimize;

pub use corpus::dictionary;
pub use cycle::{
    cycle_differential_bench, run_cycle_input, scripted_cycle_bench, seeds_from_cycle_symbolic,
};
pub use engine::{run_input, Finding, FuzzReport, Fuzzer, InputOutcome, InputRunner};
pub use exchange::{
    confirm_by_replay, confirm_by_trace, probe_registry, seeds_from_symbolic, Probe, ProbeLane,
};
pub use firmware::{
    firmware_dictionary, firmware_differential_bench, run_firmware_fuzz_matrix, run_firmware_input,
};
pub use grammar::{Program, RawOp};
pub use harness::{differential_bench, scripted_bench, OpPin};
pub use matrix::{run_fuzz_matrix, FuzzMatrix, FuzzMatrixParams, FuzzMutantRow};
pub use minimize::minimize;

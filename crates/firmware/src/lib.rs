//! Firmware-in-the-loop verification: bare-metal RV32I driver programs
//! run on the symbolic ISS against the TLM PLIC through the bus router,
//! under the same symbolic-execution engines as the register-level
//! testbenches.
//!
//! The TLM suites (T1–T5) drive the peripheral from a disembodied
//! testbench; real drivers reach it through loads and stores, sleep in
//! `wfi`, and race their own claim/complete sequences. This crate closes
//! that gap:
//!
//! * [`soc`] — the miniature virtual prototype: symbolic CPU + router +
//!   PLIC + scratch RAM under one kernel, with merge fences at `wfi`.
//! * [`suite`] — the five firmware tests F1–F5 ([`FirmwareId`]), from a
//!   plain claim/complete loop to a deliberately racy driver that only
//!   an enable-mask mutant can expose.
//! * [`matrix`] — the firmware kill matrix: every generated PLIC mutant
//!   against every firmware test, mirroring `symsc_mutate`.
//! * [`reference`] — a [`ReferencePlic`](symsc_plic::ReferencePlic)-backed
//!   bus model so the same driver binary can run on a golden machine,
//!   the differential oracle for the firmware fuzz lane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod reference;
pub mod soc;
pub mod suite;

pub use matrix::{run_firmware_kill_matrix, run_firmware_kill_matrix_with, FirmwareKillMatrix};
pub use reference::{RefMachine, RefPlicBus};
pub use soc::{enable_all_masks, service_driver, Soc, SymRam};
pub use suite::{firmware_bench, run_firmware_test, FirmwareId};

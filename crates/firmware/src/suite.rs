//! The five firmware-in-the-loop tests F1–F5.
//!
//! Each test runs a bare-metal RV32I driver on the symbolic [`Cpu`]
//! (`symsc_iss::Cpu`) against the TLM PLIC through the bus: symbolic
//! MMIO read results and symbolic interrupt-arrival timing fork the
//! exploration through firmware branches *and* the peripheral's decode
//! logic at once, and every check is phrased over driver-visible state —
//! the register file at halt and the memory-mapped log buffer — the
//! cross-level discipline of the TLM suites lifted to software.

use symsc_iss::{asm, StepOutcome};
use symsc_plic::PlicConfig;
use symsc_symex::{SymCtx, Width};
use symsysc_core::{TestOutcome, Verifier};

use crate::soc::{enable_all_masks, service_driver, Soc, CLAIM, IN_BASE, LOG_BASE, THRESHOLD};

/// Identifier of one firmware test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FirmwareId {
    /// Claim/complete driver loop (T1's scenario, driven by software).
    F1,
    /// Priority-threshold masking driver (symbolic MMIO data flow).
    F2,
    /// WFI-paced ISR loop servicing two interrupts in priority order.
    F3,
    /// Nested two-source arbitration under symbolic arrival timing.
    F4,
    /// Racy double-claim driver with source 1 deliberately disabled.
    F5,
}

impl FirmwareId {
    /// All five firmware tests, in order.
    pub const ALL: [FirmwareId; 5] = [
        FirmwareId::F1,
        FirmwareId::F2,
        FirmwareId::F3,
        FirmwareId::F4,
        FirmwareId::F5,
    ];

    /// The suite label ("F1" … "F5").
    pub fn name(self) -> &'static str {
        match self {
            FirmwareId::F1 => "F1",
            FirmwareId::F2 => "F2",
            FirmwareId::F3 => "F3",
            FirmwareId::F4 => "F4",
            FirmwareId::F5 => "F5",
        }
    }

    /// A one-line description.
    pub fn description(self) -> &'static str {
        match self {
            FirmwareId::F1 => "claim/complete driver: symbolic id, latency, log, cleanup",
            FirmwareId::F2 => "threshold driver: symbolic threshold through RAM and MMIO",
            FirmwareId::F3 => "wfi-paced ISR loop: two symbolic sources in priority order",
            FirmwareId::F4 => "nested arbitration: second source at a symbolic arrival time",
            FirmwareId::F5 => "racy double claim with source 1 disabled by the driver",
        }
    }
}

impl std::fmt::Display for FirmwareId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instruction budget for a driver phase — generous; real drivers here
/// retire well under a hundred instructions per phase.
const FUEL: u64 = 400;

/// **F1 — claim/complete driver loop.** The software analog of T1: the
/// driver enables every source over MMIO, sleeps, services one
/// interrupt and halts. A symbolic id over `0..=sources+1` forks the
/// valid/invalid gateway split through the *firmware's* wfi — an invalid
/// id must leave the driver parked forever.
fn f1_claim_complete(ctx: &SymCtx, config: PlicConfig) {
    let mut soc = Soc::new(ctx, config, service_driver(&enable_all_masks(&config), 1));
    for irq in 1..=config.sources {
        soc.plic.borrow().set_priority(ctx, irq, 1);
    }
    let boot = soc.run(ctx, FUEL);
    ctx.check_concrete(boot == StepOutcome::Wfi, "driver boots to its wfi park");

    let i = ctx.symbolic("i_interrupt", Width::W32);
    ctx.assume(&i.ule(&ctx.word32(config.sources + 1)));
    let valid = i
        .uge(&ctx.word32(1))
        .and(&i.ule(&ctx.word32(config.sources)));
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &i);
    if ctx.decide(&valid) {
        ctx.cover("f1/valid-id");
    } else {
        ctx.cover("f1/invalid-id");
    }

    let now = soc.kernel.time();
    soc.kernel.run_until(now + config.clock_cycle);
    let fired = ctx.lit(*soc.cpu.interrupt_line().borrow());
    ctx.check(
        &valid.implies(&fired),
        "delivery within one clock of the trigger",
    );
    soc.fence(ctx);

    let outcome = soc.run(ctx, FUEL);
    let done = ctx.lit(outcome == StepOutcome::Halted);
    ctx.check(&valid.implies(&done), "valid id serviced to completion");
    ctx.check(
        &valid.not().implies(&done.not()),
        "an invalid id must not wake the driver",
    );
    if outcome == StepOutcome::Halted {
        ctx.check(
            &soc.cpu.reg(ctx, 13).eq(&i),
            "driver claimed the fired source",
        );
        ctx.check(&soc.log_word(0).eq(&i), "log buffer records the claimed id");
        ctx.check(
            &soc.plic.borrow().pending_bit_symbolic(&i).not(),
            "pending bit cleared by the driver's claim",
        );
        ctx.check_concrete(!soc.plic.borrow().hart_eip(), "completion lowered EIP");
    }
}

/// The F2 driver: load the threshold from the input RAM word, program it
/// over MMIO (a *symbolic* store to the peripheral), enable everything,
/// then one claim/complete service.
fn threshold_driver(enable_masks: &[u32]) -> Vec<u32> {
    let mut p = Vec::new();
    p.extend(asm::li(9, IN_BASE));
    p.push(asm::lw(9, 9, 0));
    p.extend(asm::li(10, THRESHOLD));
    p.push(asm::sw(9, 10, 0));
    for (w, mask) in enable_masks.iter().enumerate() {
        p.extend(asm::li(10, crate::soc::ENABLE0 + 4 * w as u32));
        p.extend(asm::li(11, *mask));
        p.push(asm::sw(11, 10, 0));
    }
    p.extend(asm::li(5, LOG_BASE));
    p.extend(asm::li(6, CLAIM));
    p.push(asm::wfi());
    p.push(asm::lw(13, 6, 0));
    p.push(asm::sw(13, 5, 0));
    p.push(asm::sw(13, 6, 0));
    p.push(asm::ebreak());
    p
}

/// **F2 — priority-threshold masking driver.** The threshold is a
/// symbolic word that flows RAM → register file → MMIO store → PLIC: the
/// interrupt may wake the driver iff `priority > 0 && priority >
/// threshold`, checked in both directions.
fn f2_threshold_mask(ctx: &SymCtx, config: PlicConfig) {
    const IRQ: u32 = 3;
    let mut soc = Soc::new(ctx, config, threshold_driver(&enable_all_masks(&config)));

    let maxp = ctx.word32(config.max_priority);
    let priority = ctx.symbolic("priority", Width::W32);
    let threshold = ctx.symbolic("threshold", Width::W32);
    ctx.assume(&priority.ule(&maxp));
    ctx.assume(&threshold.ule(&maxp));
    soc.plic
        .borrow()
        .set_priority_symbolic(&ctx.word32(IRQ), &priority);
    soc.ram.borrow_mut().set_word(0, threshold.clone());

    let boot = soc.run(ctx, FUEL);
    ctx.check_concrete(
        boot == StepOutcome::Wfi,
        "driver programs the PLIC and parks",
    );
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(IRQ));
    let now = soc.kernel.time();
    soc.kernel.run_until(now + config.clock_cycle);
    let fired = ctx.lit(*soc.cpu.interrupt_line().borrow());
    let eligible = priority.ugt(&ctx.word32(0)).and(&priority.ugt(&threshold));
    ctx.check(
        &eligible.implies(&fired),
        "unmasked interrupt wakes the driver",
    );
    ctx.check(&fired.implies(&eligible), "masked interrupt must not fire");
    soc.fence(ctx);

    let outcome = soc.run(ctx, FUEL);
    if ctx.decide(&eligible) {
        ctx.cover("f2/fired");
        ctx.check_concrete(
            outcome == StepOutcome::Halted,
            "driver completes the unmasked service",
        );
        if outcome == StepOutcome::Halted {
            ctx.check(
                &soc.cpu.reg(ctx, 13).eq(&ctx.word32(IRQ)),
                "driver claimed the fired source",
            );
            ctx.check(
                &soc.log_word(0).eq(&ctx.word32(IRQ)),
                "log records the claim",
            );
            ctx.check_concrete(!soc.plic.borrow().hart_eip(), "completion lowered EIP");
        }
    } else {
        ctx.cover("f2/masked");
        ctx.check_concrete(outcome == StepOutcome::Wfi, "masked driver stays parked");
        ctx.check(
            &soc.plic.borrow().pending_bit(IRQ),
            "masked interrupt stays pending",
        );
    }
}

/// **F3 — WFI-paced ISR loop.** Two distinct symbolic sources with
/// symbolic priorities fire in zero simulation time; the service loop
/// must log them in priority order (lowest id on ties), with each
/// iteration paced by a fresh wfi wake — exactly T2's property, read off
/// the firmware's log buffer instead of the mock HART.
fn f3_isr_priority_order(ctx: &SymCtx, config: PlicConfig) {
    let mut soc = Soc::new(ctx, config, service_driver(&enable_all_masks(&config), 2));

    let n = ctx.word32(config.sources);
    let one = ctx.word32(1);
    let i = ctx.symbolic("i_interrupt", Width::W32);
    let j = ctx.symbolic("j_interrupt", Width::W32);
    ctx.assume(&i.uge(&one));
    ctx.assume(&i.ule(&n));
    ctx.assume(&j.uge(&one));
    ctx.assume(&j.ule(&n));
    ctx.assume(&i.ne(&j));
    let maxp = ctx.word32(config.max_priority);
    let p_i = ctx.symbolic("i_priority", Width::W32);
    let p_j = ctx.symbolic("j_priority", Width::W32);
    ctx.assume(&p_i.uge(&one));
    ctx.assume(&p_i.ule(&maxp));
    ctx.assume(&p_j.uge(&one));
    ctx.assume(&p_j.ule(&maxp));
    soc.plic.borrow().set_priority_symbolic(&i, &p_i);
    soc.plic.borrow().set_priority_symbolic(&j, &p_j);

    let boot = soc.run(ctx, FUEL);
    ctx.check_concrete(boot == StepOutcome::Wfi, "driver boots to its wfi park");
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &i);
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &j);
    let now = soc.kernel.time();
    soc.kernel.run_until(now + config.clock_cycle);
    ctx.check_concrete(
        *soc.cpu.interrupt_line().borrow(),
        "simultaneous triggers wake the driver",
    );
    soc.fence(ctx);

    let outcome = soc.run(ctx, FUEL);
    ctx.check_concrete(
        outcome == StepOutcome::Halted,
        "both interrupts serviced through the ISR loop",
    );
    if outcome == StepOutcome::Halted {
        let lower = i.select(&i.ult(&j), &j);
        let j_wins = j.select(&p_j.ugt(&p_i), &lower);
        let expected_first = i.select(&p_i.ugt(&p_j), &j_wins);
        let expected_second = j.select(&expected_first.eq(&i), &i);
        ctx.check(
            &soc.log_word(0).eq(&expected_first),
            "highest priority (lowest id on ties) logged first",
        );
        ctx.check(
            &soc.log_word(1).eq(&expected_second),
            "remaining interrupt logged second",
        );
        ctx.check(
            &soc.cpu.reg(ctx, 13).eq(&expected_second),
            "last claim left in x13",
        );
        ctx.check(
            &soc.plic.borrow().pending_bit_symbolic(&i).not(),
            "first source no longer pending",
        );
        ctx.check(
            &soc.plic.borrow().pending_bit_symbolic(&j).not(),
            "second source no longer pending",
        );
        ctx.check_concrete(!soc.plic.borrow().hart_eip(), "completion lowered EIP");
    }
}

/// **F4 — nested two-source arbitration.** Source 2 fires first; source
/// 5's arrival time is *symbolic*: either simultaneous (the PLIC must
/// arbitrate by symbolic priority) or nested mid-service — injected
/// between the driver's claim and completion, timed by running the hart
/// on an exact instruction budget (`StepOutcome::OutOfFuel` pauses).
fn f4_nested_arbitration(ctx: &SymCtx, config: PlicConfig) {
    const A: u32 = 2;
    const B: u32 = 5;
    let mut soc = Soc::new(ctx, config, service_driver(&enable_all_masks(&config), 2));

    let one = ctx.word32(1);
    let maxp = ctx.word32(config.max_priority);
    let p_a = ctx.symbolic("a_priority", Width::W32);
    let p_b = ctx.symbolic("b_priority", Width::W32);
    ctx.assume(&p_a.uge(&one));
    ctx.assume(&p_a.ule(&maxp));
    ctx.assume(&p_b.uge(&one));
    ctx.assume(&p_b.ule(&maxp));
    soc.plic
        .borrow()
        .set_priority_symbolic(&ctx.word32(A), &p_a);
    soc.plic
        .borrow()
        .set_priority_symbolic(&ctx.word32(B), &p_b);

    let boot = soc.run(ctx, FUEL);
    ctx.check_concrete(boot == StepOutcome::Wfi, "driver boots to its wfi park");
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(A));

    // Symbolic arrival time for B: 0 = with A, 1 = mid-service of A.
    let b_arrival = ctx.symbolic("b_arrival", Width::W32);
    ctx.assume(&b_arrival.ule(&one));
    let simultaneous = b_arrival.eq(&ctx.word32(0));
    if ctx.decide(&simultaneous) {
        ctx.cover("f4/simultaneous");
        soc.plic
            .borrow()
            .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(B));
        let now = soc.kernel.time();
        soc.kernel.run_until(now + config.clock_cycle);
        soc.fence(ctx);

        let outcome = soc.run(ctx, FUEL);
        ctx.check_concrete(outcome == StepOutcome::Halted, "both sources serviced");
        if outcome == StepOutcome::Halted {
            let a = ctx.word32(A);
            let b = ctx.word32(B);
            // Higher priority first; A wins ties (lower id).
            let expected_first = a.select(&p_a.uge(&p_b), &b);
            let expected_second = b.select(&expected_first.eq(&a), &a);
            ctx.check(
                &soc.log_word(0).eq(&expected_first),
                "arbitration winner logged first",
            );
            ctx.check(
                &soc.log_word(1).eq(&expected_second),
                "arbitration loser logged second",
            );
        }
    } else {
        ctx.cover("f4/nested");
        let now = soc.kernel.time();
        soc.kernel.run_until(now + config.clock_cycle);
        soc.fence(ctx);

        // Wake and stop right after the claim of A: one budget unit
        // retires the wfi, the next retires the claim load.
        let o = soc.run(ctx, 1);
        ctx.check_concrete(o == StepOutcome::OutOfFuel, "wfi retires on the wake");
        let o = soc.run(ctx, 1);
        ctx.check_concrete(o == StepOutcome::OutOfFuel, "claim load retires");
        // A is claimed and in flight; B arrives nested, mid-service.
        soc.plic
            .borrow()
            .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(B));

        let outcome = soc.run(ctx, FUEL);
        ctx.check_concrete(
            outcome == StepOutcome::Halted,
            "nested arrival serviced after completion",
        );
        if outcome == StepOutcome::Halted {
            ctx.check(
                &soc.log_word(0).eq(&ctx.word32(A)),
                "in-flight source logged first",
            );
            ctx.check(
                &soc.log_word(1).eq(&ctx.word32(B)),
                "nested source logged second",
            );
        }
    }
    ctx.check_concrete(
        !soc.plic.borrow().hart_eip(),
        "EIP low once the driver is done",
    );
}

/// The F5 driver: like the service driver, but with source 1 left
/// disabled and a deliberately racy *double* claim before the single
/// completion — the second read must return 0 (no interrupt).
fn racy_driver(enable_masks: &[u32]) -> Vec<u32> {
    let mut p = Vec::new();
    for (w, mask) in enable_masks.iter().enumerate() {
        p.extend(asm::li(10, crate::soc::ENABLE0 + 4 * w as u32));
        p.extend(asm::li(11, *mask));
        p.push(asm::sw(11, 10, 0));
    }
    p.extend(asm::li(5, LOG_BASE));
    p.extend(asm::li(6, CLAIM));
    p.push(asm::wfi());
    p.push(asm::lw(13, 6, 0)); // claim
    p.push(asm::lw(14, 6, 0)); // racy second claim before completing
    p.push(asm::sw(13, 5, 0)); // log first claim
    p.push(asm::sw(14, 5, 4)); // log second claim
    p.push(asm::sw(13, 6, 0)); // complete the first claim only
    p.push(asm::ebreak());
    p
}

/// **F5 — racy double claim with a disabled source.** The driver never
/// enables source 1; a symbolic id forks delivery against the mask. The
/// `stuck_enable_1` mutant (enable bit 1 stuck at one) wakes the driver
/// on the masked path — the kill no TLM suite can make, because T1–T5
/// all enable every source. The double claim pins claim-gating: the
/// second read with the first claim still in flight must return 0.
fn f5_racy_disabled_source(ctx: &SymCtx, config: PlicConfig) {
    let mut masks = enable_all_masks(&config);
    masks[0] &= !0b10; // source 1 stays disabled
    let mut soc = Soc::new(ctx, config, racy_driver(&masks));
    for irq in 1..=config.sources {
        soc.plic.borrow().set_priority(ctx, irq, 1);
    }
    let boot = soc.run(ctx, FUEL);
    ctx.check_concrete(boot == StepOutcome::Wfi, "driver boots to its wfi park");

    let i = ctx.symbolic("i_interrupt", Width::W32);
    ctx.assume(&i.uge(&ctx.word32(1)));
    ctx.assume(&i.ule(&ctx.word32(config.sources)));
    soc.plic
        .borrow()
        .trigger_interrupt(ctx, &mut soc.kernel, &i);
    let deliverable = i.ne(&ctx.word32(1));

    let now = soc.kernel.time();
    soc.kernel.run_until(now + config.clock_cycle);
    let fired = ctx.lit(*soc.cpu.interrupt_line().borrow());
    ctx.check(&deliverable.implies(&fired), "enabled source delivered");
    ctx.check(
        &fired.implies(&deliverable),
        "the disabled source must stay masked",
    );
    soc.fence(ctx);

    let outcome = soc.run(ctx, FUEL);
    if ctx.decide(&deliverable) {
        ctx.cover("f5/serviced");
        ctx.check_concrete(outcome == StepOutcome::Halted, "enabled source serviced");
        if outcome == StepOutcome::Halted {
            ctx.check(
                &soc.cpu.reg(ctx, 13).eq(&i),
                "first claim is the fired source",
            );
            ctx.check(
                &soc.cpu.reg(ctx, 14).eq(&ctx.word32(0)),
                "racy second claim returns no interrupt",
            );
            ctx.check(&soc.log_word(0).eq(&i), "log records the first claim");
            ctx.check(
                &soc.log_word(1).eq(&ctx.word32(0)),
                "log records the empty second claim",
            );
            ctx.check(
                &soc.plic.borrow().pending_bit_symbolic(&i).not(),
                "pending cleared by the first claim",
            );
            ctx.check_concrete(!soc.plic.borrow().hart_eip(), "completion lowered EIP");
        }
    } else {
        ctx.cover("f5/disabled");
        ctx.check_concrete(
            outcome == StepOutcome::Wfi,
            "driver must sleep through the disabled source",
        );
        ctx.check(
            &soc.plic.borrow().pending_bit_symbolic(&i),
            "disabled source stays latched pending",
        );
        ctx.check(
            &soc.cpu.reg(ctx, 13).eq(&ctx.word32(0)),
            "nothing was claimed",
        );
    }
}

/// Builds the testbench closure for `test` — usable with
/// [`Verifier::run`], [`Verifier::replay`] and the fuzz lanes. All
/// captures are `Copy` configuration, so the closure is `Fn + Send +
/// Sync` and explorable by a multi-worker explorer.
pub fn firmware_bench(test: FirmwareId, config: PlicConfig) -> impl Fn(&SymCtx) + Send + Sync {
    move |ctx: &SymCtx| match test {
        FirmwareId::F1 => f1_claim_complete(ctx, config),
        FirmwareId::F2 => f2_threshold_mask(ctx, config),
        FirmwareId::F3 => f3_isr_priority_order(ctx, config),
        FirmwareId::F4 => f4_nested_arbitration(ctx, config),
        FirmwareId::F5 => f5_racy_disabled_source(ctx, config),
    }
}

/// Runs one firmware test to full exploration under `verifier`.
pub fn run_firmware_test(test: FirmwareId, config: PlicConfig, verifier: &Verifier) -> TestOutcome {
    verifier.run(firmware_bench(test, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::PlicVariant;

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    #[test]
    fn all_five_firmware_tests_pass_on_the_fixed_plic() {
        for test in FirmwareId::ALL {
            let o = run_firmware_test(test, fixed(), &Verifier::new(test.name()));
            assert!(o.passed(), "{test} on fixed PLIC: {o}");
        }
    }

    #[test]
    fn f5_kills_the_stuck_enable_mutant_no_tlm_test_can() {
        // `stuck_enable_1` survives T1–T5 (they enable every source); F5
        // leaves source 1 disabled and must catch it.
        let config = fixed().mutate(symsc_plic::MutationOp::StuckEnableForId(1));
        let o = run_firmware_test(FirmwareId::F5, config, &Verifier::new("F5"));
        assert!(!o.passed(), "F5 must kill stuck_enable_1: {o}");
    }

    #[test]
    fn f2_kills_the_threshold_comparison_mutants() {
        for op in [
            symsc_plic::MutationOp::ThresholdCompare(symsc_plic::ThresholdCmp::AlwaysPass),
            symsc_plic::MutationOp::ThresholdCompare(symsc_plic::ThresholdCmp::NeverPass),
        ] {
            let o = run_firmware_test(FirmwareId::F2, fixed().mutate(op), &Verifier::new("F2"));
            assert!(!o.passed(), "F2 must kill {op:?}");
        }
    }
}

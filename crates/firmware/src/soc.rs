//! The miniature virtual prototype the firmware suites run on: symbolic
//! CPU + bus router + TLM PLIC + scratch RAM, co-simulated under one
//! kernel, with merge fences published at every `wfi` park.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_iss::{Cpu, StepOutcome};
use symsc_pk::Kernel;
use symsc_plic::config::{CLAIM_BASE, ENABLE_BASE, THRESHOLD_BASE};
use symsc_plic::{InterruptTarget, Plic, PlicConfig};
use symsc_symex::{StateDigest, SymCtx, SymWord};
use symsc_tlm::{BlockingTransport, Command, GenericPayload, ResponseStatus, Router};

/// Bus base of the PLIC aperture (the FE310 memory map).
pub const PLIC_BASE: u32 = 0x0C00_0000;
/// Size of the PLIC aperture.
pub const PLIC_SIZE: u64 = 0x40_0000;
/// Bus base of the scratch RAM (driver inputs + log buffer).
pub const RAM_BASE: u32 = 0x4000_0000;
/// Scratch RAM size in 32-bit words.
pub const RAM_WORDS: usize = 16;
/// Bus address of the driver-input area (word 0 of the RAM).
pub const IN_BASE: u32 = RAM_BASE;
/// Bus address of the memory-mapped log buffer (word 8 of the RAM).
pub const LOG_BASE: u32 = RAM_BASE + 0x20;
/// First RAM word index of the log buffer.
pub const LOG_WORD0: usize = 8;

/// Bus address of the first enable bitmap word.
pub const ENABLE0: u32 = PLIC_BASE + ENABLE_BASE as u32;
/// Bus address of the HART-0 priority threshold register.
pub const THRESHOLD: u32 = PLIC_BASE + THRESHOLD_BASE as u32;
/// Bus address of the HART-0 claim/complete register.
pub const CLAIM: u32 = PLIC_BASE + CLAIM_BASE as u32;

/// Raises the CPU's latched interrupt line when the PLIC notifies the
/// HART — the wire between `connect_hart` and `Cpu::interrupt_line`.
pub struct CpuIrqLine {
    flag: Rc<RefCell<bool>>,
}

impl InterruptTarget for CpuIrqLine {
    fn trigger_external_interrupt(&mut self) {
        *self.flag.borrow_mut() = true;
    }
}

/// A word-addressed scratch RAM with symbolic contents, used for driver
/// inputs (the testbench preloads words) and the driver's log buffer.
pub struct SymRam {
    words: Vec<SymWord>,
}

impl SymRam {
    /// A RAM of `words` 32-bit words, all zero.
    pub fn new(ctx: &SymCtx, words: usize) -> SymRam {
        SymRam {
            words: (0..words).map(|_| ctx.word32(0)).collect(),
        }
    }

    /// Word count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the RAM has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads word `index`.
    pub fn word(&self, index: usize) -> SymWord {
        self.words[index].clone()
    }

    /// Overwrites word `index` (testbench preloading).
    pub fn set_word(&mut self, index: usize, value: SymWord) {
        self.words[index] = value;
    }

    /// Structural hash of the contents — the RAM's contribution to a
    /// merge-fence state mark.
    pub fn state_mark(&self) -> u64 {
        let mut digest = StateDigest::new();
        digest.push_u64(self.words.len() as u64);
        for w in &self.words {
            digest.push(w.fingerprint());
        }
        digest.finish()
    }
}

impl BlockingTransport for SymRam {
    fn b_transport(&mut self, ctx: &SymCtx, _kernel: &mut Kernel, payload: &mut GenericPayload) {
        let addr = payload.address.concretize() as usize;
        let index = addr / 4;
        if !addr.is_multiple_of(4) || index >= self.words.len() {
            payload.response = ResponseStatus::AddressError;
            return;
        }
        match payload.command {
            Command::Read => {
                let w = self.words[index].clone();
                payload.set_word(0, w);
            }
            Command::Write => self.words[index] = payload.word(0).clone(),
        }
        let _ = ctx;
        payload.response = ResponseStatus::Ok;
    }
}

/// The firmware-in-the-loop platform: one symbolic RV32I hart, the TLM
/// PLIC and a scratch RAM behind a [`Router`], co-simulated under one
/// kernel. [`Soc::run`] is the co-simulation loop; every `wfi` park
/// publishes a merge fence combining kernel, PLIC, CPU and RAM marks.
pub struct Soc {
    /// The simulation kernel.
    pub kernel: Kernel,
    /// The device under verification.
    pub plic: Rc<RefCell<Plic>>,
    /// Scratch RAM (inputs + log buffer).
    pub ram: Rc<RefCell<SymRam>>,
    /// The driver's hart.
    pub cpu: Cpu,
    /// The interconnect.
    pub bus: Router,
}

impl Soc {
    /// Builds the platform for `config` with `program` loaded at address
    /// zero, the PLIC's HART-0 line wired to the CPU's latched interrupt
    /// flag, and the kernel's initialization step already run.
    pub fn new(ctx: &SymCtx, config: PlicConfig, program: Vec<u32>) -> Soc {
        let mut kernel = Kernel::new();
        let plic = Rc::new(RefCell::new(Plic::new(ctx, &mut kernel, config)));
        let cpu = Cpu::new(ctx, program);
        plic.borrow().connect_hart(Rc::new(RefCell::new(CpuIrqLine {
            flag: cpu.interrupt_line(),
        })));
        kernel.step();

        let ram = Rc::new(RefCell::new(SymRam::new(ctx, RAM_WORDS)));
        let mut bus = Router::new();
        bus.map("plic", u64::from(PLIC_BASE), PLIC_SIZE, plic.clone());
        bus.map(
            "ram",
            u64::from(RAM_BASE),
            (RAM_WORDS * 4) as u64,
            ram.clone(),
        );

        Soc {
            kernel,
            plic,
            ram,
            cpu,
            bus,
        }
    }

    /// Publishes the platform's structural state as a merge-fence mark:
    /// kernel + PLIC + CPU + RAM digests under the `"fw"` tag. Suspended
    /// paths that reconverge on all four become candidates for subtree
    /// adoption under `ExploreOrder::MergeEager`; under the exhaustive
    /// order the fence is one digest fold and changes nothing.
    pub fn fence(&self, ctx: &SymCtx) {
        let mut mark = StateDigest::new();
        mark.push_u64(self.kernel.state_mark());
        mark.push_u64(self.plic.borrow().state_mark());
        mark.push_u64(self.cpu.state_mark());
        mark.push_u64(self.ram.borrow().state_mark());
        ctx.note_state("fw", mark.finish());
    }

    /// Co-simulates up to `fuel` retired instructions, stepping the
    /// kernel whenever the hart sleeps. A `wfi` park (nothing left to
    /// wake the hart) publishes a merge fence before returning.
    pub fn run(&mut self, ctx: &SymCtx, fuel: u64) -> StepOutcome {
        let outcome = self.cpu.run(ctx, &mut self.kernel, &mut self.bus, fuel);
        if outcome == StepOutcome::Wfi {
            self.fence(ctx);
        }
        outcome
    }

    /// Reads log-buffer entry `slot` (driver-visible state for checks).
    pub fn log_word(&self, slot: usize) -> SymWord {
        self.ram.borrow().word(LOG_WORD0 + slot)
    }
}

/// The claim/complete service driver shared by the firmware suites and
/// the fuzz lane's fixed binary: enable the sources of `enable_masks`
/// (one 32-bit store per bitmap word), then service `services`
/// interrupts — sleep in `wfi`, claim into x13, append the claimed id to
/// the log buffer, complete — and halt.
///
/// Register conventions: x5 log cursor, x6 = &claim, x7 remaining
/// services, x13 last claimed id, x14 scratch.
pub fn service_driver(enable_masks: &[u32], services: u32) -> Vec<u32> {
    use symsc_iss::asm;
    let mut p = Vec::new();
    for (w, mask) in enable_masks.iter().enumerate() {
        p.extend(asm::li(10, ENABLE0 + 4 * w as u32));
        p.extend(asm::li(11, *mask));
        p.push(asm::sw(11, 10, 0));
    }
    p.extend(asm::li(5, LOG_BASE));
    p.extend(asm::li(6, CLAIM));
    p.extend(asm::li(7, services));
    let loop_head = (p.len() * 4) as i32;
    p.push(asm::beq(7, 0, 8 * 4)); // done: skip the 7-instruction body
    p.push(asm::wfi());
    p.push(asm::lw(13, 6, 0)); // claim
    p.push(asm::sw(13, 5, 0)); // log
    p.push(asm::addi(5, 5, 4));
    p.push(asm::sw(13, 6, 0)); // complete
    p.push(asm::addi(7, 7, -1));
    let here = (p.len() * 4) as i32;
    p.push(asm::jal(0, loop_head - here));
    p.push(asm::ebreak());
    p
}

/// All-ones enable masks for every bitmap word of `config`.
pub fn enable_all_masks(config: &PlicConfig) -> Vec<u32> {
    vec![0xFFFF_FFFF; config.bitmap_words()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::PlicVariant;
    use symsc_symex::Explorer;

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    #[test]
    fn service_driver_claims_a_concrete_interrupt() {
        let report = Explorer::new().explore(|ctx| {
            let config = fixed();
            let mut soc = Soc::new(ctx, config, service_driver(&enable_all_masks(&config), 1));
            for irq in 1..=config.sources {
                soc.plic.borrow().set_priority(ctx, irq, 1);
            }
            // Boot: enables written, then the driver parks in wfi.
            assert_eq!(soc.run(ctx, 200), StepOutcome::Wfi);
            soc.plic
                .borrow()
                .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(9));
            assert_eq!(soc.run(ctx, 200), StepOutcome::Halted);
            assert_eq!(soc.cpu.reg(ctx, 13).as_const(), Some(9));
            assert_eq!(soc.log_word(0).as_const(), Some(9));
            assert!(!soc.plic.borrow().hart_eip(), "completion reached the PLIC");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn service_driver_paces_two_services_through_wfi() {
        let report = Explorer::new().explore(|ctx| {
            let config = fixed();
            let mut soc = Soc::new(ctx, config, service_driver(&enable_all_masks(&config), 2));
            for irq in 1..=config.sources {
                soc.plic.borrow().set_priority(ctx, irq, 1);
            }
            assert_eq!(soc.run(ctx, 200), StepOutcome::Wfi);
            soc.plic
                .borrow()
                .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(3));
            soc.plic
                .borrow()
                .trigger_interrupt(ctx, &mut soc.kernel, &ctx.word32(7));
            assert_eq!(soc.run(ctx, 400), StepOutcome::Halted);
            // Equal priorities: lowest id first.
            assert_eq!(soc.log_word(0).as_const(), Some(3));
            assert_eq!(soc.log_word(1).as_const(), Some(7));
            assert!(!soc.plic.borrow().hart_eip());
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn ram_rejects_misaligned_and_out_of_range_accesses() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut ram = SymRam::new(ctx, 4);
            let mut txn = GenericPayload::read(ctx, ctx.word32(2), 4);
            ram.b_transport(ctx, &mut kernel, &mut txn);
            assert_eq!(txn.response, ResponseStatus::AddressError);
            let mut txn = GenericPayload::read(ctx, ctx.word32(16), 4);
            ram.b_transport(ctx, &mut kernel, &mut txn);
            assert_eq!(txn.response, ResponseStatus::AddressError);
        });
        assert!(report.passed());
    }
}

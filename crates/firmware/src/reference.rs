//! The golden machine for the firmware differential oracle: the same
//! driver binary, the same CPU, but the PLIC aperture is backed by the
//! concrete [`ReferencePlic`] spec model instead of the TLM DUV.
//!
//! Delivery on the golden side is *eager*: a trigger or completion
//! immediately re-evaluates `next_deliverable` and latches the CPU's
//! interrupt line on an EIP rise. The DUV reaches the same driver-visible
//! states through the kernel's one-clock `e_run` notification — the fuzz
//! lane advances simulated time at each stimulus so the two line up, and
//! any residual difference a driver can observe (registers, log buffer,
//! halt vs. park) is exactly what the differential checks report.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_iss::{Cpu, StepOutcome};
use symsc_pk::Kernel;
use symsc_plic::config::{CLAIM_BASE, ENABLE_BASE, THRESHOLD_BASE};
use symsc_plic::reference::ReferencePlic;
use symsc_symex::{SymCtx, SymWord};
use symsc_tlm::{BlockingTransport, Command, GenericPayload, ResponseStatus, Router};

use crate::soc::{SymRam, PLIC_BASE, PLIC_SIZE, RAM_BASE, RAM_WORDS};

/// A [`BlockingTransport`] façade over the [`ReferencePlic`]: decodes the
/// same register map as the TLM PLIC (priorities, enable bitmap,
/// threshold, claim/complete) and keeps the golden CPU's latched
/// interrupt line in step with the spec model's delivery rule.
pub struct RefPlicBus {
    plic: ReferencePlic,
    threshold: u32,
    eip: bool,
    line: Rc<RefCell<bool>>,
}

impl RefPlicBus {
    /// A bus over a fresh [`ReferencePlic`] with `sources` sources, wired
    /// to the golden CPU's interrupt-line latch.
    pub fn new(sources: u32, line: Rc<RefCell<bool>>) -> RefPlicBus {
        RefPlicBus {
            plic: ReferencePlic::new(sources),
            threshold: 0,
            eip: false,
            line,
        }
    }

    /// The spec model behind the bus.
    pub fn plic(&self) -> &ReferencePlic {
        &self.plic
    }

    /// Raises the external interrupt line `irq` (invalid ids are ignored,
    /// matching the fixed DUV's gateway), then re-evaluates delivery.
    pub fn trigger(&mut self, irq: u32) {
        let _ = self.plic.trigger(irq);
        self.attempt_delivery();
    }

    /// Backdoor priority write (testbench setup), mirrored on the DUV.
    pub fn set_priority(&mut self, irq: u32, priority: u32) {
        self.plic.set_priority(irq, priority);
    }

    /// Backdoor per-source enable (testbench setup).
    pub fn set_enabled(&mut self, irq: u32, enabled: bool) {
        self.plic.set_enabled(irq, enabled);
    }

    /// Backdoor threshold write (testbench setup).
    pub fn set_threshold(&mut self, threshold: u32) {
        self.threshold = threshold;
        self.plic.set_threshold(threshold);
    }

    fn attempt_delivery(&mut self) {
        if !self.eip && self.plic.next_deliverable().is_some() {
            self.eip = true;
            *self.line.borrow_mut() = true;
        }
    }
}

impl BlockingTransport for RefPlicBus {
    fn b_transport(&mut self, ctx: &SymCtx, _kernel: &mut Kernel, payload: &mut GenericPayload) {
        let addr = payload.address.concretize();
        if !addr.is_multiple_of(4) {
            payload.response = ResponseStatus::AddressError;
            return;
        }
        let sources = u64::from(self.plic.sources());
        payload.response = ResponseStatus::Ok;
        match payload.command {
            Command::Write => {
                let value = payload.word(0).concretize() as u32;
                if (4..=4 * sources).contains(&addr) {
                    self.plic.set_priority((addr / 4) as u32, value);
                } else if (ENABLE_BASE..ENABLE_BASE + 4 * sources.div_ceil(32)).contains(&addr) {
                    let widx = ((addr - ENABLE_BASE) / 4) as u32;
                    for j in 0..32u32 {
                        let id = 32 * widx + j;
                        if (1..=self.plic.sources()).contains(&id) {
                            self.plic.set_enabled(id, value & (1 << j) != 0);
                        }
                    }
                } else if addr == THRESHOLD_BASE {
                    self.threshold = value;
                    self.plic.set_threshold(value);
                } else if addr == CLAIM_BASE {
                    // Completion: the line may rise again immediately if
                    // something else is deliverable.
                    self.eip = false;
                    self.attempt_delivery();
                } else {
                    payload.response = ResponseStatus::AddressError;
                }
            }
            Command::Read => {
                let value = if (4..=4 * sources).contains(&addr) {
                    self.plic.priority((addr / 4) as u32)
                } else if addr == THRESHOLD_BASE {
                    self.threshold
                } else if addr == CLAIM_BASE {
                    self.plic.claim()
                } else {
                    payload.response = ResponseStatus::AddressError;
                    return;
                };
                payload.set_word(0, ctx.word32(value));
            }
        }
    }
}

/// The golden machine: the same CPU and scratch RAM as [`crate::Soc`],
/// with [`RefPlicBus`] behind the PLIC aperture. Its kernel never has
/// scheduled activity — delivery is eager — so `run` parks exactly when
/// the spec model has nothing deliverable latched.
pub struct RefMachine {
    /// A kernel with no scheduled processes (the co-sim loop requires
    /// one; it never advances time here).
    pub kernel: Kernel,
    /// The spec-model bus target.
    pub plic: Rc<RefCell<RefPlicBus>>,
    /// Scratch RAM (inputs + log buffer), same map as the DUV's.
    pub ram: Rc<RefCell<SymRam>>,
    /// The golden hart.
    pub cpu: Cpu,
    /// The interconnect.
    pub bus: Router,
}

impl RefMachine {
    /// Builds the golden machine for `sources` interrupt sources with
    /// `program` loaded at address zero.
    pub fn new(ctx: &SymCtx, sources: u32, program: Vec<u32>) -> RefMachine {
        let kernel = Kernel::new();
        let cpu = Cpu::new(ctx, program);
        let plic = Rc::new(RefCell::new(RefPlicBus::new(sources, cpu.interrupt_line())));
        let ram = Rc::new(RefCell::new(SymRam::new(ctx, RAM_WORDS)));
        let mut bus = Router::new();
        bus.map("ref-plic", u64::from(PLIC_BASE), PLIC_SIZE, plic.clone());
        bus.map(
            "ref-ram",
            u64::from(RAM_BASE),
            (RAM_WORDS * 4) as u64,
            ram.clone(),
        );
        RefMachine {
            kernel,
            plic,
            ram,
            cpu,
            bus,
        }
    }

    /// Runs the golden hart for up to `fuel` retired instructions.
    pub fn run(&mut self, ctx: &SymCtx, fuel: u64) -> StepOutcome {
        self.cpu.run(ctx, &mut self.kernel, &mut self.bus, fuel)
    }

    /// Reads log-buffer entry `slot`.
    pub fn log_word(&self, slot: usize) -> SymWord {
        self.ram.borrow().word(crate::soc::LOG_WORD0 + slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::{enable_all_masks, service_driver};
    use symsc_plic::PlicConfig;
    use symsc_symex::Explorer;

    #[test]
    fn the_golden_machine_services_a_claim_complete_loop() {
        let report = Explorer::new().explore(|ctx| {
            let config = PlicConfig::fe310_scaled();
            let program = service_driver(&enable_all_masks(&config), 2);
            let mut m = RefMachine::new(ctx, config.sources, program);
            for irq in 1..=config.sources {
                m.plic.borrow_mut().set_priority(irq, 1);
            }
            assert_eq!(m.run(ctx, 400), StepOutcome::Wfi);
            m.plic.borrow_mut().trigger(3);
            m.plic.borrow_mut().trigger(7);
            assert_eq!(m.run(ctx, 400), StepOutcome::Halted);
            assert_eq!(m.log_word(0).as_const(), Some(3));
            assert_eq!(m.log_word(1).as_const(), Some(7));
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn invalid_trigger_ids_are_ignored_like_the_fixed_gateway() {
        let report = Explorer::new().explore(|ctx| {
            let config = PlicConfig::fe310_scaled();
            let program = service_driver(&enable_all_masks(&config), 1);
            let mut m = RefMachine::new(ctx, config.sources, program);
            for irq in 1..=config.sources {
                m.plic.borrow_mut().set_priority(irq, 1);
            }
            assert_eq!(m.run(ctx, 400), StepOutcome::Wfi);
            m.plic.borrow_mut().trigger(0);
            m.plic.borrow_mut().trigger(config.sources + 1);
            assert_eq!(m.run(ctx, 400), StepOutcome::Wfi, "no wake on invalid ids");
        });
        assert!(report.passed(), "{report}");
    }
}

//! The firmware kill matrix: every PLIC mutant against every firmware
//! test, the software-driven analog of `symsc_mutate`'s register-level
//! matrix. Rows reuse [`MutantRow`]/[`CellResult`] (they are column
//! agnostic); only the columns change from [`TestId`](symsc_mutate::TestId)
//! to [`FirmwareId`].

use symsc_mutate::{CellResult, Mutant, MutantRow};
use symsc_plic::{Mutation, PlicConfig};
use symsysc_core::Verifier;

use crate::suite::{run_firmware_test, FirmwareId};

/// The firmware suite's result on the unmutated baseline for one test.
///
/// Same shape as the TLM suite's [`symsc_mutate::BaselineRow`], keyed by
/// [`FirmwareId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FirmwareBaselineRow {
    /// Which firmware test.
    pub test: FirmwareId,
    /// Whether the baseline passes (it must, for kills to count).
    pub passed: bool,
    /// Paths explored.
    pub paths: u64,
    /// Distinct symbolic fork sites decided — firmware branches and
    /// peripheral decode forks land in the same site space.
    pub branch_sites: u64,
    /// Branch directions exercised.
    pub branches_covered: u64,
}

/// The full firmware kill matrix: firmware tests × mutants.
#[derive(Clone, Debug)]
pub struct FirmwareKillMatrix {
    /// The (unmutated) configuration every run derives from.
    pub config: PlicConfig,
    /// The firmware tests that ran (columns).
    pub tests: Vec<FirmwareId>,
    /// Baseline results on the unmutated configuration.
    pub baseline: Vec<FirmwareBaselineRow>,
    /// One row per mutant.
    pub mutants: Vec<MutantRow>,
}

impl FirmwareKillMatrix {
    /// Killed mutants over total mutants, in percent.
    pub fn kill_rate(&self) -> f64 {
        if self.mutants.is_empty() {
            return 0.0;
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        100.0 * killed as f64 / self.mutants.len() as f64
    }

    /// The mutants no firmware test killed.
    pub fn survivors(&self) -> Vec<&MutantRow> {
        self.mutants.iter().filter(|m| !m.killed()).collect()
    }

    /// Kills per test, parallel to [`tests`](Self::tests).
    pub fn kills_per_test(&self) -> Vec<usize> {
        (0..self.tests.len())
            .map(|t| self.mutants.iter().filter(|m| m.cells[t].killed).count())
            .collect()
    }

    /// Whether the named mutant exists in the matrix and was killed.
    pub fn killed_mutant(&self, name: &str) -> bool {
        self.mutants.iter().any(|m| m.name == name && m.killed())
    }

    /// A deterministic rendering of the whole matrix: no timing, no
    /// worker-dependent data — two runs at any worker count, fork
    /// strategy or exploration order must produce byte-identical strings.
    pub fn stable_view(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fw-kill-matrix sources={} maxp={} variant={:?}",
            self.config.sources, self.config.max_priority, self.config.variant
        );
        for b in &self.baseline {
            let _ = writeln!(
                s,
                "baseline {}: {} paths={} sites={} covered={}",
                b.test,
                if b.passed { "pass" } else { "FAIL" },
                b.paths,
                b.branch_sites,
                b.branches_covered
            );
        }
        for m in &self.mutants {
            let _ = write!(
                s,
                "mutant {}{}:",
                m.name,
                if m.preset { " [preset]" } else { "" }
            );
            for (t, cell) in self.tests.iter().zip(&m.cells) {
                let verdict = if cell.killed {
                    format!("kill({})", cell.distinct_errors)
                } else {
                    "pass".to_string()
                };
                let _ = write!(
                    s,
                    " {t}={verdict} paths={} sites={} covered={}",
                    cell.paths, cell.branch_sites, cell.branches_covered
                );
            }
            let _ = writeln!(s, " => {}", if m.killed() { "killed" } else { "SURVIVED" });
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        let _ = writeln!(s, "killed {}/{}", killed, self.mutants.len());
        s
    }
}

/// Runs `tests` against the unmutated `config` and against every mutant,
/// with `workers` explorer workers per cell. The matrix content is
/// identical for any worker count.
pub fn run_firmware_kill_matrix(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[FirmwareId],
    workers: usize,
) -> FirmwareKillMatrix {
    run_firmware_kill_matrix_with(config, mutants, tests, |name| {
        Verifier::new(name).workers(workers)
    })
}

/// Like [`run_firmware_kill_matrix`], but with full control over the
/// verifier each cell uses (exploration order, fork strategy, budgets);
/// `verifier` receives the cell's name (`"F3/stuck_enable_1"`). Every
/// verifier configuration explores the same path set, so the matrix is
/// byte-identical for any choice — the determinism tests pin this.
pub fn run_firmware_kill_matrix_with<F: Fn(&str) -> Verifier>(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[FirmwareId],
    verifier: F,
) -> FirmwareKillMatrix {
    let baseline: Vec<FirmwareBaselineRow> = tests
        .iter()
        .map(|&test| {
            let o = run_firmware_test(test, config, &verifier(test.name()));
            FirmwareBaselineRow {
                test,
                passed: o.passed(),
                paths: o.report.stats.paths,
                branch_sites: o.report.stats.branch_sites(),
                branches_covered: o.report.stats.branches_covered(),
            }
        })
        .collect();

    let rows: Vec<MutantRow> = mutants
        .iter()
        .map(|mutant| {
            let cells: Vec<CellResult> = tests
                .iter()
                .zip(&baseline)
                .map(|(&test, base)| {
                    let name = format!("{}/{}", test.name(), Mutation::name(mutant));
                    let o = run_firmware_test(test, config.mutate(mutant.op()), &verifier(&name));
                    CellResult {
                        killed: base.passed && !o.passed(),
                        distinct_errors: o.report.distinct_errors().len(),
                        paths: o.report.stats.paths,
                        branch_sites: o.report.stats.branch_sites(),
                        branches_covered: o.report.stats.branches_covered(),
                    }
                })
                .collect();
            MutantRow {
                name: Mutation::name(mutant),
                description: mutant.description(),
                op: mutant.op(),
                preset: mutant.preset().is_some(),
                cells,
            }
        })
        .collect();

    FirmwareKillMatrix {
        config,
        tests: tests.to_vec(),
        baseline,
        mutants: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::PlicVariant;

    #[test]
    fn a_small_firmware_matrix_kills_the_presets_it_should() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let mutants = symsc_mutate::presets();
        let matrix =
            run_firmware_kill_matrix(config, &mutants, &[FirmwareId::F1, FirmwareId::F2], 1);
        assert!(
            matrix.baseline.iter().all(|b| b.passed),
            "{}",
            matrix.stable_view()
        );
        // IF1 (gateway off-by-one) falls to F1's invalid-id branch; IF6
        // (threshold off-by-one) to F2's two-sided eligibility check.
        assert!(matrix.killed_mutant("IF1"), "{}", matrix.stable_view());
        assert!(matrix.killed_mutant("IF6"), "{}", matrix.stable_view());
    }
}

//! Property tests for the register decode and the bus router: seeded
//! random transactions — addresses, sizes, alignments, commands, buffer
//! shortfalls — are replayed against a *naive reference decoder* that
//! re-states the TLM-2.0 decode rules independently of the engine's
//! symbolic formulation. Every generated transaction must produce the
//! response the reference predicts, and RAM-backed regions must read
//! back exactly the words the reference says were committed (including
//! the partially-applied prefix of a failed burst).

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::Kernel;
use symsc_rng::Rng;
use symsc_symex::{Explorer, SymArray, SymCtx, SymWord, Width};
use symsc_tlm::{
    Access, BlockingTransport, CheckMode, Command, GenericPayload, RegisterBank, RegisterModel,
    ResponseStatus, Router,
};

/// The shared register map of the test peripheral: a RAM-like block, a
/// read-only ID register, a write-only doorbell and a second RAM block,
/// with gaps between them.
fn bank() -> RegisterBank {
    RegisterBank::new(CheckMode::TlmError)
        .region("ram", 0x00, 4, Access::ReadWrite)
        .region("id", 0x100, 1, Access::ReadOnly)
        .region("doorbell", 0x200, 2, Access::WriteOnly)
        .region("wide", 0x300, 8, Access::ReadWrite)
}

const ID_VALUE: u32 = 0xF00D;

/// The peripheral model: RAM-backed words for regions 0 and 3, the ID
/// constant for region 1, a write sink for region 2.
struct Scratch {
    ram: SymArray,
    wide: SymArray,
}

impl Scratch {
    fn new(ctx: &SymCtx) -> Scratch {
        Scratch {
            ram: SymArray::filled(ctx, 4, 0, Width::W32),
            wide: SymArray::filled(ctx, 8, 0, Width::W32),
        }
    }
}

impl RegisterModel for Scratch {
    fn read_word(
        &mut self,
        ctx: &SymCtx,
        _kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
    ) -> SymWord {
        match region {
            0 => self.ram.select(word_index),
            1 => ctx.word32(ID_VALUE),
            3 => self.wide.select(word_index),
            _ => unreachable!("write-only region read"),
        }
    }

    fn write_word(
        &mut self,
        _ctx: &SymCtx,
        _kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
        value: &SymWord,
    ) {
        match region {
            0 => self.ram.store(word_index, value),
            2 => {} // doorbell: value discarded
            3 => self.wide.store(word_index, value),
            _ => unreachable!("read-only region written"),
        }
    }
}

/// One randomly generated transaction.
#[derive(Clone, Copy, Debug)]
struct Txn {
    write: bool,
    addr: u32,
    len: u32,
    /// Buffer size in bytes; may be smaller than `len` (initiator bug).
    buffer: u32,
    value: u32,
}

fn generate(rng: &mut Rng) -> Txn {
    // Bias towards region starts so every decode class is actually hit.
    let addr = match rng.gen_range_inclusive(0, 5) {
        0 => 0x00,
        1 => 0x100,
        2 => 0x200,
        3 => 0x300,
        4 => rng.next_u32() % 0x500, // anywhere in/after the map
        _ => (rng.next_u32() % 0x340) & !0x3, // aligned, often in a gap
    } + if rng.gen_range_inclusive(0, 3) == 0 {
        rng.next_u32() % 4 // sometimes knock the alignment off
    } else {
        0
    };
    let len = match rng.gen_range_inclusive(0, 4) {
        0 => 0,
        1 => 4,
        2 => 4 * (rng.next_u32() % 10),
        3 => rng.next_u32() % 40, // possibly misaligned length
        _ => 8,
    };
    let buffer = if rng.gen_range_inclusive(0, 4) == 0 && len > 4 {
        len / 2 // undersized initiator buffer
    } else {
        len
    };
    Txn {
        write: rng.gen_bool(),
        addr,
        len,
        buffer,
        value: rng.next_u32(),
    }
}

/// The naive reference: an independent restatement of the decode rules.
/// Returns the expected response and applies the words the engine would
/// commit (in order, stopping where the engine stops) to `ram`/`wide`.
fn reference(txn: &Txn, ram: &mut [u32; 4], wide: &mut [u32; 8]) -> ResponseStatus {
    struct Reg {
        base: u32,
        words: u32,
        writable: bool,
        readable: bool,
    }
    let regions = [
        Reg {
            base: 0x00,
            words: 4,
            writable: true,
            readable: true,
        },
        Reg {
            base: 0x100,
            words: 1,
            writable: false,
            readable: true,
        },
        Reg {
            base: 0x200,
            words: 2,
            writable: true,
            readable: false,
        },
        Reg {
            base: 0x300,
            words: 8,
            writable: true,
            readable: true,
        },
    ];
    if !txn.addr.is_multiple_of(4) || !txn.len.is_multiple_of(4) {
        return ResponseStatus::AddressError;
    }
    let Some((region_idx, reg)) = regions
        .iter()
        .enumerate()
        .find(|(_, r)| txn.addr >= r.base && txn.addr < r.base + 4 * r.words)
    else {
        return ResponseStatus::AddressError;
    };
    if (txn.write && !reg.writable) || (!txn.write && !reg.readable) {
        return ResponseStatus::CommandError;
    }
    let offset = (txn.addr - reg.base) / 4;
    let buffer_words = txn.buffer.div_ceil(4).max(1);
    for w in 0..txn.len / 4 {
        if w >= buffer_words || offset + w >= reg.words {
            return ResponseStatus::BurstError;
        }
        if txn.write {
            match region_idx {
                0 => ram[(offset + w) as usize] = txn.value,
                3 => wide[(offset + w) as usize] = txn.value,
                _ => {}
            }
        }
    }
    ResponseStatus::Ok
}

/// Expected read data for an `Ok` read, from the reference state.
fn expected_read(txn: &Txn, ram: &[u32; 4], wide: &[u32; 8]) -> Vec<u32> {
    let id = [ID_VALUE];
    let (base, words): (u32, &[u32]) = match txn.addr {
        0x000..=0x0FF => (0x00, ram),
        0x100..=0x1FF => (0x100, &id),
        0x300..=0x3FF => (0x300, wide),
        _ => unreachable!("reference said Ok for an unmapped read"),
    };
    let offset = (txn.addr - base) / 4;
    (0..txn.len / 4)
        .map(|w| words[(offset + w) as usize])
        .collect()
}

fn run_txn(
    ctx: &SymCtx,
    kernel: &mut Kernel,
    target: &mut dyn BlockingTransport,
    base: u32,
    txn: &Txn,
) -> GenericPayload {
    let command = if txn.write {
        Command::Write
    } else {
        Command::Read
    };
    let mut payload = GenericPayload::with_symbolic_length(
        ctx,
        command,
        ctx.word32(base + txn.addr),
        ctx.word32(txn.len),
        txn.buffer,
    );
    for w in 0..payload.data_words() {
        payload.set_word(w, ctx.word32(txn.value));
    }
    target.b_transport(ctx, kernel, &mut payload);
    payload
}

/// Adapts the bank + model pair to `BlockingTransport`, the way a real
/// peripheral front-end does.
struct Peripheral {
    bank: RegisterBank,
    model: Scratch,
}

impl BlockingTransport for Peripheral {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        self.bank.transport(&mut self.model, ctx, kernel, payload);
    }
}

#[test]
fn random_transactions_match_the_reference_decoder() {
    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let mut dev = Peripheral {
            bank: bank(),
            model: Scratch::new(ctx),
        };
        let mut rng = Rng::seed_from_u64(0x5EED_0001);
        let mut ram = [0u32; 4];
        let mut wide = [0u32; 8];
        let mut seen = std::collections::BTreeMap::new();
        for i in 0..400 {
            let txn = generate(&mut rng);
            let payload = run_txn(ctx, &mut kernel, &mut dev, 0, &txn);
            let expected = reference(&txn, &mut ram, &mut wide);
            assert_eq!(
                payload.response, expected,
                "txn {i} {txn:?}: decode disagrees with the reference"
            );
            *seen.entry(format!("{expected:?}")).or_insert(0u32) += 1;
            if expected == ResponseStatus::Ok && !txn.write {
                for (w, want) in expected_read(&txn, &ram, &wide).into_iter().enumerate() {
                    ctx.check(
                        &payload.word(w).eq(&ctx.word32(want)),
                        "read data matches the reference state",
                    );
                }
            }
        }
        // The sweep must not be vacuous: every response class shows up.
        for class in ["Ok", "AddressError", "CommandError", "BurstError"] {
            assert!(
                seen.contains_key(class),
                "generator never produced {class}: {seen:?}"
            );
        }
    });
    assert!(report.passed(), "{:?}", report.first_error());
}

#[test]
fn random_transactions_through_the_router_match() {
    const DEV_A: u32 = 0x1000_0000;
    const DEV_B: u32 = 0x4000_0000;
    let report = Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let dev_a = Rc::new(RefCell::new(Peripheral {
            bank: bank(),
            model: Scratch::new(ctx),
        }));
        let dev_b = Rc::new(RefCell::new(Peripheral {
            bank: bank(),
            model: Scratch::new(ctx),
        }));
        let mut bus = Router::new();
        bus.map("a", u64::from(DEV_A), 0x400, dev_a);
        bus.map("b", u64::from(DEV_B), 0x400, dev_b);

        let mut rng = Rng::seed_from_u64(0x5EED_0002);
        let mut state = [(DEV_A, [0u32; 4], [0u32; 8]), (DEV_B, [0u32; 4], [0u32; 8])];
        let mut unmapped = 0u32;
        for i in 0..300 {
            let txn = generate(&mut rng);
            let pick = rng.gen_range_inclusive(0, 2);
            if pick == 2 {
                // An address no mapping covers.
                let payload = run_txn(ctx, &mut kernel, &mut bus, 0x2000_0000, &txn);
                assert_eq!(payload.response, ResponseStatus::AddressError, "txn {i}");
                unmapped += 1;
                continue;
            }
            let (base, ram, wide) = &mut state[pick as usize];
            let base = *base;
            let payload = run_txn(ctx, &mut kernel, &mut bus, base, &txn);
            let expected = reference(&txn, ram, wide);
            assert_eq!(
                payload.response, expected,
                "txn {i} {txn:?} via {base:#x}: routed decode disagrees"
            );
            // The router must restore the global address it decoded.
            ctx.check(
                &payload.address.eq(&ctx.word32(base + txn.addr)),
                "global address restored after routing",
            );
        }
        assert!(unmapped > 0, "sweep never exercised the unmapped branch");
    });
    assert!(report.passed(), "{:?}", report.first_error());
}

#[test]
fn delay_accumulates_exactly_once_per_decoded_transaction() {
    Explorer::new().explore(|ctx| {
        let mut kernel = Kernel::new();
        let mut dev = Peripheral {
            bank: bank(),
            model: Scratch::new(ctx),
        };
        let mut rng = Rng::seed_from_u64(0x5EED_0003);
        for _ in 0..50 {
            let txn = generate(&mut rng);
            let payload = run_txn(ctx, &mut kernel, &mut dev, 0, &txn);
            // Every transaction that reaches the bank pays the access
            // delay exactly once, success or not.
            assert!(payload.delay > symsc_pk::SimTime::ZERO, "{txn:?}");
        }
    });
}

//! The generic payload: TLM-2.0's `tlm_generic_payload`, symbolic edition.

use symsc_pk::SimTime;
use symsc_symex::{SymCtx, SymWord, Width};

/// The transaction command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// A read transaction: the target fills the data buffer.
    Read,
    /// A write transaction: the target consumes the data buffer.
    Write,
}

/// The transaction response, mirroring `tlm_response_status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResponseStatus {
    /// The transaction has not been processed yet.
    Incomplete,
    /// `TLM_OK_RESPONSE`.
    Ok,
    /// `TLM_ADDRESS_ERROR_RESPONSE` — no target or register at the address.
    AddressError,
    /// `TLM_COMMAND_ERROR_RESPONSE` — e.g. a write to a read-only register.
    CommandError,
    /// `TLM_BURST_ERROR_RESPONSE` — the length does not fit the target.
    BurstError,
    /// `TLM_GENERIC_ERROR_RESPONSE`.
    GenericError,
}

impl ResponseStatus {
    /// Whether the transaction succeeded.
    pub fn is_ok(self) -> bool {
        self == ResponseStatus::Ok
    }
}

/// A memory-mapped transaction with symbolic address, length and data.
///
/// The data buffer is a vector of 32-bit words (TLM register traffic in
/// the modeled peripherals is word-granular); `length` is the requested
/// transfer size *in bytes*, which may be symbolic and smaller or larger
/// than the buffer — the register router checks it against the decode.
///
/// # Example
///
/// ```
/// use symsc_symex::{Explorer, Width};
/// use symsc_tlm::{Command, GenericPayload};
///
/// Explorer::new().explore(|ctx| {
///     let addr = ctx.word32(0x0C00_0004);
///     let mut txn = GenericPayload::read(ctx, addr, 4);
///     assert_eq!(txn.command, Command::Read);
///     assert_eq!(txn.data_words(), 1);
///     txn.set_word(0, ctx.word32(7));
///     assert_eq!(txn.word(0).as_const(), Some(7));
/// });
/// ```
#[derive(Clone, Debug)]
pub struct GenericPayload {
    /// Read or write.
    pub command: Command,
    /// Byte address (32-bit, possibly symbolic).
    pub address: SymWord,
    /// Transfer length in bytes (32-bit, possibly symbolic).
    pub length: SymWord,
    /// The data buffer, one 32-bit word per entry.
    pub data: Vec<SymWord>,
    /// Response set by the target.
    pub response: ResponseStatus,
    /// Accumulated transaction delay (the TLM timing annotation that feeds
    /// the global quantum).
    pub delay: SimTime,
}

impl GenericPayload {
    /// A read transaction of `length_bytes` (concrete) at `address`.
    /// The buffer is sized to hold the rounded-up number of words.
    pub fn read(ctx: &SymCtx, address: SymWord, length_bytes: u32) -> GenericPayload {
        let length = ctx.word(u64::from(length_bytes), Width::W32);
        GenericPayload::with_symbolic_length(ctx, Command::Read, address, length, length_bytes)
    }

    /// A write transaction of `length_bytes` (concrete) at `address`.
    pub fn write(ctx: &SymCtx, address: SymWord, length_bytes: u32) -> GenericPayload {
        let length = ctx.word(u64::from(length_bytes), Width::W32);
        GenericPayload::with_symbolic_length(ctx, Command::Write, address, length, length_bytes)
    }

    /// A transaction whose length is itself symbolic. `buffer_bytes` bounds
    /// the backing buffer (the testbench must `assume` that the symbolic
    /// length fits, mirroring the paper's "up to 1000 bytes").
    pub fn with_symbolic_length(
        ctx: &SymCtx,
        command: Command,
        address: SymWord,
        length: SymWord,
        buffer_bytes: u32,
    ) -> GenericPayload {
        let words = buffer_bytes.div_ceil(4).max(1) as usize;
        let data = (0..words).map(|_| ctx.word32(0)).collect();
        GenericPayload {
            command,
            address,
            length,
            data,
            response: ResponseStatus::Incomplete,
            delay: SimTime::ZERO,
        }
    }

    /// Number of words in the data buffer.
    pub fn data_words(&self) -> usize {
        self.data.len()
    }

    /// The `index`-th data word.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the buffer.
    pub fn word(&self, index: usize) -> &SymWord {
        &self.data[index]
    }

    /// Sets the `index`-th data word.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the buffer.
    pub fn set_word(&mut self, index: usize, value: SymWord) {
        self.data[index] = value;
    }

    /// Marks the payload incomplete again so it can be reused.
    pub fn reset_response(&mut self) {
        self.response = ResponseStatus::Incomplete;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::Explorer;

    #[test]
    fn read_constructor_sizes_buffer() {
        Explorer::new().explore(|ctx| {
            let addr = ctx.word32(0x100);
            let p = GenericPayload::read(ctx, addr, 12);
            assert_eq!(p.data_words(), 3);
            assert_eq!(p.length.as_const(), Some(12));
            assert_eq!(p.response, ResponseStatus::Incomplete);
            assert_eq!(p.delay, SimTime::ZERO);
        });
    }

    #[test]
    fn odd_lengths_round_buffer_up() {
        Explorer::new().explore(|ctx| {
            let addr = ctx.word32(0);
            let p = GenericPayload::write(ctx, addr.clone(), 5);
            assert_eq!(p.data_words(), 2);
            let p0 = GenericPayload::write(ctx, addr, 0);
            assert_eq!(p0.data_words(), 1, "zero length keeps a 1-word buffer");
        });
    }

    #[test]
    fn response_helpers() {
        assert!(ResponseStatus::Ok.is_ok());
        assert!(!ResponseStatus::AddressError.is_ok());
        assert!(!ResponseStatus::Incomplete.is_ok());
    }

    #[test]
    fn word_accessors_round_trip() {
        Explorer::new().explore(|ctx| {
            let addr = ctx.word32(0);
            let mut p = GenericPayload::read(ctx, addr, 8);
            p.set_word(1, ctx.word32(0xDEAD));
            assert_eq!(p.word(1).as_const(), Some(0xDEAD));
            p.reset_response();
            assert_eq!(p.response, ResponseStatus::Incomplete);
        });
    }
}

//! The blocking-transport interface (`tlm_blocking_transport_if`).

use symsc_pk::Kernel;
use symsc_symex::SymCtx;

use crate::payload::GenericPayload;

/// The target-side blocking transport interface.
///
/// Unlike SystemC — which reaches the simulation context through global
/// state — targets here receive the kernel explicitly, which is the
/// ownership-safe Rust equivalent. The symbolic context rides along so the
/// target can fork on symbolic decode decisions.
pub trait BlockingTransport {
    /// Processes `payload` in place: performs the access, sets
    /// [`payload.response`](GenericPayload::response) and accumulates
    /// [`payload.delay`](GenericPayload::delay).
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Command, ResponseStatus};
    use symsc_symex::{Explorer, Width};

    /// A trivial 1-register echo target used to exercise the trait.
    struct Echo {
        stored: Option<symsc_symex::SymWord>,
    }

    impl BlockingTransport for Echo {
        fn b_transport(
            &mut self,
            ctx: &SymCtx,
            _kernel: &mut Kernel,
            payload: &mut GenericPayload,
        ) {
            match payload.command {
                Command::Write => self.stored = Some(payload.word(0).clone()),
                Command::Read => {
                    let value = self
                        .stored
                        .clone()
                        .unwrap_or_else(|| ctx.word(0, Width::W32));
                    payload.set_word(0, value);
                }
            }
            payload.response = ResponseStatus::Ok;
        }
    }

    #[test]
    fn blocking_transport_round_trip() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut target = Echo { stored: None };
            let v = ctx.symbolic("v", Width::W32);

            let addr = ctx.word32(0);
            let mut w = GenericPayload::write(ctx, addr.clone(), 4);
            w.set_word(0, v.clone());
            target.b_transport(ctx, &mut kernel, &mut w);
            assert!(w.response.is_ok());

            let mut r = GenericPayload::read(ctx, addr, 4);
            target.b_transport(ctx, &mut kernel, &mut r);
            ctx.check(&r.word(0).eq(&v), "read returns written value");
        });
        assert!(report.passed());
    }
}

//! # symsc-tlm — TLM-2.0-style transactions over symbolic payloads
//!
//! The transaction-level-modeling layer of the workspace: a generic
//! payload, a blocking-transport interface, and a memory-mapped register
//! router in the style of the RISC-V VP's `tlm_map` — the machinery every
//! TLM peripheral in the reproduced paper is built on.
//!
//! The twist relative to plain TLM: addresses, lengths and data bytes are
//! [`SymWord`]s, so a testbench can issue *symbolic* transactions (the
//! paper's T4/T5: "a TLM read-transaction at a symbolic address using a
//! symbolic length parameter") and the register router resolves the decode
//! through the symbolic engine, forking per reachable register mapping
//! exactly like KLEE does on the C++ original.
//!
//! The router's defensive checks come in two flavors selected by
//! [`CheckMode`]:
//!
//! * [`CheckMode::Assert`] — the *faithful* reproduction of the original
//!   PLIC code, which used C `assert` for alignment, decode and access
//!   violations. Under symbolic execution these become model panics /
//!   out-of-bounds errors — the paper's findings F2–F5.
//! * [`CheckMode::TlmError`] — the *fixed* behavior the paper recommends:
//!   return a TLM error response and let the initiator handle it.
//!
//! [`SymWord`]: symsc_symex::SymWord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod payload;
pub mod regmap;
pub mod router;
pub mod transport;

pub use payload::{Command, GenericPayload, ResponseStatus};
pub use regmap::{Access, CheckMode, Region, RegisterBank, RegisterModel};
pub use router::Router;
pub use transport::BlockingTransport;

//! Memory-mapped register routing — the RISC-V VP `tlm_map` equivalent.
//!
//! A [`RegisterBank`] owns the *decode* of a peripheral's register file:
//! alignment checks, region matching, access-right checks and boundary
//! checks, with symbolic addresses and lengths resolved through the
//! engine (forking per reachable mapping, like KLEE on the original C++).
//! The *values* live in the peripheral, which implements
//! [`RegisterModel`] to service word reads/writes and their side effects
//! (e.g. the PLIC's claim/complete register).

use symsc_pk::{Kernel, SimTime};
use symsc_symex::{ErrorKind, SymCtx, SymWord};

use crate::payload::{Command, GenericPayload, ResponseStatus};

/// Software access rights of a register region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Reads allowed, writes are an access violation.
    ReadOnly,
    /// Writes allowed, reads are an access violation.
    WriteOnly,
    /// Both directions allowed.
    ReadWrite,
}

/// How decode violations are handled.
///
/// The original PLIC used C `assert` (and an unchecked `memcpy`), which is
/// exactly what the paper's findings F2–F5 are about; the recommended fix
/// is to return TLM error responses instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckMode {
    /// Faithful-to-the-bug behavior: assertion failures abort the model
    /// (reported as model panics) and boundary overruns are raw
    /// out-of-bounds accesses (reported as memory errors).
    Assert,
    /// Fixed behavior: violations produce TLM error responses.
    TlmError,
}

/// One contiguous word-granular register region.
#[derive(Clone, Debug)]
pub struct Region {
    /// Diagnostic name (e.g. `"interrupt_priorities"`).
    pub name: String,
    /// Base byte address.
    pub base: u64,
    /// Size in 32-bit words.
    pub words: usize,
    /// Access rights.
    pub access: Access,
}

impl Region {
    fn end(&self) -> u64 {
        self.base + (self.words as u64) * 4
    }
}

/// Word-level register backend implemented by the peripheral.
pub trait RegisterModel {
    /// Reads the word at `word_index` within `region` (side effects
    /// allowed — e.g. claiming an interrupt).
    fn read_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
    ) -> SymWord;

    /// Writes the word at `word_index` within `region`.
    fn write_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
        value: &SymWord,
    );
}

/// The register decode/router for one peripheral.
///
/// # Example
///
/// ```
/// use symsc_tlm::{Access, CheckMode, RegisterBank};
///
/// let bank = RegisterBank::new(CheckMode::TlmError)
///     .region("ctrl", 0x0, 1, Access::ReadWrite)
///     .region("status", 0x4, 1, Access::ReadOnly);
/// assert_eq!(bank.regions().len(), 2);
/// assert_eq!(bank.region_index("status"), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct RegisterBank {
    regions: Vec<Region>,
    check_mode: CheckMode,
    access_delay: SimTime,
}

impl RegisterBank {
    /// An empty bank with the given violation handling.
    pub fn new(check_mode: CheckMode) -> RegisterBank {
        RegisterBank {
            regions: Vec::new(),
            check_mode,
            access_delay: SimTime::from_ns(2),
        }
    }

    /// Adds a region (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one — peripheral maps are
    /// static and overlap is a programming error.
    pub fn region(mut self, name: &str, base: u64, words: usize, access: Access) -> RegisterBank {
        let new = Region {
            name: name.to_string(),
            base,
            words,
            access,
        };
        for r in &self.regions {
            let disjoint = new.end() <= r.base || r.end() <= new.base;
            assert!(disjoint, "region {:?} overlaps {:?}", new.name, r.name);
        }
        self.regions.push(new);
        self
    }

    /// Sets the per-transaction delay annotation.
    pub fn access_delay(mut self, delay: SimTime) -> RegisterBank {
        self.access_delay = delay;
        self
    }

    /// The configured regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The decode policy.
    pub fn check_mode(&self) -> CheckMode {
        self.check_mode
    }

    /// Looks a region up by name.
    pub fn region_index(&self, name: &str) -> Option<usize> {
        self.regions.iter().position(|r| r.name == name)
    }

    /// Routes one transaction through the decode, servicing word accesses
    /// through `model`. Sets the payload response and delay.
    ///
    /// Decode behavior (matching the RISC-V VP PLIC and the paper's
    /// findings):
    ///
    /// * misaligned address or length → assertion (F2) or
    ///   [`ResponseStatus::AddressError`];
    /// * no region containing the start address → assertion (F3) or
    ///   [`ResponseStatus::AddressError`];
    /// * write to a read-only region → assertion (F4) or
    ///   [`ResponseStatus::CommandError`];
    /// * region matched by start address but the transfer runs past its
    ///   end → out-of-bounds access (F5) or [`ResponseStatus::BurstError`].
    pub fn transport(
        &self,
        model: &mut dyn RegisterModel,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        payload: &mut GenericPayload,
    ) {
        payload.delay += self.access_delay;
        let addr = payload.address.clone();
        let len = payload.length.clone();

        // Alignment: the register file is word-granular.
        let three = ctx.word32(3);
        let zero = ctx.word32(0);
        let aligned = addr.and(&three).eq(&zero).and(&len.and(&three).eq(&zero));
        if ctx.decide(&aligned.not()) {
            match self.check_mode {
                CheckMode::Assert => {
                    panic!("assertion failed: TLM register access must be 4-byte aligned")
                }
                CheckMode::TlmError => {
                    payload.response = ResponseStatus::AddressError;
                    return;
                }
            }
        }

        // Region decode: fork per reachable mapping, matching on the start
        // address only (the original behavior that enables F5).
        let mut matched = None;
        for (i, region) in self.regions.iter().enumerate() {
            let base = ctx.word32(region.base as u32);
            let end = ctx.word32(region.end() as u32);
            let hit = addr.uge(&base).and(&addr.ult(&end));
            if ctx.decide(&hit) {
                matched = Some(i);
                break;
            }
        }
        let region_idx = match matched {
            Some(i) => i,
            None => match self.check_mode {
                CheckMode::Assert => {
                    panic!("assertion failed: no register mapping for TLM address")
                }
                CheckMode::TlmError => {
                    payload.response = ResponseStatus::AddressError;
                    return;
                }
            },
        };
        let region = &self.regions[region_idx];

        // Access rights.
        let violates = matches!(
            (payload.command, region.access),
            (Command::Write, Access::ReadOnly) | (Command::Read, Access::WriteOnly)
        );
        if violates {
            match self.check_mode {
                // One shared assert in the decode code = one bug (F4),
                // whichever register trips it.
                CheckMode::Assert => {
                    panic!("assertion failed: register does not allow this access mode")
                }
                CheckMode::TlmError => {
                    payload.response = ResponseStatus::CommandError;
                    return;
                }
            }
        }

        // Word loop over the (possibly symbolic) length.
        let base = ctx.word32(region.base as u32);
        let two = ctx.word32(2);
        let offset = addr.sub(&base).lshr(&two); // (addr - base) / 4
        let words_limit = ctx.word32(region.words as u32);
        let mut w = 0usize;
        loop {
            let pos = ctx.word32((w as u32) * 4);
            if !ctx.decide(&pos.ult(&len)) {
                break;
            }
            if w >= payload.data_words() {
                // The initiator's buffer is smaller than the requested
                // length: an initiator-side bug, reported as a burst error
                // in both modes (no memory is modeled past the buffer).
                payload.response = ResponseStatus::BurstError;
                return;
            }
            let idx = offset.add(&ctx.word32(w as u32));
            if ctx.decide(&idx.uge(&words_limit)) {
                match self.check_mode {
                    // Like F4: one shared unchecked copy = one bug (F5).
                    CheckMode::Assert => ctx.fail(
                        ErrorKind::OutOfBounds,
                        "TLM transaction runs past the register boundary".to_string(),
                    ),
                    CheckMode::TlmError => {
                        payload.response = ResponseStatus::BurstError;
                        return;
                    }
                }
            }
            match payload.command {
                Command::Read => {
                    let value = model.read_word(ctx, kernel, region_idx, &idx);
                    payload.set_word(w, value);
                }
                Command::Write => {
                    let value = payload.word(w).clone();
                    model.write_word(ctx, kernel, region_idx, &idx, &value);
                }
            }
            w += 1;
        }
        payload.response = ResponseStatus::Ok;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::{Explorer, SymArray, Width};

    /// A two-region scratch model: region 0 is RAM-like, region 1 is a
    /// read-only identity register.
    struct Scratch {
        ram: SymArray,
    }

    impl Scratch {
        fn new(ctx: &SymCtx) -> Scratch {
            Scratch {
                ram: SymArray::filled(ctx, 4, 0, Width::W32),
            }
        }
    }

    impl RegisterModel for Scratch {
        fn read_word(
            &mut self,
            ctx: &SymCtx,
            _kernel: &mut Kernel,
            region: usize,
            word_index: &SymWord,
        ) -> SymWord {
            match region {
                0 => self.ram.select(word_index),
                1 => ctx.word32(0xF00D),
                _ => unreachable!("unknown region"),
            }
        }

        fn write_word(
            &mut self,
            _ctx: &SymCtx,
            _kernel: &mut Kernel,
            region: usize,
            word_index: &SymWord,
            value: &SymWord,
        ) {
            assert_eq!(region, 0, "read-only region must never be written");
            self.ram.store(word_index, value);
        }
    }

    fn bank(mode: CheckMode) -> RegisterBank {
        RegisterBank::new(mode)
            .region("ram", 0x0, 4, Access::ReadWrite)
            .region("id", 0x100, 1, Access::ReadOnly)
    }

    #[test]
    fn concrete_read_write_round_trip() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);

            let mut wtxn = GenericPayload::write(ctx, ctx.word32(0x8), 4);
            wtxn.set_word(0, ctx.word32(77));
            b.transport(&mut model, ctx, &mut kernel, &mut wtxn);
            assert!(wtxn.response.is_ok());
            assert!(wtxn.delay > SimTime::ZERO);

            let mut rtxn = GenericPayload::read(ctx, ctx.word32(0x8), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut rtxn);
            assert!(rtxn.response.is_ok());
            ctx.check(&rtxn.word(0).eq(&ctx.word32(77)), "round trip");
        });
        assert!(report.passed());
    }

    #[test]
    fn multi_word_read() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            for i in 0..4u32 {
                let mut w = GenericPayload::write(ctx, ctx.word32(i * 4), 4);
                w.set_word(0, ctx.word32(i + 1));
                b.transport(&mut model, ctx, &mut kernel, &mut w);
            }
            let mut r = GenericPayload::read(ctx, ctx.word32(0), 16);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
            assert!(r.response.is_ok());
            for i in 0..4usize {
                ctx.check(&r.word(i).eq(&ctx.word32(i as u32 + 1)), "word i readback");
            }
        });
        assert!(report.passed());
    }

    #[test]
    fn misaligned_access_tlm_error_mode() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0x2), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
            assert_eq!(r.response, ResponseStatus::AddressError);
        });
    }

    #[test]
    fn misaligned_access_assert_mode_panics_the_model() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::Assert);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0x2), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
        });
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::ModelPanic);
        assert!(report.errors[0].message.contains("aligned"));
    }

    #[test]
    fn unmapped_address_is_address_error_or_assert() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0x2000), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
            assert_eq!(r.response, ResponseStatus::AddressError);
        });

        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::Assert);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0x2000), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
        });
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("no register mapping"));
    }

    #[test]
    fn write_to_read_only_region() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            let mut w = GenericPayload::write(ctx, ctx.word32(0x100), 4);
            b.transport(&mut model, ctx, &mut kernel, &mut w);
            assert_eq!(w.response, ResponseStatus::CommandError);
        });
    }

    #[test]
    fn overrun_is_burst_error_in_fixed_mode() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            // Start at the last RAM word but ask for 8 bytes.
            let mut r = GenericPayload::read(ctx, ctx.word32(0xC), 8);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
            assert_eq!(r.response, ResponseStatus::BurstError);
        });
    }

    #[test]
    fn overrun_is_out_of_bounds_in_faithful_mode() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::Assert);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0xC), 8);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
        });
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::OutOfBounds);
    }

    #[test]
    fn symbolic_address_forks_over_reachable_registers() {
        // A fully symbolic aligned in-range read must visit both regions
        // and the error paths — the decode shape KLEE explores in T4.
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            let addr = ctx.symbolic("addr", Width::W32);
            let mut r = GenericPayload::read(ctx, addr, 4);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
        });
        assert!(report.passed(), "fixed mode produces no errors");
        // Paths: misaligned, ram-hit, id-hit, unmapped (at least).
        assert!(
            report.stats.paths >= 4,
            "expected >= 4 decode paths, got {}",
            report.stats.paths
        );
    }

    #[test]
    fn symbolic_address_in_assert_mode_finds_all_decode_bugs() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::Assert);
            let mut model = Scratch::new(ctx);
            let addr = ctx.symbolic("addr", Width::W32);
            let len = ctx.symbolic("len", Width::W32);
            ctx.assume(&len.ule(&ctx.word32(8)));
            let mut r = GenericPayload::with_symbolic_length(ctx, Command::Read, addr, len, 8);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
        });
        let messages: Vec<&str> = report
            .distinct_errors()
            .iter()
            .map(|e| e.message.as_str())
            .collect();
        assert!(
            messages.iter().any(|m| m.contains("aligned")),
            "F2-like alignment bug found: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("no register mapping")),
            "F3-like decode bug found: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("boundary")),
            "F5-like overrun found: {messages:?}"
        );
    }

    #[test]
    fn zero_length_transaction_succeeds() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let b = bank(CheckMode::TlmError);
            let mut model = Scratch::new(ctx);
            let mut r = GenericPayload::read(ctx, ctx.word32(0), 0);
            b.transport(&mut model, ctx, &mut kernel, &mut r);
            assert!(r.response.is_ok());
        });
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_panic_at_build_time() {
        let _ = RegisterBank::new(CheckMode::TlmError)
            .region("a", 0x0, 4, Access::ReadWrite)
            .region("b", 0x8, 4, Access::ReadWrite);
    }
}

//! A bus-style TLM interconnect.
//!
//! The paper's platform context is a full virtual prototype where
//! initiators reach peripherals through memory-mapped interconnects
//! ("especially in bus-like memory mapped communication networks …
//! interactions can be initiated directly to a target port"). The
//! [`Router`] models exactly that: address-range decode to one of several
//! targets, subtracting the target's base so peripherals see local
//! offsets. Symbolic addresses fork across reachable targets, like the
//! register decode does within one peripheral.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::Kernel;
use symsc_symex::{SymCtx, SymWord};

use crate::payload::{GenericPayload, ResponseStatus};
use crate::transport::BlockingTransport;

struct RouterEntry {
    name: String,
    base: u64,
    size: u64,
    target: Rc<RefCell<dyn BlockingTransport>>,
}

impl std::fmt::Debug for RouterEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterEntry")
            .field("name", &self.name)
            .field("base", &format_args!("{:#x}", self.base))
            .field("size", &format_args!("{:#x}", self.size))
            .finish()
    }
}

/// Address-range decoder over multiple TLM targets.
///
/// # Example
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use symsc_pk::Kernel;
/// use symsc_symex::Explorer;
/// use symsc_tlm::{BlockingTransport, GenericPayload, ResponseStatus, Router};
/// # use symsc_symex::{SymCtx};
/// # struct Dummy;
/// # impl BlockingTransport for Dummy {
/// #     fn b_transport(&mut self, _c: &SymCtx, _k: &mut Kernel, p: &mut GenericPayload) {
/// #         p.response = ResponseStatus::Ok;
/// #     }
/// # }
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut kernel = Kernel::new();
///     let dev = Rc::new(RefCell::new(Dummy));
///     let mut bus = Router::new();
///     bus.map("dev", 0x1000_0000, 0x1000, dev);
///     let mut txn = GenericPayload::read(ctx, ctx.word32(0x1000_0004), 4);
///     bus.b_transport(ctx, &mut kernel, &mut txn);
///     assert!(txn.response.is_ok());
/// });
/// assert!(report.passed());
/// ```
#[derive(Debug, Default)]
pub struct Router {
    entries: Vec<RouterEntry>,
}

impl Router {
    /// An empty router; unmapped accesses answer
    /// [`ResponseStatus::AddressError`].
    pub fn new() -> Router {
        Router::default()
    }

    /// Maps `[base, base + size)` to `target`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing mapping (platform memory
    /// maps are static; overlap is a wiring error).
    pub fn map(
        &mut self,
        name: &str,
        base: u64,
        size: u64,
        target: Rc<RefCell<dyn BlockingTransport>>,
    ) -> &mut Router {
        assert!(size > 0, "mapping {name:?} must have a non-zero size");
        for e in &self.entries {
            let disjoint = base + size <= e.base || e.base + e.size <= base;
            assert!(disjoint, "mapping {name:?} overlaps {:?}", e.name);
        }
        self.entries.push(RouterEntry {
            name: name.to_string(),
            base,
            size,
            target,
        });
        self
    }

    /// Number of mapped targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the router has no mappings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The names of all mapped targets, in mapping order.
    pub fn target_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    fn decode(&self, ctx: &SymCtx, addr: &SymWord) -> Option<usize> {
        for (i, e) in self.entries.iter().enumerate() {
            let base = ctx.word32(e.base as u32);
            let end = ctx.word32((e.base + e.size) as u32);
            let hit = addr.uge(&base).and(&addr.ult(&end));
            if ctx.decide(&hit) {
                return Some(i);
            }
        }
        None
    }
}

impl BlockingTransport for Router {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        let global = payload.address.clone();
        match self.decode(ctx, &global) {
            None => payload.response = ResponseStatus::AddressError,
            Some(i) => {
                let entry = &self.entries[i];
                let base = ctx.word32(entry.base as u32);
                payload.address = global.sub(&base);
                entry.target.borrow_mut().b_transport(ctx, kernel, payload);
                payload.address = global;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Command;
    use symsc_symex::{Explorer, Width};

    /// Echoes the *local* address it saw back as data word 0.
    struct AddrEcho;

    impl BlockingTransport for AddrEcho {
        fn b_transport(
            &mut self,
            _ctx: &SymCtx,
            _kernel: &mut Kernel,
            payload: &mut GenericPayload,
        ) {
            payload.set_word(0, payload.address.clone());
            payload.response = ResponseStatus::Ok;
        }
    }

    fn two_device_bus() -> Router {
        let mut bus = Router::new();
        bus.map("a", 0x1000, 0x100, Rc::new(RefCell::new(AddrEcho)));
        bus.map("b", 0x2000, 0x100, Rc::new(RefCell::new(AddrEcho)));
        bus
    }

    #[test]
    fn routes_subtract_the_base_address() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut bus = two_device_bus();
            let mut txn = GenericPayload::read(ctx, ctx.word32(0x1010), 4);
            bus.b_transport(ctx, &mut kernel, &mut txn);
            assert!(txn.response.is_ok());
            ctx.check(
                &txn.word(0).eq(&ctx.word32(0x10)),
                "device sees local offset",
            );
            ctx.check(
                &txn.address.eq(&ctx.word32(0x1010)),
                "global address restored",
            );
        });
        assert!(report.passed());
    }

    #[test]
    fn unmapped_addresses_answer_address_error() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut bus = two_device_bus();
            let mut txn = GenericPayload::read(ctx, ctx.word32(0x5000), 4);
            bus.b_transport(ctx, &mut kernel, &mut txn);
            assert_eq!(txn.response, ResponseStatus::AddressError);
        });
    }

    #[test]
    fn symbolic_address_forks_across_targets() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut bus = two_device_bus();
            let addr = ctx.symbolic("addr", Width::W32);
            let mut txn =
                GenericPayload::with_symbolic_length(ctx, Command::Read, addr, ctx.word32(4), 4);
            bus.b_transport(ctx, &mut kernel, &mut txn);
        });
        assert!(report.passed());
        // device a, device b, unmapped: at least three decode paths.
        assert!(report.stats.paths >= 3, "paths = {}", report.stats.paths);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_mappings_panic() {
        let mut bus = Router::new();
        bus.map("a", 0x1000, 0x100, Rc::new(RefCell::new(AddrEcho)));
        bus.map("b", 0x10F0, 0x100, Rc::new(RefCell::new(AddrEcho)));
    }

    #[test]
    fn target_names_in_order() {
        let bus = two_device_bus();
        assert_eq!(bus.target_names(), ["a", "b"]);
        assert_eq!(bus.len(), 2);
        assert!(!bus.is_empty());
    }
}

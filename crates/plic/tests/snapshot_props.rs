//! Property tests for [`Plic::snapshot`] / [`Plic::restore`].
//!
//! Seeded random register-mutation sequences against the FE310 PLIC:
//!
//! 1. **Round trip is identity**: snapshot → arbitrary register writes →
//!    restore returns the peripheral to a state that is observationally
//!    identical — every pending bit, every deliverable-interrupt verdict.
//! 2. **Siblings never leak**: a snapshot (and any `clone` of it, which
//!    shares its copy-on-write storage) is immune to mutations made on
//!    the live peripheral after the capture.
//!
//! Everything runs concretely on a single path, so the symbolic register
//! words collapse to constants and states can be compared directly.

use symsc_pk::Kernel;
use symsc_plic::{Plic, PlicConfig, PlicVariant};
use symsc_rng::Rng;
use symsc_symex::{Explorer, SymCtx};

/// The PLIC's observable register state, fully concretized: pending bit
/// and deliverable verdict per source, plus the per-HART eip line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct View {
    pending: Vec<bool>,
    deliverable: u64,
    eip: bool,
}

fn view(plic: &Plic, sources: u32) -> View {
    View {
        pending: (1..=sources)
            .map(|irq| plic.pending_bit(irq).as_const().expect("concrete pending"))
            .collect(),
        deliverable: plic
            .next_deliverable()
            .as_const()
            .expect("concrete deliverable"),
        eip: plic.hart_eip(),
    }
}

/// One random register mutation through the public surface.
fn mutate(rng: &mut Rng, ctx: &SymCtx, kernel: &mut Kernel, plic: &Plic, sources: u32) {
    match rng.gen_range_inclusive(0, 9) {
        0..=3 => {
            let irq = rng.gen_range_inclusive(1, u64::from(sources)) as u32;
            let prio = rng.gen_range_inclusive(0, 7) as u32;
            plic.set_priority(ctx, irq, prio);
        }
        4..=6 => {
            let irq = rng.gen_range_inclusive(1, u64::from(sources));
            plic.trigger_interrupt(ctx, kernel, &ctx.word32(irq as u32));
        }
        7..=8 => {
            let t = rng.gen_range_inclusive(0, 7) as u32;
            plic.set_threshold(ctx.word32(t));
        }
        _ => {
            plic.enable_all_sources(ctx);
        }
    }
}

fn small_config() -> PlicConfig {
    // Few sources keep the per-step view extraction cheap; the Fixed
    // variant never panics on concrete in-range stimulus.
    PlicConfig::small().variant(PlicVariant::Fixed)
}

#[test]
fn snapshot_mutate_restore_is_identity() {
    let report = Explorer::new().max_paths(1).explore(|ctx| {
        let mut rng = Rng::seed_from_u64(0x911C_5EED);
        for case in 0..24 {
            let mut kernel = Kernel::new();
            let config = small_config();
            let sources = config.sources;
            let plic = Plic::new(ctx, &mut kernel, config);
            plic.enable_all_sources(ctx);

            // Random prefix, then capture.
            for _ in 0..rng.gen_range_inclusive(0, 8) {
                mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            }
            let snap = plic.snapshot();
            let at_capture = view(&plic, sources);

            // Random mutation storm, then restore: identity.
            for _ in 0..rng.gen_range_inclusive(1, 16) {
                mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            }
            plic.restore(&snap);
            assert_eq!(
                view(&plic, sources),
                at_capture,
                "case {case}: restore did not return to the capture point"
            );

            // Restore is repeatable: the snapshot is not consumed.
            mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            plic.restore(&snap);
            assert_eq!(
                view(&plic, sources),
                at_capture,
                "case {case}: second restore diverged"
            );
        }
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn sibling_snapshots_are_isolated_from_later_mutation() {
    let report = Explorer::new().max_paths(1).explore(|ctx| {
        let mut rng = Rng::seed_from_u64(0x15_0BAD);
        for case in 0..24 {
            let mut kernel = Kernel::new();
            let config = small_config();
            let sources = config.sources;
            let plic = Plic::new(ctx, &mut kernel, config);
            plic.enable_all_sources(ctx);
            for _ in 0..rng.gen_range_inclusive(0, 8) {
                mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            }

            // Two captures of the same state sharing storage via clone.
            let left = plic.snapshot();
            let right = left.clone();
            let at_capture = view(&plic, sources);

            // Mutate the live peripheral; the captures must not move.
            for _ in 0..rng.gen_range_inclusive(1, 16) {
                mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            }
            plic.restore(&left);
            assert_eq!(
                view(&plic, sources),
                at_capture,
                "case {case}: left snapshot observed a later mutation"
            );

            // Mutate after restoring `left`: the *sibling* capture that
            // shares its chunks must still restore to the capture point.
            for _ in 0..rng.gen_range_inclusive(1, 16) {
                mutate(&mut rng, ctx, &mut kernel, &plic, sources);
            }
            plic.restore(&right);
            assert_eq!(
                view(&plic, sources),
                at_capture,
                "case {case}: sibling snapshot observed a later mutation"
            );
        }
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn restore_rejects_foreign_topology() {
    let report = Explorer::new().max_paths(1).explore(|ctx| {
        let mut kernel_a = Kernel::new();
        let plic_a = Plic::new(ctx, &mut kernel_a, small_config());
        let snap = plic_a.snapshot();
        let mut kernel_b = Kernel::new();
        let plic_b = Plic::new(
            ctx,
            &mut kernel_b,
            PlicConfig::fe310_scaled().variant(PlicVariant::Fixed),
        );
        plic_b.restore(&snap); // panics: source counts differ
    });
    // The model panic is captured as a path error with the assert text.
    assert_eq!(report.errors.len(), 1);
    assert!(
        report.errors[0].message.contains("topology mismatch"),
        "unexpected error: {}",
        report.errors[0].message
    );
}

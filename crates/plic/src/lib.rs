//! # symsc-plic — the RISC-V Platform-Level Interrupt Controller (DUV)
//!
//! A faithful Rust port of the FE310 PLIC TLM peripheral from the
//! open-source RISC-V VP — the device under verification of the reproduced
//! paper. The FE310 configuration is one HART, 51 interrupt sources and 32
//! priority levels.
//!
//! ## Register map (the paper's Fig. 1)
//!
//! | offset       | register                     | access |
//! |--------------|------------------------------|--------|
//! | `0x0000_0004`| `priority[1..=51]`           | RW     |
//! | `0x0000_1000`| `pending` bitmap (2 words)   | RO     |
//! | `0x0000_2000`| `enable` bitmap (2 words)    | RW     |
//! | `0x0020_0000`| `threshold` (HART 0)         | RW     |
//! | `0x0020_0004`| `claim_response` (HART 0)    | RW     |
//!
//! Functionality lives in the `run()` SystemC thread — here the
//! [`RunThread`](process::RunThread) written in the paper's *translated*
//! FSM form (its Fig. 4) — synchronized through the `e_run` event, which
//! [`Plic::trigger_interrupt`] notifies when a new interrupt arrives.
//!
//! ## Bugs, on purpose
//!
//! [`PlicVariant::Faithful`] reproduces the six real bugs the paper found
//! (F1–F6); [`PlicVariant::Fixed`] is the repaired model. On top of either,
//! one of the paper's six injected faults ([`InjectedFault`], IF1–IF6) can
//! be enabled to reproduce the fault-injection study of its Table 2. See
//! the crate's `config` module for the precise bug inventory.
//!
//! The crate also contains an independent executable [`reference`](mod@reference) model
//! (claim-order oracle) used by property tests, and a CLINT-style
//! [`timer`](clint) peripheral demonstrating the approach on a second IP
//! block (the paper's future-work item).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clint;
pub mod config;
pub mod mutation;
pub mod plic;
pub mod process;
pub mod reference;
pub mod state;
pub mod uart;

pub use clint::Clint;
pub use config::{InjectedFault, PlicConfig, PlicVariant};
pub use mutation::{Mutation, MutationOp, ThresholdCmp};
pub use plic::{InterruptTarget, Plic, PlicSnapshot};
pub use reference::ReferencePlic;
pub use uart::Uart;

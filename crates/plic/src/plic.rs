//! The PLIC module façade: construction, the interrupt gateway, and the
//! TLM register interface.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::Kernel;
use symsc_symex::{StateDigest, SymArray, SymCtx, SymWord, Width};
use symsc_tlm::{
    Access, BlockingTransport, CheckMode, GenericPayload, RegisterBank, RegisterModel,
};

use crate::config::{
    PlicConfig, PlicVariant, CLAIM_BASE, CONTEXT_STRIDE, ENABLE_BASE, ENABLE_STRIDE, PENDING_BASE,
    PRIORITY_BASE, THRESHOLD_BASE,
};
use crate::process::RunThread;
use crate::state::PlicState;

/// The HART side of the interrupt line: what the PLIC notifies when an
/// external interrupt becomes deliverable (`trigger_external_interrupt()`
/// in the VP).
pub trait InterruptTarget {
    /// Called by the PLIC's `run` thread when it raises the external
    /// interrupt pending signal toward this HART.
    fn trigger_external_interrupt(&mut self);
}

/// What a register region decodes to (regions are per HART where the
/// architecture says so).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionKind {
    Priority,
    Pending,
    Enable(usize),
    Threshold(usize),
    Claim(usize),
}

/// The Platform-Level Interrupt Controller TLM peripheral.
///
/// # Example
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use symsc_pk::Kernel;
/// use symsc_plic::{Plic, PlicConfig, PlicVariant, InterruptTarget};
/// use symsc_symex::Explorer;
///
/// struct Hart { triggered: bool }
/// impl InterruptTarget for Hart {
///     fn trigger_external_interrupt(&mut self) { self.triggered = true; }
/// }
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut kernel = Kernel::new();
///     let plic = Plic::new(ctx, &mut kernel, PlicConfig::fe310().variant(PlicVariant::Fixed));
///     let hart = Rc::new(RefCell::new(Hart { triggered: false }));
///     plic.connect_hart(hart.clone());
///     kernel.step(); // initialization
///
///     plic.enable_all_sources(ctx);
///     plic.set_priority(ctx, 5, 3);
///     plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(5));
///     kernel.step(); // deliver
///     assert!(hart.borrow().triggered);
/// });
/// assert!(report.passed());
/// ```
pub struct Plic {
    state: Rc<RefCell<PlicState>>,
    bank: RegisterBank,
    kinds: Vec<RegionKind>,
}

impl std::fmt::Debug for Plic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plic")
            .field("state", &*self.state.borrow())
            .finish()
    }
}

impl Plic {
    /// Instantiates the PLIC: builds the register map, creates the `e_run`
    /// event and spawns the translated `run` thread on `kernel`.
    pub fn new(ctx: &SymCtx, kernel: &mut Kernel, config: PlicConfig) -> Plic {
        let e_run = kernel.create_event("plic.e_run");
        let state = Rc::new(RefCell::new(PlicState::new(ctx, config, e_run)));
        kernel.spawn("plic.run", RunThread::new(state.clone()));

        let check_mode = match config.variant {
            PlicVariant::Faithful => CheckMode::Assert,
            PlicVariant::Fixed => CheckMode::TlmError,
        };
        let words = config.bitmap_words();
        let mut bank = RegisterBank::new(check_mode)
            .region(
                "interrupt_priorities",
                PRIORITY_BASE,
                config.sources as usize,
                Access::ReadWrite,
            )
            .region("pending_interrupts", PENDING_BASE, words, Access::ReadOnly);
        let mut kinds = vec![RegionKind::Priority, RegionKind::Pending];
        for hart in 0..config.harts as usize {
            bank = bank.region(
                &format!("enabled_interrupts_hart{hart}"),
                ENABLE_BASE + hart as u64 * ENABLE_STRIDE,
                words,
                Access::ReadWrite,
            );
            kinds.push(RegionKind::Enable(hart));
        }
        for hart in 0..config.harts as usize {
            let ctx_base = hart as u64 * CONTEXT_STRIDE;
            bank = bank
                .region(
                    &format!("priority_threshold_hart{hart}"),
                    THRESHOLD_BASE + ctx_base,
                    1,
                    Access::ReadWrite,
                )
                .region(
                    &format!("claim_response_hart{hart}"),
                    CLAIM_BASE + ctx_base,
                    1,
                    Access::ReadWrite,
                );
            kinds.push(RegionKind::Threshold(hart));
            kinds.push(RegionKind::Claim(hart));
        }

        Plic { state, bank, kinds }
    }

    /// The static configuration.
    pub fn config(&self) -> PlicConfig {
        self.state.borrow().config
    }

    /// The register decode (exposed for examples that print the map).
    pub fn bank(&self) -> &RegisterBank {
        &self.bank
    }

    /// Connects HART 0's interrupt line (the FE310 convenience).
    pub fn connect_hart(&self, target: Rc<RefCell<dyn InterruptTarget>>) {
        self.connect_hart_n(0, target);
    }

    /// Connects the interrupt line of HART `hart`.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range for the configuration.
    pub fn connect_hart_n(&self, hart: usize, target: Rc<RefCell<dyn InterruptTarget>>) {
        self.state.borrow_mut().targets[hart] = Some(target);
    }

    /// The interrupt gateway (custom interface function of the paper's
    /// testbenches): an external source raises interrupt `irq`.
    pub fn trigger_interrupt(&self, _ctx: &SymCtx, kernel: &mut Kernel, irq: &SymWord) {
        self.state.borrow_mut().gateway_trigger(kernel, irq);
    }

    /// Whether the external-interrupt-pending flag toward HART 0 is up.
    pub fn hart_eip(&self) -> bool {
        self.hart_eip_n(0)
    }

    /// Whether the external-interrupt-pending flag toward `hart` is up.
    pub fn hart_eip_n(&self, hart: usize) -> bool {
        self.state.borrow().hart_eip[hart]
    }

    /// Testbench convenience: enable every source for every HART.
    pub fn enable_all_sources(&self, ctx: &SymCtx) {
        let st = &mut *self.state.borrow_mut();
        for hart in 0..st.config.harts as usize {
            for flag in 0..st.enabled[hart].len() {
                st.enabled[hart].set(flag, ctx.word(1, Width::W1));
            }
        }
    }

    /// Testbench convenience: set `priority[irq]` directly (concrete id).
    ///
    /// # Panics
    ///
    /// Panics if `irq` is out of range.
    pub fn set_priority(&self, ctx: &SymCtx, irq: u32, priority: u32) {
        let st = &mut *self.state.borrow_mut();
        assert!(
            irq >= 1 && irq <= st.config.sources,
            "set_priority: id {irq} out of range"
        );
        st.priorities.set(irq as usize, ctx.word32(priority));
    }

    /// Testbench convenience: set `priority[irq]` to a symbolic value.
    pub fn set_priority_symbolic(&self, irq: &SymWord, priority: &SymWord) {
        let st = &mut *self.state.borrow_mut();
        st.priorities.store(irq, priority);
    }

    /// Testbench convenience: set the HART-0 threshold.
    pub fn set_threshold(&self, threshold: SymWord) {
        self.set_threshold_n(0, threshold);
    }

    /// Testbench convenience: set the threshold of `hart`.
    pub fn set_threshold_n(&self, hart: usize, threshold: SymWord) {
        self.state.borrow_mut().threshold[hart] = threshold;
    }

    /// Direct view of the pending bit of a concrete id (for assertions).
    pub fn pending_bit(&self, irq: u32) -> symsc_symex::SymBool {
        self.state.borrow().pending_bit(irq)
    }

    /// The pending bit of a symbolic id (for assertions on symbolic
    /// stimulus, e.g. the paper's T1).
    pub fn pending_bit_symbolic(&self, irq: &SymWord) -> symsc_symex::SymBool {
        self.state.borrow().pending_bit_symbolic(irq)
    }

    /// The best interrupt deliverable to HART 0 right now (id 0 if none);
    /// exposed for oracle-based property tests.
    pub fn next_deliverable(&self) -> SymWord {
        self.next_deliverable_n(0)
    }

    /// The best interrupt deliverable to `hart` right now (id 0 if none).
    pub fn next_deliverable_n(&self, hart: usize) -> SymWord {
        self.state.borrow().next_pending_interrupt(hart, true)
    }

    /// Captures the register state — priorities, pending and enable
    /// bitmaps, thresholds, `hart_eip` lines — as a cheap snapshot. The
    /// bitmaps are [`SymArray`]s backed by copy-on-write chunked storage,
    /// so the capture (and any clone of it) is a handful of Arc bumps; a
    /// post-snapshot register write copies only the chunk it lands in.
    pub fn snapshot(&self) -> PlicSnapshot {
        let st = self.state.borrow();
        PlicSnapshot {
            priorities: st.priorities.clone(),
            pending: st.pending.clone(),
            enabled: st.enabled.clone(),
            threshold: st.threshold.clone(),
            hart_eip: st.hart_eip.clone(),
        }
    }

    /// Restores the register state captured by
    /// [`snapshot`](Plic::snapshot). Writes made after the snapshot are
    /// discarded; sibling snapshots taken from the same state are never
    /// affected (each holds its own copy-on-write view).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot comes from a PLIC with a different
    /// source/HART topology.
    pub fn restore(&self, snapshot: &PlicSnapshot) {
        let mut st = self.state.borrow_mut();
        assert_eq!(
            snapshot.priorities.len(),
            st.priorities.len(),
            "snapshot topology mismatch: source count differs"
        );
        assert_eq!(
            snapshot.threshold.len(),
            st.threshold.len(),
            "snapshot topology mismatch: HART count differs"
        );
        st.priorities = snapshot.priorities.clone();
        st.pending = snapshot.pending.clone();
        st.enabled = snapshot.enabled.clone();
        st.threshold = snapshot.threshold.clone();
        st.hart_eip = snapshot.hart_eip.clone();
    }

    /// A structural digest of the live register state, for publication at
    /// exploration join points via
    /// [`SymCtx::note_state`](symsc_symex::SymCtx::note_state): two PLIC
    /// states share a mark exactly when every register term is
    /// structurally identical (see [`PlicSnapshot::structural_hash`]).
    pub fn state_mark(&self) -> u64 {
        self.snapshot().structural_hash()
    }
}

/// An immutable capture of a [`Plic`]'s register state.
///
/// Produced by [`Plic::snapshot`]; consumed by [`Plic::restore`]. Both
/// the capture and `clone` cost O(chunks) Arc bumps — the symbolic
/// register words themselves are never deep-copied — so a path engine
/// can hold one snapshot per pending fork.
#[derive(Clone, Debug)]
pub struct PlicSnapshot {
    priorities: SymArray,
    pending: SymArray,
    enabled: Vec<SymArray>,
    threshold: Vec<SymWord>,
    hart_eip: Vec<bool>,
}

impl PlicSnapshot {
    /// A structural hash of the captured register state: a pure function
    /// of the register terms' structure (not of term ids or path
    /// history), so two snapshots hash equal exactly when
    /// [`deep_equals`](PlicSnapshot::deep_equals) holds. O(registers)
    /// fingerprint folds — no solver call, no deep term walk beyond the
    /// memoized per-term fingerprints.
    pub fn structural_hash(&self) -> u64 {
        let mut digest = StateDigest::new();
        self.priorities.fold_digest(&mut digest);
        self.pending.fold_digest(&mut digest);
        digest.push_u64(self.enabled.len() as u64);
        for map in &self.enabled {
            map.fold_digest(&mut digest);
        }
        digest.push_u64(self.threshold.len() as u64);
        for threshold in &self.threshold {
            digest.push(threshold.fingerprint());
        }
        digest.push_u64(self.hart_eip.len() as u64);
        for &eip in &self.hart_eip {
            digest.push_u64(u64::from(eip));
        }
        digest.finish()
    }

    /// Register-by-register structural equality: the naive comparator the
    /// hash summarizes. Used by the property tests to pin
    /// [`structural_hash`](PlicSnapshot::structural_hash) against ground
    /// truth.
    pub fn deep_equals(&self, other: &PlicSnapshot) -> bool {
        fn arrays_equal(a: &SymArray, b: &SymArray) -> bool {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.fingerprint() == y.fingerprint())
        }
        arrays_equal(&self.priorities, &other.priorities)
            && arrays_equal(&self.pending, &other.pending)
            && self.enabled.len() == other.enabled.len()
            && self
                .enabled
                .iter()
                .zip(&other.enabled)
                .all(|(a, b)| arrays_equal(a, b))
            && self.threshold.len() == other.threshold.len()
            && self
                .threshold
                .iter()
                .zip(&other.threshold)
                .all(|(a, b)| a.fingerprint() == b.fingerprint())
            && self.hart_eip == other.hart_eip
    }
}

/// The word-level register backend: routes decoded accesses to the PLIC
/// state, including the claim/complete side effects.
struct PlicRegs {
    state: Rc<RefCell<PlicState>>,
    kinds: Vec<RegionKind>,
}

impl RegisterModel for PlicRegs {
    fn read_word(
        &mut self,
        ctx: &SymCtx,
        _kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
    ) -> SymWord {
        let st = &mut *self.state.borrow_mut();
        match self.kinds[region] {
            RegionKind::Priority => {
                // word w holds priority[w + 1]
                let one = ctx.word32(1);
                let irq = word_index.add(&one);
                st.priorities.select(&irq)
            }
            RegionKind::Pending => st.bitmap_register_word(&st.pending.clone(), word_index),
            RegionKind::Enable(hart) => {
                st.bitmap_register_word(&st.enabled[hart].clone(), word_index)
            }
            RegionKind::Threshold(hart) => st.threshold[hart].clone(),
            RegionKind::Claim(hart) => st.claim(hart),
        }
    }

    fn write_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
        value: &SymWord,
    ) {
        let st = &mut *self.state.borrow_mut();
        match self.kinds[region] {
            RegionKind::Priority => {
                let one = ctx.word32(1);
                let irq = word_index.add(&one);
                st.priorities.store(&irq, value);
            }
            RegionKind::Pending => unreachable!("pending region is read-only"),
            RegionKind::Enable(hart) => {
                let config = st.config;
                let mut map = st.enabled[hart].clone();
                crate::state::PlicState::bitmap_register_write(
                    &mut map, &config, word_index, value, ctx,
                );
                st.enabled[hart] = map;
            }
            RegionKind::Threshold(hart) => st.threshold[hart] = value.clone(),
            RegionKind::Claim(hart) => st.complete(kernel, hart, value),
        }
    }
}

impl BlockingTransport for Plic {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        let mut regs = PlicRegs {
            state: self.state.clone(),
            kinds: self.kinds.clone(),
        };
        self.bank.transport(&mut regs, ctx, kernel, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_pk::SimTime;
    use symsc_symex::{Explorer, Width};
    use symsc_tlm::{Command, ResponseStatus};

    struct Hart {
        triggered: u32,
    }

    impl InterruptTarget for Hart {
        fn trigger_external_interrupt(&mut self) {
            self.triggered += 1;
        }
    }

    fn fixed() -> PlicConfig {
        PlicConfig::fe310().variant(PlicVariant::Fixed)
    }

    fn read_reg(
        ctx: &SymCtx,
        kernel: &mut Kernel,
        plic: &mut Plic,
        addr: u32,
    ) -> (SymWord, ResponseStatus) {
        let mut p = GenericPayload::read(ctx, ctx.word32(addr), 4);
        plic.b_transport(ctx, kernel, &mut p);
        let status = p.response;
        (p.word(0).clone(), status)
    }

    fn write_reg(
        ctx: &SymCtx,
        kernel: &mut Kernel,
        plic: &mut Plic,
        addr: u32,
        value: &SymWord,
    ) -> ResponseStatus {
        let mut p = GenericPayload::write(ctx, ctx.word32(addr), 4);
        p.set_word(0, value.clone());
        plic.b_transport(ctx, kernel, &mut p);
        p.response
    }

    #[test]
    fn register_map_round_trips() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            kernel.step();

            // priority[5] at 0x4 + 4*(5-1) = 0x14
            let st = write_reg(ctx, &mut kernel, &mut plic, 0x14, &ctx.word32(3));
            assert!(st.is_ok());
            let (v, st) = read_reg(ctx, &mut kernel, &mut plic, 0x14);
            assert!(st.is_ok());
            ctx.check(&v.eq(&ctx.word32(3)), "priority[5] readback");

            // enable word 0 at 0x2000
            let st = write_reg(ctx, &mut kernel, &mut plic, 0x2000, &ctx.word32(0xFF));
            assert!(st.is_ok());
            let (v, _) = read_reg(ctx, &mut kernel, &mut plic, 0x2000);
            ctx.check(&v.eq(&ctx.word32(0xFF)), "enable readback");

            // threshold at 0x20_0000
            let st = write_reg(ctx, &mut kernel, &mut plic, 0x20_0000, &ctx.word32(2));
            assert!(st.is_ok());
            let (v, _) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0000);
            ctx.check(&v.eq(&ctx.word32(2)), "threshold readback");
        });
        assert!(report.passed());
    }

    #[test]
    fn pending_region_is_read_only() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            kernel.step();
            let st = write_reg(ctx, &mut kernel, &mut plic, 0x1000, &ctx.word32(1));
            assert_eq!(st, ResponseStatus::CommandError);
        });
    }

    #[test]
    fn full_interrupt_life_cycle() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            let hart = Rc::new(RefCell::new(Hart { triggered: 0 }));
            plic.connect_hart(hart.clone());
            kernel.step(); // init

            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 9, 4);
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(9));
            assert_eq!(hart.borrow().triggered, 0, "not before the clock edge");
            kernel.step(); // e_run fires one cycle later
            assert_eq!(hart.borrow().triggered, 1);
            assert!(plic.hart_eip());

            // Claim: read 0x20_0004.
            let (claimed, st) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0004);
            assert!(st.is_ok());
            ctx.check(&claimed.eq(&ctx.word32(9)), "claims irq 9");
            ctx.check(&plic.pending_bit(9).not(), "pending cleared by claim");

            // Complete: write the id back.
            let st = write_reg(ctx, &mut kernel, &mut plic, 0x20_0004, &claimed);
            assert!(st.is_ok());
            assert!(!plic.hart_eip());

            // No further interrupt: the re-trigger finds nothing.
            kernel.step();
            assert_eq!(hart.borrow().triggered, 1);
        });
        assert!(report.passed(), "life cycle must be clean: {report}");
    }

    #[test]
    fn retrigger_after_complete_delivers_second_interrupt() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            let hart = Rc::new(RefCell::new(Hart { triggered: 0 }));
            plic.connect_hart(hart.clone());
            kernel.step();

            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 3, 5);
            plic.set_priority(ctx, 8, 2);
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(3));
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(8));
            kernel.step();
            assert_eq!(hart.borrow().triggered, 1);

            // Claim returns the higher-priority irq 3.
            let (first, _) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0004);
            ctx.check(&first.eq(&ctx.word32(3)), "higher priority first");
            write_reg(ctx, &mut kernel, &mut plic, 0x20_0004, &first);

            // The completion re-notifies e_run; irq 8 is still pending.
            kernel.step();
            assert_eq!(hart.borrow().triggered, 2, "second delivery");
            let (second, _) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0004);
            ctx.check(&second.eq(&ctx.word32(8)), "then the lower one");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn eip_suppresses_retrigger_until_complete() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let plic = Plic::new(ctx, &mut kernel, fixed());
            let hart = Rc::new(RefCell::new(Hart { triggered: 0 }));
            plic.connect_hart(hart.clone());
            kernel.step();

            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 2, 1);
            plic.set_priority(ctx, 4, 1);
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(2));
            kernel.step();
            assert_eq!(hart.borrow().triggered, 1);
            // A second interrupt while eip is raised must not re-trigger.
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(4));
            kernel.step();
            assert_eq!(hart.borrow().triggered, 1, "suppressed while eip");
        });
        assert!(report.passed());
    }

    #[test]
    fn transaction_accumulates_delay() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            kernel.step();
            let mut p = GenericPayload::read(ctx, ctx.word32(0x1000), 4);
            assert_eq!(p.delay, SimTime::ZERO);
            plic.b_transport(ctx, &mut kernel, &mut p);
            assert!(p.delay > SimTime::ZERO, "TLM timing annotation");
        });
    }

    #[test]
    fn symbolic_priority_write_reaches_symbolic_slot() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            kernel.step();
            let irq = ctx.symbolic("irq", Width::W32);
            ctx.assume(&irq.uge(&ctx.word32(1)));
            ctx.assume(&irq.ule(&ctx.word32(51)));
            // priority[irq] lives at 4 * irq.
            let four = ctx.word32(4);
            let addr = irq.mul(&four);
            let mut p = GenericPayload::write(ctx, addr.clone(), 4);
            p.set_word(0, ctx.word32(6));
            plic.b_transport(ctx, &mut kernel, &mut p);
            assert_eq!(p.response, ResponseStatus::Ok);
            let mut r = GenericPayload::read(ctx, addr, 4);
            plic.b_transport(ctx, &mut kernel, &mut r);
            ctx.check(&r.word(0).eq(&ctx.word32(6)), "symbolic slot readback");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn claim_read_before_thread_runs_is_safe_in_both_variants() {
        // The F6 race is on the *write*; a claim read straight after
        // trigger returns the pending id in both variants.
        for variant in [PlicVariant::Faithful, PlicVariant::Fixed] {
            let report = Explorer::new().explore(move |ctx| {
                let mut kernel = Kernel::new();
                let cfg = PlicConfig::fe310().variant(variant);
                let mut plic = Plic::new(ctx, &mut kernel, cfg);
                kernel.step();
                plic.enable_all_sources(ctx);
                plic.set_priority(ctx, 6, 1);
                plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(6));
                // No kernel.step(): the PLIC thread has not run yet.
                let (claimed, st) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0004);
                assert!(st.is_ok());
                ctx.check(&claimed.eq(&ctx.word32(6)), "claimable before delivery");
            });
            assert!(report.passed(), "variant {variant:?}: {report}");
        }
    }

    #[test]
    fn f6_race_write_before_thread_runs() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, PlicConfig::fe310());
            kernel.step();
            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 6, 1);
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(6));
            // Completion write racing ahead of the PLIC thread: F6.
            write_reg(ctx, &mut kernel, &mut plic, 0x20_0004, &ctx.word32(6));
        });
        assert_eq!(report.distinct_errors().len(), 1);
        assert!(report.errors[0]
            .message
            .contains("without external interrupt in flight"));
    }

    #[test]
    fn misaligned_access_faithful_vs_fixed() {
        // Faithful: assertion (F2). Fixed: AddressError.
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, PlicConfig::fe310());
            kernel.step();
            let mut p = GenericPayload::read(ctx, ctx.word32(0x6), 4);
            plic.b_transport(ctx, &mut kernel, &mut p);
        });
        assert_eq!(report.distinct_errors().len(), 1);

        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut plic = Plic::new(ctx, &mut kernel, fixed());
            kernel.step();
            let mut p = GenericPayload::read(ctx, ctx.word32(0x6), 4);
            plic.b_transport(ctx, &mut kernel, &mut p);
            assert_eq!(p.response, ResponseStatus::AddressError);
        });
    }

    #[test]
    fn write_command_enum_is_exposed() {
        // Guard against accidental API regressions used by testbenches.
        assert_ne!(Command::Read, Command::Write);
    }

    // ----- multi-HART -----

    #[test]
    fn two_harts_deliver_and_claim_independently() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let cfg = fixed().harts(2);
            let mut plic = Plic::new(ctx, &mut kernel, cfg);
            let h0 = Rc::new(RefCell::new(Hart { triggered: 0 }));
            let h1 = Rc::new(RefCell::new(Hart { triggered: 0 }));
            plic.connect_hart_n(0, h0.clone());
            plic.connect_hart_n(1, h1.clone());
            kernel.step();

            // Enable irq 3 only for hart 0 and irq 5 only for hart 1,
            // through the real per-hart enable registers.
            plic.set_priority(ctx, 3, 1);
            plic.set_priority(ctx, 5, 1);
            write_reg(ctx, &mut kernel, &mut plic, 0x2000, &ctx.word32(1 << 3));
            write_reg(ctx, &mut kernel, &mut plic, 0x2080, &ctx.word32(1 << 5));

            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(3));
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(5));
            kernel.step();
            assert_eq!(h0.borrow().triggered, 1, "hart 0 notified");
            assert_eq!(h1.borrow().triggered, 1, "hart 1 notified");

            // Each hart claims its own enabled interrupt.
            let (c0, _) = read_reg(ctx, &mut kernel, &mut plic, 0x20_0004);
            ctx.check(&c0.eq(&ctx.word32(3)), "hart 0 claims irq 3");
            let (c1, _) = read_reg(ctx, &mut kernel, &mut plic, 0x20_1004);
            ctx.check(&c1.eq(&ctx.word32(5)), "hart 1 claims irq 5");

            // Completion is per hart too.
            write_reg(ctx, &mut kernel, &mut plic, 0x20_0004, &c0);
            assert!(!plic.hart_eip_n(0));
            assert!(plic.hart_eip_n(1), "hart 1 still in flight");
            write_reg(ctx, &mut kernel, &mut plic, 0x20_1004, &c1);
            assert!(!plic.hart_eip_n(1));
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn per_hart_thresholds_mask_independently() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let cfg = fixed().harts(2);
            let plic = Plic::new(ctx, &mut kernel, cfg);
            let h0 = Rc::new(RefCell::new(Hart { triggered: 0 }));
            let h1 = Rc::new(RefCell::new(Hart { triggered: 0 }));
            plic.connect_hart_n(0, h0.clone());
            plic.connect_hart_n(1, h1.clone());
            kernel.step();

            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 4, 2);
            plic.set_threshold_n(1, ctx.word32(5)); // masks priority 2
            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(4));
            kernel.step();
            assert_eq!(h0.borrow().triggered, 1, "hart 0 delivered");
            assert_eq!(h1.borrow().triggered, 0, "hart 1 masked");
        });
        assert!(report.passed(), "{report}");
    }
}

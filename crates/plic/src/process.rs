//! The PLIC `run` thread in translated (FSM) form — the paper's Fig. 4.
//!
//! The original SystemC thread (Fig. 3) is:
//!
//! ```c++
//! void run() {
//!     while (true) {
//!         wait(e_run);                                   // context switch
//!         for (unsigned i = 0; i < NumberCores; ++i) {
//!             if (!hart_eip[i]) {
//!                 if (hart_has_pending_enabled_interrupts(i)) {
//!                     hart_eip[i] = true;
//!                     target_harts[i]->trigger_external_interrupt();
//!                 }
//!             }
//!         }
//!     }
//! }
//! ```
//!
//! The paper's translation replaces the `wait` with a label/`goto` FSM and
//! `static` locals. [`RunThread`] is that translation expressed in safe
//! Rust: the `position` label is an enum field, the "statics" are the
//! shared [`PlicState`], and each `resume` call executes from the last
//! label to the next `wait`, which it *returns* as a [`Suspend`] request.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Process, ProcessCtx, Suspend};

use crate::state::PlicState;

/// The FSM label — the paper's `enum class Label { init, lbl1 }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// First activation: fall through to the first `wait(e_run)`.
    Init,
    /// Resumption point after `wait(e_run)`: run the loop body once.
    Lbl1,
}

/// The translated `run` process of the PLIC.
#[derive(Debug)]
pub struct RunThread {
    state: Rc<RefCell<PlicState>>,
    position: Label,
}

impl RunThread {
    /// Creates the thread over the shared PLIC state.
    pub fn new(state: Rc<RefCell<PlicState>>) -> RunThread {
        RunThread {
            state,
            position: Label::Init,
        }
    }

    /// The current FSM label (exposed for tests).
    pub fn position(&self) -> Label {
        self.position
    }
}

impl Process for RunThread {
    fn resume(&mut self, _ctx: &mut ProcessCtx<'_>) -> Suspend {
        // --[ header ]-- dispatch on the saved position.
        match self.position {
            Label::Init => {
                // First execution reaches the top of the while(true) loop
                // and immediately waits for e_run.
            }
            Label::Lbl1 => {
                // --[ body ]-- the unmodified logic of the original thread.
                self.state.borrow_mut().run_body();
            }
        }
        // context-switch transformation: save the position, then "wait".
        self.position = Label::Lbl1;
        let e_run = self.state.borrow().e_run;
        Suspend::WaitEvent(e_run)
    }
}

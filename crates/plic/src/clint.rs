//! A CLINT-style core-local interruptor (timer peripheral).
//!
//! The paper's future work proposes applying the approach "beyond TLM
//! peripherals ... for verification of other SystemC IP components". This
//! module is that extension: a second, independent peripheral built on the
//! same PK + TLM + symbolic stack — a simplified SiFive CLINT with a
//! software-interrupt register and a 64-bit timer compare.
//!
//! Register map (word-granular subset of the real CLINT):
//!
//! | offset   | register      | access |
//! |----------|---------------|--------|
//! | `0x0000` | `msip`        | RW     |
//! | `0x4000` | `mtimecmp` lo | RW     |
//! | `0x4004` | `mtimecmp` hi | RW     |
//! | `0xBFF8` | `mtime` lo    | RO     |
//! | `0xBFFC` | `mtime` hi    | RO     |
//!
//! `mtime` ticks once per nanosecond of simulated time. Writing `mtimecmp`
//! schedules a timer interrupt at the compare point; the comparator runs
//! as a PK process woken through an `sc_event`, mirroring the PLIC's
//! structure. `mtimecmp` writes are concretized (KLEE-style) because they
//! feed the kernel's concrete time arithmetic.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Event, Kernel, NotifyKind, Process, ProcessCtx, SimTime, Suspend};
use symsc_symex::{SymCtx, SymWord};
use symsc_tlm::{
    Access, BlockingTransport, CheckMode, GenericPayload, RegisterBank, RegisterModel,
};

use crate::plic::InterruptTarget;

const REGION_MSIP: usize = 0;
const REGION_MTIMECMP: usize = 1;
const REGION_MTIME: usize = 2;

/// Byte offset of `msip`.
pub const MSIP_BASE: u64 = 0x0000;
/// Byte offset of `mtimecmp` (lo word; hi at +4).
pub const MTIMECMP_BASE: u64 = 0x4000;
/// Byte offset of `mtime` (lo word; hi at +4).
pub const MTIME_BASE: u64 = 0xBFF8;

struct ClintState {
    ctx: SymCtx,
    e_cmp: Event,
    /// Concretized compare point, in mtime ticks (nanoseconds).
    mtimecmp: u64,
    msip: SymWord,
    timer_armed: bool,
    timer_target: Option<Rc<RefCell<dyn InterruptTarget>>>,
    software_target: Option<Rc<RefCell<dyn InterruptTarget>>>,
}

impl ClintState {
    fn mtime_now(kernel: &Kernel) -> u64 {
        kernel.time().as_ns()
    }

    /// (Re)arms the comparator event for the current `mtimecmp`.
    fn arm(&mut self, kernel: &mut Kernel) {
        let now = Self::mtime_now(kernel);
        self.timer_armed = true;
        if self.mtimecmp <= now {
            kernel.notify(self.e_cmp, NotifyKind::Delta);
        } else {
            let delay = SimTime::from_ns(self.mtimecmp - now);
            // An earlier pending notification would win; cancel first so a
            // re-written (later) mtimecmp reschedules correctly.
            kernel.cancel(self.e_cmp);
            kernel.notify(self.e_cmp, NotifyKind::Timed(delay));
        }
    }
}

/// The comparator process, in translated FSM form like the PLIC's
/// [`RunThread`](crate::process::RunThread).
struct CompareThread {
    state: Rc<RefCell<ClintState>>,
    started: bool,
}

impl Process for CompareThread {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_>) -> Suspend {
        let e_cmp = self.state.borrow().e_cmp;
        if !self.started {
            self.started = true;
            return Suspend::WaitEvent(e_cmp);
        }
        let mut st = self.state.borrow_mut();
        if !st.timer_armed {
            return Suspend::WaitEvent(e_cmp);
        }
        let now = ctx.time().as_ns();
        if now >= st.mtimecmp {
            st.timer_armed = false;
            if let Some(target) = &st.timer_target {
                target.borrow_mut().trigger_external_interrupt();
            }
        } else {
            // Spurious wake (mtimecmp moved later): re-arm.
            let delay = SimTime::from_ns(st.mtimecmp - now);
            ctx.notify(e_cmp, NotifyKind::Timed(delay));
        }
        Suspend::WaitEvent(e_cmp)
    }
}

/// The CLINT peripheral.
///
/// # Example
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use symsc_pk::{Kernel, SimTime};
/// use symsc_plic::{Clint, InterruptTarget};
/// use symsc_symex::Explorer;
///
/// struct Hart { timer_fired: bool }
/// impl InterruptTarget for Hart {
///     fn trigger_external_interrupt(&mut self) { self.timer_fired = true; }
/// }
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut kernel = Kernel::new();
///     let clint = Clint::new(ctx, &mut kernel);
///     let hart = Rc::new(RefCell::new(Hart { timer_fired: false }));
///     clint.connect_timer(hart.clone());
///     kernel.step();
///     clint.write_mtimecmp(&mut kernel, 100); // fire at mtime = 100 (ns)
///     kernel.run_until(SimTime::from_ns(100));
///     assert!(hart.borrow().timer_fired);
/// });
/// assert!(report.passed());
/// ```
pub struct Clint {
    state: Rc<RefCell<ClintState>>,
    bank: RegisterBank,
}

impl std::fmt::Debug for Clint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Clint")
            .field("mtimecmp", &st.mtimecmp)
            .field("timer_armed", &st.timer_armed)
            .finish()
    }
}

impl Clint {
    /// Instantiates the CLINT and spawns its comparator process.
    pub fn new(ctx: &SymCtx, kernel: &mut Kernel) -> Clint {
        let e_cmp = kernel.create_event("clint.e_cmp");
        let state = Rc::new(RefCell::new(ClintState {
            ctx: ctx.clone(),
            e_cmp,
            mtimecmp: u64::MAX,
            msip: ctx.word32(0),
            timer_armed: false,
            timer_target: None,
            software_target: None,
        }));
        kernel.spawn(
            "clint.compare",
            CompareThread {
                state: state.clone(),
                started: false,
            },
        );
        let bank = RegisterBank::new(CheckMode::TlmError)
            .region("msip", MSIP_BASE, 1, Access::ReadWrite)
            .region("mtimecmp", MTIMECMP_BASE, 2, Access::ReadWrite)
            .region("mtime", MTIME_BASE, 2, Access::ReadOnly);
        Clint { state, bank }
    }

    /// Connects the timer-interrupt line.
    pub fn connect_timer(&self, target: Rc<RefCell<dyn InterruptTarget>>) {
        self.state.borrow_mut().timer_target = Some(target);
    }

    /// Connects the software-interrupt line (`msip`).
    pub fn connect_software(&self, target: Rc<RefCell<dyn InterruptTarget>>) {
        self.state.borrow_mut().software_target = Some(target);
    }

    /// Convenience: set the 64-bit compare value directly.
    pub fn write_mtimecmp(&self, kernel: &mut Kernel, ticks: u64) {
        let mut st = self.state.borrow_mut();
        st.mtimecmp = ticks;
        st.arm(kernel);
    }

    /// The current `mtime` value (ticks = nanoseconds of simulated time).
    pub fn mtime(&self, kernel: &Kernel) -> u64 {
        ClintState::mtime_now(kernel)
    }
}

struct ClintRegs {
    state: Rc<RefCell<ClintState>>,
}

impl RegisterModel for ClintRegs {
    fn read_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
    ) -> SymWord {
        let st = self.state.borrow();
        match region {
            REGION_MSIP => st.msip.clone(),
            REGION_MTIMECMP => {
                let lo = ctx.word32(st.mtimecmp as u32);
                let hi = ctx.word32((st.mtimecmp >> 32) as u32);
                let zero = ctx.word32(0);
                let is_lo = word_index.eq(&zero);
                lo.select(&is_lo, &hi)
            }
            REGION_MTIME => {
                let now = ClintState::mtime_now(kernel);
                let lo = ctx.word32(now as u32);
                let hi = ctx.word32((now >> 32) as u32);
                let zero = ctx.word32(0);
                let is_lo = word_index.eq(&zero);
                lo.select(&is_lo, &hi)
            }
            _ => unreachable!("unknown CLINT region {region}"),
        }
    }

    fn write_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        word_index: &SymWord,
        value: &SymWord,
    ) {
        let mut st = self.state.borrow_mut();
        match region {
            REGION_MSIP => {
                st.msip = value.clone();
                let one = ctx.word32(1);
                let raised = value.and(&one).eq(&one);
                if st.ctx.decide(&raised) {
                    if let Some(target) = &st.software_target {
                        target.borrow_mut().trigger_external_interrupt();
                    }
                }
            }
            REGION_MTIMECMP => {
                // Timer compare feeds concrete kernel time: concretize.
                let v = value.concretize();
                let zero = ctx.word32(0);
                let is_lo = word_index.eq(&zero);
                if st.ctx.decide(&is_lo) {
                    st.mtimecmp = (st.mtimecmp & !0xFFFF_FFFF) | v;
                } else {
                    st.mtimecmp = (st.mtimecmp & 0xFFFF_FFFF) | (v << 32);
                }
                st.arm(kernel);
            }
            REGION_MTIME => unreachable!("mtime is read-only"),
            _ => unreachable!("unknown CLINT region {region}"),
        }
    }
}

impl BlockingTransport for Clint {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        let mut regs = ClintRegs {
            state: self.state.clone(),
        };
        self.bank.transport(&mut regs, ctx, kernel, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::Explorer;
    use symsc_tlm::ResponseStatus;

    struct Hart {
        fired: u32,
    }
    impl InterruptTarget for Hart {
        fn trigger_external_interrupt(&mut self) {
            self.fired += 1;
        }
    }

    #[test]
    fn timer_fires_at_compare_point() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let clint = Clint::new(ctx, &mut kernel);
            let hart = Rc::new(RefCell::new(Hart { fired: 0 }));
            clint.connect_timer(hart.clone());
            kernel.step();
            clint.write_mtimecmp(&mut kernel, 50);
            kernel.run_until(SimTime::from_ns(49));
            assert_eq!(hart.borrow().fired, 0, "not before the deadline");
            kernel.run_until(SimTime::from_ns(51));
            assert_eq!(hart.borrow().fired, 1);
        });
        assert!(report.passed());
    }

    #[test]
    fn rewriting_mtimecmp_later_reschedules() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let clint = Clint::new(ctx, &mut kernel);
            let hart = Rc::new(RefCell::new(Hart { fired: 0 }));
            clint.connect_timer(hart.clone());
            kernel.step();
            clint.write_mtimecmp(&mut kernel, 20);
            clint.write_mtimecmp(&mut kernel, 200);
            kernel.run_until(SimTime::from_ns(100));
            assert_eq!(hart.borrow().fired, 0, "pushed out to 200");
            kernel.run_until(SimTime::from_ns(201));
            assert_eq!(hart.borrow().fired, 1);
        });
        assert!(report.passed());
    }

    #[test]
    fn compare_in_the_past_fires_immediately() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let clint = Clint::new(ctx, &mut kernel);
            let hart = Rc::new(RefCell::new(Hart { fired: 0 }));
            clint.connect_timer(hart.clone());
            kernel.step();
            kernel.run_until(SimTime::from_ns(10));
            clint.write_mtimecmp(&mut kernel, 5); // already past
            kernel.step();
            assert_eq!(hart.borrow().fired, 1);
            assert_eq!(kernel.time(), SimTime::from_ns(10), "no time needed");
        });
        assert!(report.passed());
    }

    #[test]
    fn msip_write_raises_software_interrupt() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut clint = Clint::new(ctx, &mut kernel);
            let hart = Rc::new(RefCell::new(Hart { fired: 0 }));
            clint.connect_software(hart.clone());
            kernel.step();
            let mut p = GenericPayload::write(ctx, ctx.word32(0), 4);
            p.set_word(0, ctx.word32(1));
            clint.b_transport(ctx, &mut kernel, &mut p);
            assert!(p.response.is_ok());
            assert_eq!(hart.borrow().fired, 1);
        });
        assert!(report.passed());
    }

    #[test]
    fn mtime_reads_track_simulated_time() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut clint = Clint::new(ctx, &mut kernel);
            let hart = Rc::new(RefCell::new(Hart { fired: 0 }));
            clint.connect_timer(hart.clone());
            kernel.step();
            clint.write_mtimecmp(&mut kernel, 30);
            kernel.run_until(SimTime::from_ns(30));
            let mut p = GenericPayload::read(ctx, ctx.word32(MTIME_BASE as u32), 4);
            clint.b_transport(ctx, &mut kernel, &mut p);
            assert!(p.response.is_ok());
            ctx.check(&p.word(0).eq(&ctx.word32(30)), "mtime lo == 30");
        });
        assert!(report.passed());
    }

    #[test]
    fn mtime_is_read_only() {
        Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut clint = Clint::new(ctx, &mut kernel);
            kernel.step();
            let mut p = GenericPayload::write(ctx, ctx.word32(MTIME_BASE as u32), 4);
            p.set_word(0, ctx.word32(1));
            clint.b_transport(ctx, &mut kernel, &mut p);
            assert_eq!(p.response, ResponseStatus::CommandError);
        });
    }
}

//! PLIC configuration: variants, injected faults and the memory map.

use symsc_pk::SimTime;

use crate::mutation::MutationOp;

/// Byte offset of `priority[1]`; `priority[i]` lives at `4 * i`.
pub const PRIORITY_BASE: u64 = 0x0000_0004;
/// Byte offset of the pending-interrupt bitmap.
pub const PENDING_BASE: u64 = 0x0000_1000;
/// Byte offset of the HART-0 enable bitmap; HART `h` at
/// `ENABLE_BASE + h * ENABLE_STRIDE`.
pub const ENABLE_BASE: u64 = 0x0000_2000;
/// Stride between per-HART enable blocks.
pub const ENABLE_STRIDE: u64 = 0x80;
/// Byte offset of the HART-0 priority threshold; HART `h` at
/// `THRESHOLD_BASE + h * CONTEXT_STRIDE`.
pub const THRESHOLD_BASE: u64 = 0x0020_0000;
/// Byte offset of the HART-0 claim/response register; HART `h` at
/// `CLAIM_BASE + h * CONTEXT_STRIDE`.
pub const CLAIM_BASE: u64 = 0x0020_0004;
/// Stride between per-HART threshold/claim context blocks.
pub const CONTEXT_STRIDE: u64 = 0x1000;

/// Which edition of the PLIC source to model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlicVariant {
    /// The original RISC-V VP code, including the six real bugs the paper
    /// found:
    ///
    /// * **F1** — `trigger_interrupt` *asserts* that the interrupt id is
    ///   valid instead of returning an error; invalid ids abort the model.
    /// * **F2** — misaligned TLM register accesses fail an assertion
    ///   instead of returning `TLM_ADDRESS_ERROR`.
    /// * **F3** — addresses with no register mapping fail an assertion
    ///   instead of returning `TLM_ADDRESS_ERROR`.
    /// * **F4** — writes to read-only registers fail an assertion instead
    ///   of returning `TLM_COMMAND_ERROR`.
    /// * **F5** — a transaction whose start address matches a register is
    ///   accepted even when its length runs past the register boundary,
    ///   producing an out-of-bounds copy.
    /// * **F6** — the claim/response *write* callback asserts that an
    ///   external interrupt is in flight (`hart_eip`); a completion racing
    ///   ahead of the PLIC thread (trigger → write before the thread is
    ///   scheduled) fails the assertion.
    #[default]
    Faithful,
    /// The repaired model: invalid gateway ids are ignored, decode
    /// violations produce TLM error responses, boundary overruns return
    /// `TLM_BURST_ERROR`, and a completion without a pending external
    /// interrupt is tolerated.
    Fixed,
}

/// The paper's six injected faults (§5.3), each a one-line mutation of the
/// PLIC. They are usually injected into [`PlicVariant::Fixed`] so that the
/// original bugs do not mask them.
///
/// Each fault is now a named *preset* over the open mutation registry:
/// [`InjectedFault::op`] maps it to the [`MutationOp`] the model hooks
/// consult, and arbitrary further mutants are expressed as other operator
/// parameterizations (see the `mutation` module and the `symsc-mutate`
/// crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InjectedFault {
    /// **IF1** — off-by-one in the gateway's id bound (`<=` instead of
    /// `<`), letting id `sources + 1` overflow the pending array.
    If1OffByOneGateway,
    /// **IF2** — interrupts with id 13 set their pending bit but the
    /// `e_run` notification is dropped.
    If2DropNotifyId13,
    /// **IF3** — completion does not re-notify `e_run`, so a second
    /// simultaneously pending interrupt is never delivered.
    If3SkipRetrigger,
    /// **IF4** — the gateway delays `e_run` ten times longer for high
    /// interrupt ids (above 32 in the FE310 configuration; above
    /// `sources / 2` for scaled-down configurations) — a timing-model
    /// error.
    If4LateNotifyHighIds,
    /// **IF5** — clearing pending interrupt 7 returns early, leaving the
    /// bit set.
    If5EarlyClearReturn,
    /// **IF6** — the eligibility check compares `priority >= threshold`
    /// instead of strictly greater.
    If6ThresholdOffByOne,
}

impl InjectedFault {
    /// All six faults, in paper order.
    pub const ALL: [InjectedFault; 6] = [
        InjectedFault::If1OffByOneGateway,
        InjectedFault::If2DropNotifyId13,
        InjectedFault::If3SkipRetrigger,
        InjectedFault::If4LateNotifyHighIds,
        InjectedFault::If5EarlyClearReturn,
        InjectedFault::If6ThresholdOffByOne,
    ];

    /// The paper's label for this fault ("IF1" … "IF6").
    pub fn label(self) -> &'static str {
        match self {
            InjectedFault::If1OffByOneGateway => "IF1",
            InjectedFault::If2DropNotifyId13 => "IF2",
            InjectedFault::If3SkipRetrigger => "IF3",
            InjectedFault::If4LateNotifyHighIds => "IF4",
            InjectedFault::If5EarlyClearReturn => "IF5",
            InjectedFault::If6ThresholdOffByOne => "IF6",
        }
    }
}

/// Static configuration of a PLIC instance.
///
/// # Example
///
/// ```
/// use symsc_plic::{PlicConfig, PlicVariant};
/// let cfg = PlicConfig::fe310();
/// assert_eq!(cfg.sources, 51);
/// assert_eq!(cfg.max_priority, 32);
/// assert_eq!(cfg.variant, PlicVariant::Faithful);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlicConfig {
    /// Number of HARTs (interrupt targets). The FE310 has one.
    pub harts: u32,
    /// Number of interrupt sources (valid ids are `1..=sources`).
    pub sources: u32,
    /// Highest priority level (0 disables a source).
    pub max_priority: u32,
    /// Faithful (buggy) or fixed model.
    pub variant: PlicVariant,
    /// At most one active mutation operator (first-order mutation). The
    /// paper's IF1–IF6 arrive here through [`PlicConfig::fault`]; the
    /// mutation engine injects arbitrary operators through
    /// [`PlicConfig::mutate`].
    pub mutation: Option<MutationOp>,
    /// Gateway-to-delivery latency: the delay of the `e_run` notification
    /// issued by `trigger_interrupt` (one clock cycle in the VP).
    pub clock_cycle: SimTime,
}

impl PlicConfig {
    /// The FE310 configuration used throughout the paper's evaluation:
    /// one HART, 51 interrupt sources, 32 priority levels.
    pub fn fe310() -> PlicConfig {
        PlicConfig {
            harts: 1,
            sources: 51,
            max_priority: 32,
            variant: PlicVariant::Faithful,
            mutation: None,
            clock_cycle: SimTime::from_ns(10),
        }
    }

    /// A small configuration (8 sources) for fast unit tests and the
    /// quickstart example.
    pub fn small() -> PlicConfig {
        PlicConfig {
            sources: 8,
            max_priority: 7,
            ..PlicConfig::fe310()
        }
    }

    /// Sets the number of HARTs (builder style).
    pub fn harts(mut self, harts: u32) -> PlicConfig {
        assert!(harts >= 1, "a PLIC needs at least one HART");
        self.harts = harts;
        self
    }

    /// Sets the variant (builder style).
    pub fn variant(mut self, variant: PlicVariant) -> PlicConfig {
        self.variant = variant;
        self
    }

    /// Injects one of the paper's named faults (builder style) — sugar
    /// for [`mutate`](Self::mutate) with the preset's operator.
    pub fn fault(self, fault: InjectedFault) -> PlicConfig {
        self.mutate(fault.op())
    }

    /// Activates an arbitrary mutation operator (builder style). At most
    /// one operator is active; a later call replaces the earlier one.
    pub fn mutate(mut self, op: MutationOp) -> PlicConfig {
        self.mutation = Some(op);
        self
    }

    /// Whether a given named fault preset is active.
    pub fn has_fault(&self, fault: InjectedFault) -> bool {
        self.mutation == Some(fault.op())
    }

    /// Number of 32-bit words in the pending/enable bitmaps
    /// (ids `0..=sources` → `ceil((sources + 1) / 32)`).
    pub fn bitmap_words(&self) -> usize {
        (self.sources as usize + 1).div_ceil(32)
    }

    /// The id boundary above which IF4 stretches the delivery latency:
    /// 32 as in the paper when the configuration has more than 32
    /// sources, half the sources otherwise (so the fault stays observable
    /// in scaled-down test configurations).
    pub fn if4_boundary(&self) -> u32 {
        if self.sources > 32 {
            32
        } else {
            self.sources / 2
        }
    }

    /// A shape-preserving scaled-down FE310 (16 sources, 8 priority
    /// levels) for fast debug-mode unit testing. All twelve bugs remain
    /// expressible and the Table 1 pass/fail pattern is unchanged.
    pub fn fe310_scaled() -> PlicConfig {
        PlicConfig {
            sources: 16,
            max_priority: 8,
            ..PlicConfig::fe310()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fe310_matches_the_paper_footnote() {
        let c = PlicConfig::fe310();
        assert_eq!(c.sources, 51);
        assert_eq!(c.max_priority, 32);
        assert_eq!(c.bitmap_words(), 2);
        assert!(c.mutation.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = PlicConfig::fe310()
            .variant(PlicVariant::Fixed)
            .fault(InjectedFault::If3SkipRetrigger);
        assert_eq!(c.variant, PlicVariant::Fixed);
        assert!(c.has_fault(InjectedFault::If3SkipRetrigger));
        assert!(!c.has_fault(InjectedFault::If1OffByOneGateway));
    }

    #[test]
    fn bitmap_words_rounds_up() {
        let mut c = PlicConfig::small();
        assert_eq!(c.bitmap_words(), 1); // ids 0..=8 → 9 bits
        c.sources = 31;
        assert_eq!(c.bitmap_words(), 1); // ids 0..=31 → 32 bits
        c.sources = 32;
        assert_eq!(c.bitmap_words(), 2); // ids 0..=32 → 33 bits
    }

    #[test]
    fn fault_labels() {
        let labels: Vec<&str> = InjectedFault::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels, ["IF1", "IF2", "IF3", "IF4", "IF5", "IF6"]);
    }

    #[test]
    fn fault_presets_resolve_to_operators() {
        let c = PlicConfig::fe310().fault(InjectedFault::If2DropNotifyId13);
        assert_eq!(c.mutation, Some(MutationOp::DropNotifyForId(13)));
        assert!(c.has_fault(InjectedFault::If2DropNotifyId13));
        // A non-preset parameterization of the same family is NOT the
        // preset, even though it shares the operator shape.
        let c = PlicConfig::fe310().mutate(MutationOp::DropNotifyForId(9));
        assert!(!c.has_fault(InjectedFault::If2DropNotifyId13));
    }

    #[test]
    fn mutate_replaces_the_previous_operator() {
        let c = PlicConfig::fe310()
            .fault(InjectedFault::If3SkipRetrigger)
            .mutate(MutationOp::ClaimSkipsClear);
        assert_eq!(c.mutation, Some(MutationOp::ClaimSkipsClear));
        assert!(!c.has_fault(InjectedFault::If3SkipRetrigger));
    }

    #[test]
    fn fe310_scaled_preserves_the_fe310_shape() {
        let c = PlicConfig::fe310_scaled();
        assert_eq!(c.harts, 1);
        assert_eq!(c.sources, 16);
        assert_eq!(c.max_priority, 8);
        assert_eq!(c.variant, PlicVariant::Faithful);
        assert!(c.mutation.is_none());
        assert_eq!(c.clock_cycle, PlicConfig::fe310().clock_cycle);
        // Scaled ids 0..=16 fit one bitmap word (the FE310 needs two).
        assert_eq!(c.bitmap_words(), 1);
    }

    #[test]
    fn if4_boundary_edge_cases() {
        // Degenerate single-source PLIC: boundary 0 means *every* valid
        // id (just id 1) is "high" — the fault stays observable.
        let mut c = PlicConfig::fe310();
        c.sources = 1;
        assert_eq!(c.if4_boundary(), 0);
        assert_eq!(c.bitmap_words(), 1);

        // Word-boundary configurations: exactly 32 sources still uses the
        // scaled rule (sources / 2); 33 is the first "large" config that
        // pins the paper's literal boundary of 32.
        c.sources = 32;
        assert_eq!(c.if4_boundary(), 16);
        assert_eq!(c.bitmap_words(), 2, "ids 0..=32 straddle the word");
        c.sources = 33;
        assert_eq!(c.if4_boundary(), 32);
        assert_eq!(c.bitmap_words(), 2);

        // The reference configurations.
        assert_eq!(PlicConfig::fe310().if4_boundary(), 32);
        assert_eq!(PlicConfig::fe310_scaled().if4_boundary(), 8);
        assert_eq!(PlicConfig::small().if4_boundary(), 4);
    }

    #[test]
    fn max_priority_config_keeps_boundary_semantics() {
        // A max-priority variant of the scaled config: the IF4 boundary
        // depends only on the source count, never on priority levels.
        let mut c = PlicConfig::fe310_scaled();
        c.max_priority = u32::MAX;
        assert_eq!(c.if4_boundary(), 8);
        let preset = c.fault(InjectedFault::If4LateNotifyHighIds);
        assert_eq!(
            preset.mutation,
            Some(MutationOp::LateNotifyAboveBoundary {
                boundary: None,
                factor: 10
            })
        );
    }
}

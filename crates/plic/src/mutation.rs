//! The open mutation registry for the PLIC model.
//!
//! The paper's fault-injection study (§5.3) hard-codes six mutations,
//! IF1–IF6. This module generalizes them into parameterized first-order
//! mutation *operators* ([`MutationOp`]) consulted by hooks inside
//! [`PlicState`](crate::state::PlicState): off-by-one bounds, dropped or
//! duplicated notifications, boundary shifts, comparison flavors, stuck
//! register bits, swapped tie-breaks and skipped cleanups. A mutation
//! engine (the `symsc-mutate` crate) sweeps the parameters to derive
//! dozens of mutants; the original IF1–IF6 remain available as named
//! presets via [`InjectedFault`], which now merely selects an operator.
//!
//! `MutationOp` is `Copy` on purpose: [`PlicConfig`](crate::PlicConfig)
//! carries at most one operator and stays `Copy`, so testbench closures
//! keep capturing their configuration by value (`Fn + Send + Sync`).

use crate::config::InjectedFault;

/// Flavor of the delivery-eligibility threshold comparison
/// (`priority <op> threshold`). The correct PLIC behavior is
/// [`Strict`](ThresholdCmp::Strict).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ThresholdCmp {
    /// `priority > threshold` — the architected rule.
    Strict,
    /// `priority >= threshold` — the paper's IF6 off-by-one.
    OrEqual,
    /// The threshold is ignored entirely (always passes).
    AlwaysPass,
    /// Nothing ever passes the threshold (delivery is dead).
    NeverPass,
}

/// A first-order mutation of the PLIC model.
///
/// Each operator is a parameterized family of one-line code changes; the
/// hooks in `PlicState` consult the active operator at the corresponding
/// program point. At most one operator is active per configuration
/// (first-order mutation testing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// The gateway accepts ids `1..=sources + delta` instead of
    /// `1..=sources`. `+1` is the paper's IF1; negative deltas silently
    /// drop the highest ids.
    GatewayBoundOffset(i32),
    /// The gateway sets the pending bit but drops the `e_run`
    /// notification when the id equals the parameter. Id 13 is the
    /// paper's IF2 (the completion-side re-trigger is lost for the id as
    /// well, matching the original fault).
    DropNotifyForId(u32),
    /// The gateway issues the `e_run` notification twice. Expected to be
    /// an *equivalent* mutant: the kernel's notification override rules
    /// make the duplicate a no-op.
    DuplicateNotify,
    /// Completion never re-notifies `e_run` — the paper's IF3.
    SkipRetrigger,
    /// The gateway stretches the notification delay by `factor` for ids
    /// strictly above `boundary` (`None` resolves to the configuration's
    /// [`if4_boundary`](crate::PlicConfig::if4_boundary), which with
    /// factor 10 is the paper's IF4).
    LateNotifyAboveBoundary {
        /// Id boundary; `None` uses the configuration default.
        boundary: Option<u32>,
        /// Delay multiplier for ids above the boundary.
        factor: u32,
    },
    /// Clearing the pending bit returns early for the given id, leaving
    /// the bit set. Id 7 is the paper's IF5.
    EarlyClearReturnForId(u32),
    /// Replaces the delivery-eligibility threshold comparison.
    /// [`ThresholdCmp::OrEqual`] is the paper's IF6.
    ThresholdCompare(ThresholdCmp),
    /// Priority ties select the *highest* eligible id instead of the
    /// lowest (the RISC-V rule inverted).
    TieBreakHighestId,
    /// The given bit of every priority register reads as zero (a stuck-
    /// at-0 register bit in the selection datapath).
    StuckPriorityBit(u8),
    /// The enable bit of the given source reads as always set (stuck-
    /// at-1), regardless of what was programmed.
    StuckEnableForId(u32),
    /// A claim returns the best pending interrupt but does not clear its
    /// pending bit.
    ClaimSkipsClear,
    /// Completion leaves the `hart_eip` flag set, so the HART never
    /// receives another external interrupt.
    CompleteKeepsEip,
}

/// A named mutation: anything that can deliver a [`MutationOp`] plus
/// human-readable identification. Implemented by the [`InjectedFault`]
/// presets and by the generated mutants of the `symsc-mutate` engine; the
/// kill-matrix harness works with `&dyn Mutation` rows.
pub trait Mutation {
    /// Short unique identifier (e.g. `"IF2"` or `"drop_notify_7"`).
    fn name(&self) -> String;
    /// One-line description of the seeded defect.
    fn description(&self) -> String;
    /// The operator to activate in the PLIC model.
    fn op(&self) -> MutationOp;
}

impl InjectedFault {
    /// The mutation operator this preset selects.
    pub fn op(self) -> MutationOp {
        match self {
            InjectedFault::If1OffByOneGateway => MutationOp::GatewayBoundOffset(1),
            InjectedFault::If2DropNotifyId13 => MutationOp::DropNotifyForId(13),
            InjectedFault::If3SkipRetrigger => MutationOp::SkipRetrigger,
            InjectedFault::If4LateNotifyHighIds => MutationOp::LateNotifyAboveBoundary {
                boundary: None,
                factor: 10,
            },
            InjectedFault::If5EarlyClearReturn => MutationOp::EarlyClearReturnForId(7),
            InjectedFault::If6ThresholdOffByOne => {
                MutationOp::ThresholdCompare(ThresholdCmp::OrEqual)
            }
        }
    }
}

impl Mutation for InjectedFault {
    fn name(&self) -> String {
        self.label().to_string()
    }

    fn description(&self) -> String {
        let text = match self {
            InjectedFault::If1OffByOneGateway => {
                "off-by-one in the gateway id bound (<= instead of <)"
            }
            InjectedFault::If2DropNotifyId13 => "e_run notification dropped for interrupt id 13",
            InjectedFault::If3SkipRetrigger => "completion does not re-notify e_run",
            InjectedFault::If4LateNotifyHighIds => "10x delivery latency for high interrupt ids",
            InjectedFault::If5EarlyClearReturn => "clear_pending returns early for id 7",
            InjectedFault::If6ThresholdOffByOne => "threshold comparison >= instead of >",
        };
        text.to_string()
    }

    fn op(&self) -> MutationOp {
        InjectedFault::op(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_map_to_distinct_operators() {
        let ops: Vec<MutationOp> = InjectedFault::ALL.iter().map(|f| f.op()).collect();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a, b, "preset operators must be distinct");
            }
        }
    }

    #[test]
    fn preset_trait_surfaces_paper_labels() {
        let f = InjectedFault::If4LateNotifyHighIds;
        assert_eq!(Mutation::name(&f), "IF4");
        assert!(f.description().contains("latency"));
        assert_eq!(
            Mutation::op(&f),
            MutationOp::LateNotifyAboveBoundary {
                boundary: None,
                factor: 10
            }
        );
    }
}

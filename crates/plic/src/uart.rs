//! A SiFive-style UART TLM peripheral (third IP block).
//!
//! Extends the case study beyond the interrupt controller (the paper's
//! future work): a transmit path with an 8-entry FIFO drained by a PK
//! process at a programmable rate, and a watermark interrupt — the
//! register interface of the FE310 UART, word-granular subset:
//!
//! | offset | register | access | layout |
//! |--------|----------|--------|--------|
//! | 0x00   | `txdata` | RW     | write: enqueue byte; read: bit 31 = FIFO full |
//! | 0x08   | `txctrl` | RW     | bit 0 = txen, bits 18:16 = watermark |
//! | 0x10   | `ie`     | RW     | bit 0 = txwm interrupt enable |
//! | 0x14   | `ip`     | RO     | bit 0 = txwm pending (level < watermark) |
//! | 0x18   | `div`    | RW     | baud divisor (cycles per byte) |
//!
//! The transmit FIFO level is *concrete* per path (it changes only through
//! writes and the drain process), while the configuration registers may be
//! symbolic — the same split the PLIC uses (`hart_eip` concrete, registers
//! symbolic).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use symsc_pk::{Event, Kernel, NotifyKind, Process, ProcessCtx, SimTime, Suspend};
use symsc_symex::{SymCtx, SymWord, Width};
use symsc_tlm::{
    Access, BlockingTransport, CheckMode, GenericPayload, RegisterBank, RegisterModel,
};

use crate::plic::InterruptTarget;

/// Transmit FIFO capacity (the FE310's is 8 entries).
pub const TX_FIFO_DEPTH: usize = 8;

/// Byte offset of `txdata`.
pub const TXDATA: u64 = 0x00;
/// Byte offset of `txctrl`.
pub const TXCTRL: u64 = 0x08;
/// Byte offset of `ie`.
pub const IE: u64 = 0x10;
/// Byte offset of `ip`.
pub const IP: u64 = 0x14;
/// Byte offset of `div`.
pub const DIV: u64 = 0x18;

const REGION_TXDATA: usize = 0;
const REGION_TXCTRL: usize = 1;
const REGION_IE: usize = 2;
const REGION_IP: usize = 3;
const REGION_DIV: usize = 4;

struct UartState {
    ctx: SymCtx,
    e_tx: Event,
    /// Transmitted bytes, in order (observable by testbenches).
    sent: Vec<SymWord>,
    fifo: VecDeque<SymWord>,
    txctrl: SymWord,
    ie: SymWord,
    /// Concretized cycles-per-byte (feeds concrete kernel time).
    div_cycles: u64,
    /// Interrupt line level (level-triggered toward the PLIC/CPU).
    irq_line: bool,
    irq_target: Option<Rc<RefCell<dyn InterruptTarget>>>,
}

impl UartState {
    fn tx_enabled(&self) -> bool {
        let one = self.ctx.word32(1);
        let bit = self.txctrl.and(&one).eq(&one);
        self.ctx.decide(&bit)
    }

    /// The configured watermark (bits 18:16 of txctrl), as a symbolic word.
    fn watermark(&self) -> SymWord {
        self.txctrl.extract(18, 16).zero_ext(Width::W32)
    }

    /// Whether the txwm condition holds: FIFO level strictly below the
    /// watermark (the FE310 rule).
    fn txwm_pending(&self) -> bool {
        let level = self.ctx.word32(self.fifo.len() as u32);
        let below = level.ult(&self.watermark());
        self.ctx.decide(&below)
    }

    fn irq_enabled(&self) -> bool {
        let one = self.ctx.word32(1);
        let bit = self.ie.and(&one).eq(&one);
        self.ctx.decide(&bit)
    }

    /// Re-evaluates the level-triggered interrupt line, notifying the
    /// target on a rising edge.
    fn update_irq(&mut self) {
        let level = self.txwm_pending() && self.irq_enabled();
        if level && !self.irq_line {
            if let Some(t) = &self.irq_target {
                t.borrow_mut().trigger_external_interrupt();
            }
        }
        self.irq_line = level;
    }
}

/// The transmit drain process: every `div` cycles, send one FIFO byte.
struct TxThread {
    state: Rc<RefCell<UartState>>,
    started: bool,
}

impl Process for TxThread {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_>) -> Suspend {
        let e_tx = self.state.borrow().e_tx;
        if !self.started {
            self.started = true;
            return Suspend::WaitEvent(e_tx);
        }
        let mut st = self.state.borrow_mut();
        if !st.tx_enabled() {
            return Suspend::WaitEvent(e_tx);
        }
        if let Some(byte) = st.fifo.pop_front() {
            st.sent.push(byte);
            st.update_irq();
        }
        if st.fifo.is_empty() {
            Suspend::WaitEvent(e_tx)
        } else {
            let cycles = st.div_cycles.max(1);
            drop(st);
            let _ = ctx; // time comes from the wait below
            Suspend::WaitTime(SimTime::from_ns(cycles))
        }
    }
}

/// The UART peripheral.
///
/// # Example
///
/// ```
/// use symsc_pk::{Kernel, SimTime};
/// use symsc_plic::Uart;
/// use symsc_symex::Explorer;
/// use symsc_tlm::{BlockingTransport, GenericPayload};
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut kernel = Kernel::new();
///     let mut uart = Uart::new(ctx, &mut kernel);
///     kernel.step();
///     // Enable TX and write a byte.
///     let mut en = GenericPayload::write(ctx, ctx.word32(0x08), 4);
///     en.set_word(0, ctx.word32(1));
///     uart.b_transport(ctx, &mut kernel, &mut en);
///     let mut tx = GenericPayload::write(ctx, ctx.word32(0x00), 4);
///     tx.set_word(0, ctx.word32(b'A' as u32));
///     uart.b_transport(ctx, &mut kernel, &mut tx);
///     kernel.run_until(SimTime::from_ns(100));
///     assert_eq!(uart.sent_count(), 1);
/// });
/// assert!(report.passed());
/// ```
pub struct Uart {
    state: Rc<RefCell<UartState>>,
    bank: RegisterBank,
}

impl std::fmt::Debug for Uart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Uart")
            .field("fifo_level", &st.fifo.len())
            .field("sent", &st.sent.len())
            .field("irq_line", &st.irq_line)
            .finish()
    }
}

impl Uart {
    /// Instantiates the UART and spawns its transmit process.
    pub fn new(ctx: &SymCtx, kernel: &mut Kernel) -> Uart {
        let e_tx = kernel.create_event("uart.e_tx");
        let state = Rc::new(RefCell::new(UartState {
            ctx: ctx.clone(),
            e_tx,
            sent: Vec::new(),
            fifo: VecDeque::new(),
            txctrl: ctx.word32(0),
            ie: ctx.word32(0),
            div_cycles: 10,
            irq_line: false,
            irq_target: None,
        }));
        kernel.spawn(
            "uart.tx",
            TxThread {
                state: state.clone(),
                started: false,
            },
        );
        let bank = RegisterBank::new(CheckMode::TlmError)
            .region("txdata", TXDATA, 1, Access::ReadWrite)
            .region("txctrl", TXCTRL, 1, Access::ReadWrite)
            .region("ie", IE, 1, Access::ReadWrite)
            .region("ip", IP, 1, Access::ReadOnly)
            .region("div", DIV, 1, Access::ReadWrite);
        Uart { state, bank }
    }

    /// Connects the txwm interrupt line (e.g. to a PLIC gateway bridge).
    pub fn connect_irq(&self, target: Rc<RefCell<dyn InterruptTarget>>) {
        self.state.borrow_mut().irq_target = Some(target);
    }

    /// Number of bytes fully transmitted so far.
    pub fn sent_count(&self) -> usize {
        self.state.borrow().sent.len()
    }

    /// The `index`-th transmitted byte (low 8 bits of the written word).
    ///
    /// # Panics
    ///
    /// Panics if `index >= sent_count()`.
    pub fn sent_byte(&self, index: usize) -> SymWord {
        self.state.borrow().sent[index].clone()
    }

    /// Current transmit-FIFO fill level.
    pub fn fifo_level(&self) -> usize {
        self.state.borrow().fifo.len()
    }

    /// Whether the interrupt line is currently raised.
    pub fn irq_line(&self) -> bool {
        self.state.borrow().irq_line
    }
}

struct UartRegs {
    state: Rc<RefCell<UartState>>,
}

impl RegisterModel for UartRegs {
    fn read_word(
        &mut self,
        ctx: &SymCtx,
        _kernel: &mut Kernel,
        region: usize,
        _word_index: &SymWord,
    ) -> SymWord {
        let st = self.state.borrow();
        match region {
            REGION_TXDATA => {
                // bit 31 = FIFO full; data reads as zero (TX-only register).
                if st.fifo.len() >= TX_FIFO_DEPTH {
                    ctx.word32(1 << 31)
                } else {
                    ctx.word32(0)
                }
            }
            REGION_TXCTRL => st.txctrl.clone(),
            REGION_IE => st.ie.clone(),
            REGION_IP => {
                drop(st);
                let pending = self.state.borrow_mut().txwm_pending();
                ctx.word32(u32::from(pending))
            }
            REGION_DIV => ctx.word32(self.state.borrow().div_cycles as u32),
            _ => unreachable!("unknown UART region {region}"),
        }
    }

    fn write_word(
        &mut self,
        ctx: &SymCtx,
        kernel: &mut Kernel,
        region: usize,
        _word_index: &SymWord,
        value: &SymWord,
    ) {
        let mut st = self.state.borrow_mut();
        match region {
            REGION_TXDATA => {
                if st.fifo.len() < TX_FIFO_DEPTH {
                    let mask = ctx.word32(0xFF);
                    st.fifo.push_back(value.and(&mask));
                    let e_tx = st.e_tx;
                    kernel.notify(e_tx, NotifyKind::Timed(SimTime::from_ns(st.div_cycles)));
                    st.update_irq();
                }
                // Writing a full FIFO silently drops (FE310 behavior).
            }
            REGION_TXCTRL => {
                st.txctrl = value.clone();
                st.update_irq();
                if st.tx_enabled() && !st.fifo.is_empty() {
                    let e_tx = st.e_tx;
                    kernel.notify(e_tx, NotifyKind::Timed(SimTime::from_ns(st.div_cycles)));
                }
            }
            REGION_IE => {
                st.ie = value.clone();
                st.update_irq();
            }
            REGION_IP => unreachable!("ip is read-only"),
            REGION_DIV => {
                // Feeds concrete kernel time: concretize (KLEE-style).
                st.div_cycles = value.concretize().max(1);
            }
            _ => unreachable!("unknown UART region {region}"),
        }
    }
}

impl BlockingTransport for Uart {
    fn b_transport(&mut self, ctx: &SymCtx, kernel: &mut Kernel, payload: &mut GenericPayload) {
        let mut regs = UartRegs {
            state: self.state.clone(),
        };
        self.bank.transport(&mut regs, ctx, kernel, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_symex::Explorer;

    struct Line {
        raised: u32,
    }
    impl InterruptTarget for Line {
        fn trigger_external_interrupt(&mut self) {
            self.raised += 1;
        }
    }

    fn write_reg(ctx: &SymCtx, kernel: &mut Kernel, uart: &mut Uart, addr: u32, value: u32) {
        let mut p = GenericPayload::write(ctx, ctx.word32(addr), 4);
        p.set_word(0, ctx.word32(value));
        uart.b_transport(ctx, kernel, &mut p);
        assert!(p.response.is_ok(), "write {addr:#x}");
    }

    fn read_reg(ctx: &SymCtx, kernel: &mut Kernel, uart: &mut Uart, addr: u32) -> SymWord {
        let mut p = GenericPayload::read(ctx, ctx.word32(addr), 4);
        uart.b_transport(ctx, kernel, &mut p);
        assert!(p.response.is_ok(), "read {addr:#x}");
        p.word(0).clone()
    }

    #[test]
    fn transmits_bytes_in_order() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            kernel.step();
            write_reg(ctx, &mut kernel, &mut uart, TXCTRL as u32, 1);
            for b in [b'h', b'i', b'!'] {
                write_reg(ctx, &mut kernel, &mut uart, TXDATA as u32, b as u32);
            }
            kernel.run_until(SimTime::from_ns(1000));
            assert_eq!(uart.sent_count(), 3);
            for (i, b) in [b'h', b'i', b'!'].iter().enumerate() {
                ctx.check(
                    &uart.sent_byte(i).eq(&ctx.word32(*b as u32)),
                    "bytes leave in FIFO order",
                );
            }
            assert_eq!(uart.fifo_level(), 0);
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn tx_disabled_holds_the_fifo() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            kernel.step();
            write_reg(ctx, &mut kernel, &mut uart, TXDATA as u32, 42);
            kernel.run_until(SimTime::from_ns(500));
            assert_eq!(uart.sent_count(), 0, "txen is off");
            assert_eq!(uart.fifo_level(), 1);
            // Enabling drains it.
            write_reg(ctx, &mut kernel, &mut uart, TXCTRL as u32, 1);
            kernel.run_until(SimTime::from_ns(1000));
            assert_eq!(uart.sent_count(), 1);
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn fifo_full_flag_and_overflow_drop() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            kernel.step();
            // Fill the FIFO without enabling TX.
            for b in 0..TX_FIFO_DEPTH as u32 + 2 {
                write_reg(ctx, &mut kernel, &mut uart, TXDATA as u32, b);
            }
            assert_eq!(uart.fifo_level(), TX_FIFO_DEPTH, "overflow drops");
            let txdata = read_reg(ctx, &mut kernel, &mut uart, TXDATA as u32);
            ctx.check(&txdata.eq(&ctx.word32(1 << 31)), "full flag set");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn watermark_interrupt_fires_when_level_drops_below() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            let line = Rc::new(RefCell::new(Line { raised: 0 }));
            uart.connect_irq(line.clone());
            kernel.step();

            // watermark = 2 (bits 18:16), txen = 1; ie = txwm.
            write_reg(ctx, &mut kernel, &mut uart, IE as u32, 1);
            // 3 bytes queued -> level 3 >= watermark 2: no interrupt yet.
            for b in 0..3u32 {
                write_reg(ctx, &mut kernel, &mut uart, TXDATA as u32, b);
            }
            write_reg(ctx, &mut kernel, &mut uart, TXCTRL as u32, 1 | (2 << 16));
            assert_eq!(line.borrow().raised, 0, "level 3 not below watermark 2");

            // Drain: once level drops to 1 (< 2), the line rises.
            kernel.run_until(SimTime::from_ns(1000));
            assert!(uart.sent_count() == 3);
            assert_eq!(line.borrow().raised, 1, "one rising edge");
            assert!(uart.irq_line(), "level-triggered line stays up");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn ip_register_reflects_watermark_condition() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            kernel.step();
            // Empty FIFO, watermark 1 -> pending.
            write_reg(ctx, &mut kernel, &mut uart, TXCTRL as u32, 1 << 16);
            let ip = read_reg(ctx, &mut kernel, &mut uart, IP as u32);
            ctx.check(&ip.eq(&ctx.word32(1)), "0 < watermark 1");
            // Watermark 0 -> never pending.
            write_reg(ctx, &mut kernel, &mut uart, TXCTRL as u32, 0);
            let ip = read_reg(ctx, &mut kernel, &mut uart, IP as u32);
            ctx.check(&ip.eq(&ctx.word32(0)), "level never below 0");
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn symbolic_watermark_verification() {
        // For ANY watermark w in 0..=7 and an empty FIFO after draining
        // one byte, the pending bit must equal (0 < w) — verified
        // symbolically across all configurations at once.
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let mut uart = Uart::new(ctx, &mut kernel);
            kernel.step();

            let w = ctx.symbolic("watermark", Width::W32);
            ctx.assume(&w.ule(&ctx.word32(7)));
            let shifted = w.shl(&ctx.word32(16)).or(&ctx.word32(1)); // txen | w<<16
            let mut p = GenericPayload::write(ctx, ctx.word32(TXCTRL as u32), 4);
            p.set_word(0, shifted);
            uart.b_transport(ctx, &mut kernel, &mut p);
            assert!(p.response.is_ok());

            write_reg(ctx, &mut kernel, &mut uart, TXDATA as u32, 7);
            kernel.run_until(SimTime::from_ns(200));
            assert_eq!(uart.sent_count(), 1);

            let ip = read_reg(ctx, &mut kernel, &mut uart, IP as u32);
            let zero = ctx.word32(0);
            let expected_pending = zero.ult(&w); // level 0 < watermark?
            let one = ctx.word32(1);
            let got_pending = ip.eq(&one);
            let agree = expected_pending
                .implies(&got_pending)
                .and(&got_pending.implies(&expected_pending));
            ctx.check(&agree, "ip == (level < watermark) for every watermark");
        });
        assert!(report.passed(), "{report}");
    }
}

//! An independent, purely concrete PLIC oracle.
//!
//! Deliberately written in the most obvious way (sets and linear scans,
//! no bitmaps, no symbolic values) so it can serve as ground truth for
//! property tests of the TLM model: drive both with the same concrete
//! stimulus and compare observable behavior.

use std::collections::BTreeSet;

/// A concrete reference model of PLIC claim/delivery semantics.
///
/// # Example
///
/// ```
/// use symsc_plic::ReferencePlic;
/// let mut p = ReferencePlic::new(51);
/// p.set_priority(5, 3);
/// p.set_enabled(5, true);
/// p.trigger(5).unwrap();
/// assert_eq!(p.next_deliverable(), Some(5));
/// assert_eq!(p.claim(), 5);
/// assert_eq!(p.claim(), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferencePlic {
    sources: u32,
    priorities: Vec<u32>,
    pending: BTreeSet<u32>,
    enabled: BTreeSet<u32>,
    threshold: u32,
}

/// Error for an out-of-range interrupt id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidInterruptId(pub u32);

impl std::fmt::Display for InvalidInterruptId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid interrupt id {}", self.0)
    }
}

impl std::error::Error for InvalidInterruptId {}

impl ReferencePlic {
    /// A reference PLIC with ids `1..=sources`, all priorities zero,
    /// everything disabled, threshold zero.
    pub fn new(sources: u32) -> ReferencePlic {
        ReferencePlic {
            sources,
            priorities: vec![0; sources as usize + 1],
            pending: BTreeSet::new(),
            enabled: BTreeSet::new(),
            threshold: 0,
        }
    }

    /// Number of sources.
    pub fn sources(&self) -> u32 {
        self.sources
    }

    /// Sets `priority[irq]`.
    ///
    /// # Panics
    ///
    /// Panics if `irq` is out of range (oracle misuse is a test bug).
    pub fn set_priority(&mut self, irq: u32, priority: u32) {
        assert!(irq >= 1 && irq <= self.sources);
        self.priorities[irq as usize] = priority;
    }

    /// The priority of `irq`.
    pub fn priority(&self, irq: u32) -> u32 {
        self.priorities[irq as usize]
    }

    /// Enables or disables a source.
    pub fn set_enabled(&mut self, irq: u32, enabled: bool) {
        assert!(irq >= 1 && irq <= self.sources);
        if enabled {
            self.enabled.insert(irq);
        } else {
            self.enabled.remove(&irq);
        }
    }

    /// Sets the HART threshold.
    pub fn set_threshold(&mut self, threshold: u32) {
        self.threshold = threshold;
    }

    /// Raises interrupt `irq`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidInterruptId`] for ids outside `1..=sources` (the
    /// *fixed* gateway behavior).
    pub fn trigger(&mut self, irq: u32) -> Result<(), InvalidInterruptId> {
        if irq == 0 || irq > self.sources {
            return Err(InvalidInterruptId(irq));
        }
        self.pending.insert(irq);
        Ok(())
    }

    /// Whether `irq` is pending.
    pub fn is_pending(&self, irq: u32) -> bool {
        self.pending.contains(&irq)
    }

    fn best(&self, consider_threshold: bool) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (priority, id)
        for &irq in &self.pending {
            if !self.enabled.contains(&irq) {
                continue;
            }
            let prio = self.priorities[irq as usize];
            if prio == 0 {
                continue;
            }
            if consider_threshold && prio <= self.threshold {
                continue;
            }
            let better = match best {
                None => true,
                // Strictly greater: ties keep the earlier (lower) id,
                // which the BTreeSet iteration order guarantees.
                Some((bp, _)) => prio > bp,
            };
            if better {
                best = Some((prio, irq));
            }
        }
        best.map(|(_, id)| id)
    }

    /// The interrupt that would be delivered to the HART now (threshold
    /// considered), if any.
    pub fn next_deliverable(&self) -> Option<u32> {
        self.best(true)
    }

    /// Claims the best pending interrupt (threshold ignored, per spec),
    /// clearing its pending bit. Returns 0 when nothing is claimable.
    pub fn claim(&mut self) -> u32 {
        match self.best(false) {
            Some(id) => {
                self.pending.remove(&id);
                id
            }
            None => 0,
        }
    }

    /// The full claim sequence until the controller drains empty.
    pub fn drain(&mut self) -> Vec<u32> {
        let mut order = Vec::new();
        loop {
            let id = self.claim();
            if id == 0 {
                return order;
            }
            order.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(sources: u32, irqs: &[(u32, u32)]) -> ReferencePlic {
        let mut p = ReferencePlic::new(sources);
        for &(irq, prio) in irqs {
            p.set_priority(irq, prio);
            p.set_enabled(irq, true);
            p.trigger(irq).unwrap();
        }
        p
    }

    #[test]
    fn claims_in_priority_then_id_order() {
        let mut p = armed(51, &[(10, 1), (3, 5), (20, 5), (7, 2)]);
        assert_eq!(p.drain(), vec![3, 20, 7, 10]);
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let mut p = ReferencePlic::new(51);
        assert_eq!(p.trigger(0), Err(InvalidInterruptId(0)));
        assert_eq!(p.trigger(52), Err(InvalidInterruptId(52)));
        assert!(p.trigger(51).is_ok());
    }

    #[test]
    fn threshold_gates_delivery_not_claim() {
        let mut p = armed(51, &[(5, 2)]);
        p.set_threshold(2);
        assert_eq!(p.next_deliverable(), None);
        assert_eq!(p.claim(), 5, "claim ignores the threshold");
    }

    #[test]
    fn zero_priority_never_deliverable() {
        let mut p = ReferencePlic::new(8);
        p.set_enabled(3, true);
        p.trigger(3).unwrap();
        assert_eq!(p.next_deliverable(), None);
        assert_eq!(p.claim(), 0);
        assert!(p.is_pending(3), "unclaimable stays pending");
    }

    #[test]
    fn disabled_sources_stay_pending_but_silent() {
        let mut p = ReferencePlic::new(8);
        p.set_priority(2, 3);
        p.trigger(2).unwrap();
        assert_eq!(p.claim(), 0);
        p.set_enabled(2, true);
        assert_eq!(p.claim(), 2);
    }
}

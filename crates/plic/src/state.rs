//! The PLIC's internal registers and core logic.
//!
//! Everything here is *per-path* state: the symbolic engine re-creates the
//! peripheral on every explored path. Register contents are symbolic words
//! ([`SymArray`]/[`SymWord`]), so symbolic interrupt ids, priorities and
//! thresholds propagate through the logic without forking; only genuine
//! control decisions (notification, eligibility) fork via `decide`.
//!
//! Per the RISC-V PLIC architecture (the paper's Fig. 1), the interrupt
//! *sources* (priorities, pending bits) are global while enables,
//! thresholds, the claim/complete interface and the `eip` line are
//! per-HART. The FE310 instantiates one HART; the model supports any
//! number.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::{Event, Kernel, NotifyKind};
use symsc_symex::{ErrorKind, SymArray, SymBool, SymCtx, SymWord, Width};

use crate::config::{PlicConfig, PlicVariant};
use crate::mutation::{MutationOp, ThresholdCmp};
use crate::plic::InterruptTarget;

/// Mutable PLIC state shared between the TLM interface, the gateway and
/// the `run` thread.
pub struct PlicState {
    pub(crate) config: PlicConfig,
    pub(crate) ctx: SymCtx,
    pub(crate) e_run: Event,
    /// `priority[irq]`, index 0 unused (id 0 is reserved).
    pub(crate) priorities: SymArray,
    /// Pending-interrupt flags, one 1-bit entry per id (a shift-free
    /// encoding of the pending bitmap: equality-guarded selects blast to
    /// far smaller SAT formulas than symbolic one-hot shifts).
    pub(crate) pending: SymArray,
    /// Per-HART enable flags, same encoding.
    pub(crate) enabled: Vec<SymArray>,
    /// Per-HART priority threshold.
    pub(crate) threshold: Vec<SymWord>,
    /// Per-HART external-interrupt-pending line (the paper's `hart_eip`,
    /// used to suppress re-triggers).
    pub(crate) hart_eip: Vec<bool>,
    /// The connected HARTs (interrupt targets).
    pub(crate) targets: Vec<Option<Rc<RefCell<dyn InterruptTarget>>>>,
}

impl std::fmt::Debug for PlicState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlicState")
            .field("config", &self.config)
            .field("hart_eip", &self.hart_eip)
            .finish()
    }
}

impl PlicState {
    pub(crate) fn new(ctx: &SymCtx, config: PlicConfig, e_run: Event) -> PlicState {
        let flags = config.sources as usize + 1;
        let harts = config.harts as usize;
        PlicState {
            config,
            ctx: ctx.clone(),
            e_run,
            priorities: SymArray::filled(ctx, flags, 0, Width::W32),
            pending: SymArray::filled(ctx, flags, 0, Width::W1),
            enabled: (0..harts)
                .map(|_| SymArray::filled(ctx, flags, 0, Width::W1))
                .collect(),
            threshold: (0..harts).map(|_| ctx.word32(0)).collect(),
            hart_eip: vec![false; harts],
            targets: (0..harts).map(|_| None).collect(),
        }
    }

    // ----- bitmap helpers (shift-free 1-bit flag encoding) -----

    pub(crate) fn set_pending(&mut self, irq: &SymWord) {
        let one = self.ctx.word(1, Width::W1);
        self.pending.store(irq, &one);
    }

    /// Clears the pending bit of `irq`. Mutation hook: an early-clear
    /// return (IF5 with id 7) leaves the parameterized id's bit set.
    pub(crate) fn clear_pending(&mut self, irq: &SymWord) {
        if let Some(MutationOp::EarlyClearReturnForId(id)) = self.config.mutation {
            let sticky = self.ctx.word32(id);
            if self.ctx.decide(&irq.eq(&sticky)) {
                return; // seeded bug: this id is never cleared
            }
        }
        let zero = self.ctx.word(0, Width::W1);
        self.pending.store(irq, &zero);
    }

    /// The pending bit of a *concrete* id, as a symbolic boolean.
    pub(crate) fn pending_bit(&self, irq: u32) -> SymBool {
        let one = self.ctx.word(1, Width::W1);
        self.pending.get(irq as usize).eq(&one)
    }

    /// The enable bit of a *concrete* id for `hart`.
    pub(crate) fn enabled_bit(&self, hart: usize, irq: u32) -> SymBool {
        let one = self.ctx.word(1, Width::W1);
        self.enabled[hart].get(irq as usize).eq(&one)
    }

    /// The pending bit of a *symbolic* id, as a symbolic boolean
    /// (pure dataflow; no forking).
    pub(crate) fn pending_bit_symbolic(&self, irq: &SymWord) -> SymBool {
        let one = self.ctx.word(1, Width::W1);
        self.pending.select(irq).eq(&one)
    }

    /// Reads one 32-bit register word of a flag bitmap (the TLM view):
    /// bit `b` of word `w` is flag `32 * w + b`.
    pub(crate) fn bitmap_register_word(&self, map: &SymArray, word: &SymWord) -> SymWord {
        let ctx = &self.ctx;
        let words = self.config.bitmap_words() as u32;
        let mut out = ctx.word32(0);
        for w in 0..words {
            // Compose bits 31..0 of this register word, MSB first.
            let mut composed: Option<SymWord> = None;
            for b in (0..32).rev() {
                let flag = (w * 32 + b) as usize;
                let bit = if flag < map.len() {
                    map.get(flag).clone()
                } else {
                    ctx.word(0, Width::W1)
                };
                composed = Some(match composed {
                    None => bit,
                    Some(c) => c.concat(&bit),
                });
            }
            let composed = composed.expect("32 bits composed");
            let here = word.eq(&ctx.word32(w));
            out = composed.select(&here, &out);
        }
        out
    }

    /// Writes one 32-bit register word of a flag bitmap (the TLM view).
    pub(crate) fn bitmap_register_write(
        map: &mut SymArray,
        config: &PlicConfig,
        word: &SymWord,
        value: &SymWord,
        ctx: &SymCtx,
    ) {
        let words = config.bitmap_words() as u32;
        for w in 0..words {
            let here = word.eq(&ctx.word32(w));
            for b in 0..32 {
                let flag = (w * 32 + b) as usize;
                if flag >= map.len() {
                    break;
                }
                let bit = value.extract(b, b);
                let merged = bit.select(&here, map.get(flag));
                map.set(flag, merged);
            }
        }
    }

    // ----- interrupt selection (pure dataflow, no forking) -----

    /// The highest-priority pending *and enabled* interrupt for `hart`,
    /// with ties broken toward the lowest id (the RISC-V PLIC rule).
    /// Returns id 0 when nothing is eligible. `consider_threshold`
    /// additionally requires the priority to exceed the HART's threshold
    /// (the delivery check; claiming ignores the threshold).
    pub(crate) fn next_pending_interrupt(&self, hart: usize, consider_threshold: bool) -> SymWord {
        let ctx = &self.ctx;
        let zero = ctx.word32(0);
        let mut best_id = zero.clone();
        let mut best_prio = zero.clone();
        for irq in 1..=self.config.sources {
            let mut prio = self.priorities.get(irq as usize).clone();
            // Mutation hook: a stuck-at-0 bit in the priority datapath.
            if let Some(MutationOp::StuckPriorityBit(bit)) = self.config.mutation {
                let mask = ctx.word32(!(1u32 << bit));
                prio = prio.and(&mask);
            }
            let pend = self.pending_bit(irq);
            let mut enab = self.enabled_bit(hart, irq);
            // Mutation hook: an enable bit stuck at 1.
            if self.config.mutation == Some(MutationOp::StuckEnableForId(irq)) {
                enab = ctx.lit(true);
            }
            let mut eligible = pend.and(&enab).and(&prio.ugt(&zero));
            if consider_threshold {
                // Mutation hook: the comparison flavor. IF6 misreads the
                // spec as `>=` instead of strictly greater.
                let passes = match self.config.mutation {
                    Some(MutationOp::ThresholdCompare(ThresholdCmp::OrEqual)) => {
                        prio.uge(&self.threshold[hart])
                    }
                    Some(MutationOp::ThresholdCompare(ThresholdCmp::AlwaysPass)) => ctx.lit(true),
                    Some(MutationOp::ThresholdCompare(ThresholdCmp::NeverPass)) => ctx.lit(false),
                    _ => prio.ugt(&self.threshold[hart]),
                };
                eligible = eligible.and(&passes);
            }
            // Strictly-greater keeps the earlier (lower) id on ties;
            // mutation hook: `>=` lets the latest (highest) id win.
            let improves = if self.config.mutation == Some(MutationOp::TieBreakHighestId) {
                prio.uge(&best_prio)
            } else {
                prio.ugt(&best_prio)
            };
            let better = eligible.and(&improves);
            let id_const = ctx.word32(irq);
            best_id = id_const.select(&better, &best_id);
            best_prio = prio.select(&better, &best_prio);
        }
        best_id
    }

    /// Whether any interrupt is deliverable to `hart` right now.
    pub(crate) fn has_pending_enabled_interrupt(&self, hart: usize) -> SymBool {
        let zero = self.ctx.word32(0);
        self.next_pending_interrupt(hart, true).ne(&zero)
    }

    // ----- gateway (paper Fig. 1: trigger_interrupt) -----

    /// An external interrupt line fires. This is the
    /// `gateway_trigger_interrupt` of the VP: validate the id, set the
    /// pending bit, and notify `e_run` one clock cycle later.
    pub(crate) fn gateway_trigger(&mut self, kernel: &mut Kernel, irq: &SymWord) {
        let ctx = self.ctx.clone();
        let one = ctx.word32(1);
        // Mutation hook: the accepted id range is shifted by the bound
        // offset (IF1 widens it by one; negative offsets drop high ids).
        let bound = match self.config.mutation {
            Some(MutationOp::GatewayBoundOffset(delta)) => {
                self.config.sources.saturating_add_signed(delta)
            }
            _ => self.config.sources,
        };
        let upper = ctx.word32(bound);
        let valid = irq.uge(&one).and(&irq.ule(&upper));
        match self.config.variant {
            PlicVariant::Faithful => {
                // F1: a plain assert. Under verification this aborts the
                // model; in a release build it would corrupt memory.
                if ctx.decide(&valid.not()) {
                    panic!("assertion failed: interrupt id out of range in trigger_interrupt");
                }
            }
            PlicVariant::Fixed => {
                if ctx.decide(&valid.not()) {
                    return; // repaired: invalid ids are ignored
                }
            }
        }

        // The conceptual pending array holds ids 0..=sources; anything
        // beyond is a buffer overflow (reachable only through IF1).
        let n = ctx.word32(self.config.sources);
        if ctx.decide(&irq.ugt(&n)) {
            ctx.fail(
                ErrorKind::OutOfBounds,
                "write past the end of the pending-interrupt array",
            );
        }

        self.set_pending(irq);

        // Mutation hook: the notification is dropped for one id (IF2 with
        // id 13; the pending bit is already set).
        if let Some(MutationOp::DropNotifyForId(id)) = self.config.mutation {
            let dropped = ctx.word32(id);
            if ctx.decide(&irq.eq(&dropped)) {
                return;
            }
        }

        // Mutation hook: the delivery latency is stretched above a
        // boundary id (IF4: factor 10 above the configuration default).
        let mut delay = self.config.clock_cycle;
        if let Some(MutationOp::LateNotifyAboveBoundary { boundary, factor }) = self.config.mutation
        {
            let above = ctx.word32(boundary.unwrap_or_else(|| self.config.if4_boundary()));
            if ctx.decide(&irq.ugt(&above)) {
                delay = delay * u64::from(factor);
            }
        }
        kernel.notify(self.e_run, NotifyKind::Timed(delay));
        // Mutation hook: a duplicated notification (equivalent under the
        // kernel's override rules — the expected surviving mutant).
        if self.config.mutation == Some(MutationOp::DuplicateNotify) {
            kernel.notify(self.e_run, NotifyKind::Timed(delay));
        }
    }

    // ----- claim / complete (the per-HART claim_response register) -----

    /// A read of `claim_response` by `hart`: returns the best claimable
    /// interrupt (ignoring the threshold, per the PLIC spec) and clears
    /// its pending bit. Returns id 0 when nothing is pending.
    pub(crate) fn claim(&mut self, hart: usize) -> SymWord {
        let best = self.next_pending_interrupt(hart, false);
        let zero = self.ctx.word32(0);
        let claimed = best.ne(&zero);
        if self.ctx.decide(&claimed) {
            // Mutation hook: a claim that forgets to clear pending.
            if self.config.mutation != Some(MutationOp::ClaimSkipsClear) {
                self.clear_pending(&best.clone());
            }
        }
        best
    }

    /// A write of `claim_response` by `hart`: the HART signals completion
    /// of the interrupt it claimed. Clears `hart_eip` and re-notifies
    /// `e_run` so remaining pending interrupts are re-evaluated.
    pub(crate) fn complete(&mut self, kernel: &mut Kernel, hart: usize, _completed_id: &SymWord) {
        if self.config.variant == PlicVariant::Faithful {
            // F6: "previously thought never to be false". A completion
            // racing ahead of the PLIC thread (trigger, then write, before
            // the thread was scheduled) reaches this with eip still clear.
            assert!(
                self.hart_eip[hart],
                "assertion failed: claim_response written without external interrupt in flight"
            );
        }
        // Mutation hook: completion leaves the external-interrupt-pending
        // flag set, blocking every later delivery to this HART.
        if self.config.mutation != Some(MutationOp::CompleteKeepsEip) {
            self.hart_eip[hart] = false;
        }
        if self.config.mutation == Some(MutationOp::SkipRetrigger) {
            return; // seeded bug: remaining interrupts never re-trigger
        }
        // A dropped notification (IF2 for id 13) breaks the logic wherever
        // it runs: the completion re-trigger is also lost when the next
        // deliverable interrupt is the dropped id.
        if let Some(MutationOp::DropNotifyForId(id)) = self.config.mutation {
            let best = self.next_pending_interrupt(hart, false);
            let dropped = self.ctx.word32(id);
            let ctx = self.ctx.clone();
            if ctx.decide(&best.eq(&dropped)) {
                return;
            }
        }
        kernel.notify(self.e_run, NotifyKind::Timed(self.config.clock_cycle));
    }

    // ----- the run-thread body (paper Fig. 3, lines 4-10) -----

    /// One activation of the PLIC main loop: for every HART, deliver an
    /// external interrupt notification if one is due and none is in
    /// flight — exactly the `for (unsigned i = 0; i < NumberCores; ++i)`
    /// loop of the original thread.
    pub(crate) fn run_body(&mut self) {
        for hart in 0..self.config.harts as usize {
            if self.hart_eip[hart] {
                continue;
            }
            let due = self.has_pending_enabled_interrupt(hart);
            if self.ctx.decide(&due) {
                self.hart_eip[hart] = true;
                if let Some(target) = &self.targets[hart] {
                    target.borrow_mut().trigger_external_interrupt();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InjectedFault;
    use symsc_symex::Explorer;

    fn mk_state(ctx: &SymCtx, config: PlicConfig) -> (PlicState, Kernel) {
        let mut kernel = Kernel::new();
        let e_run = kernel.create_event("e_run");
        (PlicState::new(ctx, config, e_run), kernel)
    }

    fn enable_all(st: &mut PlicState, ctx: &SymCtx, hart: usize) {
        for f in 1..st.enabled[hart].len() {
            st.enabled[hart].set(f, ctx.word(1, Width::W1));
        }
    }

    #[test]
    fn pending_bit_round_trip_concrete() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            let irq = ctx.word32(33); // second bitmap word
            st.set_pending(&irq);
            ctx.check(&st.pending_bit(33), "bit 33 set");
            ctx.check(&st.pending_bit(32).not(), "bit 32 clear");
            st.clear_pending(&irq);
            ctx.check(&st.pending_bit(33).not(), "bit 33 cleared");
        });
        assert!(report.passed());
    }

    #[test]
    fn pending_bit_round_trip_symbolic() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            let irq = ctx.symbolic("irq", Width::W32);
            ctx.assume(&irq.uge(&ctx.word32(1)));
            ctx.assume(&irq.ule(&ctx.word32(51)));
            st.set_pending(&irq);
            ctx.check(&st.pending_bit_symbolic(&irq), "symbolic pending bit set");
        });
        assert!(report.passed());
        assert_eq!(report.stats.paths, 1, "bitmap ops must not fork");
    }

    #[test]
    fn bitmap_register_view_matches_flags() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(1));
            st.set_pending(&ctx.word32(33));
            let w0 = st.bitmap_register_word(&st.pending.clone(), &ctx.word32(0));
            let w1 = st.bitmap_register_word(&st.pending.clone(), &ctx.word32(1));
            ctx.check(&w0.eq(&ctx.word32(1 << 1)), "word 0 holds bit 1");
            ctx.check(&w1.eq(&ctx.word32(1 << 1)), "word 1 holds bit 33");
        });
        assert!(report.passed());
    }

    #[test]
    fn bitmap_register_write_round_trips() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            let cfg = st.config;
            let mut map = st.enabled[0].clone();
            PlicState::bitmap_register_write(
                &mut map,
                &cfg,
                &ctx.word32(1),
                &ctx.word32(0x0005),
                ctx,
            );
            st.enabled[0] = map;
            ctx.check(&st.enabled_bit(0, 32), "bit 32 set via register write");
            ctx.check(&st.enabled_bit(0, 34), "bit 34 set via register write");
            ctx.check(&st.enabled_bit(0, 33).not(), "bit 33 clear");
            let w1 = st.bitmap_register_word(&st.enabled[0].clone(), &ctx.word32(1));
            ctx.check(&w1.eq(&ctx.word32(0x0005)), "register readback");
        });
        assert!(report.passed());
    }

    #[test]
    fn selection_prefers_higher_priority() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(3));
            st.set_pending(&ctx.word32(10));
            enable_all(&mut st, ctx, 0);
            st.priorities.set(3, ctx.word32(1));
            st.priorities.set(10, ctx.word32(5));
            let best = st.next_pending_interrupt(0, false);
            ctx.check(&best.eq(&ctx.word32(10)), "higher priority wins");
        });
        assert!(report.passed());
    }

    #[test]
    fn selection_breaks_ties_by_lowest_id() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(7));
            st.set_pending(&ctx.word32(4));
            enable_all(&mut st, ctx, 0);
            st.priorities.set(7, ctx.word32(3));
            st.priorities.set(4, ctx.word32(3));
            let best = st.next_pending_interrupt(0, false);
            ctx.check(&best.eq(&ctx.word32(4)), "lowest id wins ties");
        });
        assert!(report.passed());
    }

    #[test]
    fn priority_zero_never_interrupts() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(5));
            enable_all(&mut st, ctx, 0);
            // priority stays 0
            let best = st.next_pending_interrupt(0, false);
            ctx.check(&best.eq(&ctx.word32(0)), "priority 0 disables");
        });
        assert!(report.passed());
    }

    #[test]
    fn disabled_interrupts_are_not_selected() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(5));
            st.priorities.set(5, ctx.word32(3));
            // enable bitmap stays 0
            let best = st.next_pending_interrupt(0, false);
            ctx.check(&best.eq(&ctx.word32(0)), "disabled stays silent");
        });
        assert!(report.passed());
    }

    #[test]
    fn threshold_masks_delivery_but_not_claim() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(5));
            enable_all(&mut st, ctx, 0);
            st.priorities.set(5, ctx.word32(3));
            st.threshold[0] = ctx.word32(3); // delivery needs strictly greater
            let deliver = st.next_pending_interrupt(0, true);
            ctx.check(&deliver.eq(&ctx.word32(0)), "masked by threshold");
            let claimable = st.next_pending_interrupt(0, false);
            ctx.check(&claimable.eq(&ctx.word32(5)), "claim ignores threshold");
        });
        assert!(report.passed());
    }

    #[test]
    fn harts_have_independent_enables_and_thresholds() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310().harts(2);
            let (mut st, _k) = mk_state(ctx, cfg);
            st.set_pending(&ctx.word32(5));
            st.priorities.set(5, ctx.word32(3));
            enable_all(&mut st, ctx, 0);
            // HART 1 keeps everything disabled.
            let h0 = st.next_pending_interrupt(0, true);
            let h1 = st.next_pending_interrupt(1, true);
            ctx.check(&h0.eq(&ctx.word32(5)), "hart 0 sees irq 5");
            ctx.check(&h1.eq(&ctx.word32(0)), "hart 1 sees nothing");

            // Enable on hart 1 too, but mask with its threshold.
            enable_all(&mut st, ctx, 1);
            st.threshold[1] = ctx.word32(5);
            let h1 = st.next_pending_interrupt(1, true);
            ctx.check(&h1.eq(&ctx.word32(0)), "hart 1 masked by its threshold");
            let h0 = st.next_pending_interrupt(0, true);
            ctx.check(&h0.eq(&ctx.word32(5)), "hart 0 unaffected");
        });
        assert!(report.passed());
    }

    #[test]
    fn faithful_gateway_asserts_on_invalid_id() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, mut k) = mk_state(ctx, PlicConfig::fe310());
            let irq = ctx.symbolic("irq", Width::W32);
            ctx.assume(&irq.ule(&ctx.word32(60)));
            st.gateway_trigger(&mut k, &irq);
        });
        // F1: the validity assert fires (id 0 or 52..=60).
        assert_eq!(report.distinct_errors().len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::ModelPanic);
        let bad = report.errors[0].counterexample.value("irq");
        assert!(bad == 0 || bad > 51, "counterexample {bad} is invalid");
    }

    #[test]
    fn fixed_gateway_ignores_invalid_id() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
            let (mut st, mut k) = mk_state(ctx, cfg);
            let irq = ctx.symbolic("irq", Width::W32);
            st.gateway_trigger(&mut k, &irq);
        });
        assert!(report.passed());
    }

    #[test]
    fn if1_overflows_the_pending_array() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310()
                .variant(PlicVariant::Fixed)
                .fault(InjectedFault::If1OffByOneGateway);
            let (mut st, mut k) = mk_state(ctx, cfg);
            let irq = ctx.symbolic("irq", Width::W32);
            st.gateway_trigger(&mut k, &irq);
        });
        assert_eq!(report.distinct_errors().len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::OutOfBounds);
        assert_eq!(report.errors[0].counterexample.value("irq"), 52);
    }

    #[test]
    fn claim_returns_and_clears_best() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, _k) = mk_state(ctx, PlicConfig::fe310());
            st.set_pending(&ctx.word32(9));
            enable_all(&mut st, ctx, 0);
            st.priorities.set(9, ctx.word32(2));
            let got = st.claim(0);
            ctx.check(&got.eq(&ctx.word32(9)), "claims the pending irq");
            ctx.check(&st.pending_bit(9).not(), "pending bit cleared");
            let again = st.claim(0);
            ctx.check(&again.eq(&ctx.word32(0)), "second claim is empty");
        });
        assert!(report.passed());
    }

    #[test]
    fn faithful_complete_without_eip_is_f6() {
        let report = Explorer::new().explore(|ctx| {
            let (mut st, mut k) = mk_state(ctx, PlicConfig::fe310());
            let id = ctx.word32(1);
            st.complete(&mut k, 0, &id); // no interrupt in flight: the race
        });
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::ModelPanic);
        assert!(report.errors[0]
            .message
            .contains("without external interrupt in flight"));
    }

    #[test]
    fn fixed_complete_without_eip_is_tolerated() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
            let (mut st, mut k) = mk_state(ctx, cfg);
            let id = ctx.word32(1);
            st.complete(&mut k, 0, &id);
        });
        assert!(report.passed());
    }

    #[test]
    fn if5_leaves_id7_pending() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310()
                .variant(PlicVariant::Fixed)
                .fault(InjectedFault::If5EarlyClearReturn);
            let (mut st, _k) = mk_state(ctx, cfg);
            st.set_pending(&ctx.word32(7));
            st.clear_pending(&ctx.word32(7));
            ctx.check(&st.pending_bit(7).not(), "id 7 must clear");
        });
        assert!(!report.passed(), "IF5 must be observable");
    }

    #[test]
    fn if6_delivers_at_equal_threshold() {
        let report = Explorer::new().explore(|ctx| {
            let cfg = PlicConfig::fe310()
                .variant(PlicVariant::Fixed)
                .fault(InjectedFault::If6ThresholdOffByOne);
            let (mut st, _k) = mk_state(ctx, cfg);
            st.set_pending(&ctx.word32(5));
            enable_all(&mut st, ctx, 0);
            st.priorities.set(5, ctx.word32(3));
            st.threshold[0] = ctx.word32(3);
            let deliver = st.next_pending_interrupt(0, true);
            ctx.check(
                &deliver.eq(&ctx.word32(0)),
                "equal priority must be masked by the threshold",
            );
        });
        assert!(!report.passed(), "IF6 must be observable");
    }
}

//! Random-testing baseline.
//!
//! The paper's baseline — KLEE on the unmodified SystemC kernel — is not
//! reproducible here (it crashed inside QuickThreads, and this substrate
//! has no QuickThreads). Instead the harness compares the symbolic engine
//! against the standard practical alternative: the *same* testbenches
//! driven by uniformly random concrete inputs, replayed through the
//! engine's concrete mode. Time-to-first-bug of both approaches is what
//! `baseline_compare` reports.

use std::time::{Duration, Instant};

use symsc_plic::PlicConfig;
use symsc_rng::Rng;
use symsc_symex::{Counterexample, Explorer};

use crate::suite::{test_bench, SuiteParams, TestId};

/// Outcome of a random search for a bug.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Trials executed (each one full concrete testbench run).
    pub trials: u64,
    /// The 1-based trial index that first hit an error, if any.
    pub found_at_trial: Option<u64>,
    /// The first error's message, if any.
    pub error: Option<String>,
    /// Total wall-clock time spent.
    pub elapsed: Duration,
}

impl BaselineResult {
    /// Whether the search found a bug.
    pub fn found(&self) -> bool {
        self.found_at_trial.is_some()
    }
}

/// Samples concrete inputs for `test`, mirroring each testbench's
/// assumptions (samples always satisfy the `assume`s).
fn sample_inputs(
    test: TestId,
    config: PlicConfig,
    params: &SuiteParams,
    rng: &mut Rng,
) -> Counterexample {
    let sources = u64::from(config.sources);
    let maxp = u64::from(config.max_priority);
    match test {
        TestId::T1 => {
            Counterexample::from_pairs([("i_interrupt", rng.gen_range_inclusive(0, sources + 1))])
        }
        TestId::T2 => {
            let i = rng.gen_range_inclusive(1, sources);
            let mut j = rng.gen_range_inclusive(1, sources);
            while j == i {
                j = rng.gen_range_inclusive(1, sources);
            }
            Counterexample::from_pairs([
                ("i_interrupt".to_string(), i),
                ("j_interrupt".to_string(), j),
                ("i_priority".to_string(), rng.gen_range_inclusive(1, maxp)),
                ("j_priority".to_string(), rng.gen_range_inclusive(1, maxp)),
            ])
        }
        TestId::T3 => Counterexample::from_pairs([
            (
                "i_interrupt".to_string(),
                rng.gen_range_inclusive(1, sources),
            ),
            ("priority".to_string(), rng.gen_range_inclusive(0, maxp)),
            ("threshold".to_string(), rng.gen_range_inclusive(0, maxp)),
        ]),
        TestId::T4 => Counterexample::from_pairs([
            ("addr".to_string(), u64::from(rng.next_u32())),
            (
                "len".to_string(),
                rng.gen_range_inclusive(0, u64::from(params.max_txn_bytes)),
            ),
        ]),
        TestId::T5 => {
            let mut pairs = vec![
                ("addr".to_string(), u64::from(rng.next_u32() & !3)),
                (
                    "len".to_string(),
                    rng.gen_range_inclusive(0, u64::from(params.max_txn_bytes / 4)) * 4,
                ),
            ];
            for k in 0..params.max_txn_bytes.div_ceil(4) {
                pairs.push((format!("data_{k}"), u64::from(rng.next_u32())));
            }
            Counterexample::from_pairs(pairs)
        }
    }
}

/// Random testing: replays `test` on up to `max_trials` sampled inputs and
/// reports how long it took to hit the first error (if it did at all).
pub fn random_search(
    test: TestId,
    config: PlicConfig,
    params: &SuiteParams,
    seed: u64,
    max_trials: u64,
) -> BaselineResult {
    random_search_for(test, config, params, seed, max_trials, None)
}

/// Like [`random_search`], but only errors whose message contains
/// `target` count as a detection (searching for one *specific* bug when a
/// test can trip several, e.g. the boundary overrun among T4's decode
/// errors).
pub fn random_search_for(
    test: TestId,
    config: PlicConfig,
    params: &SuiteParams,
    seed: u64,
    max_trials: u64,
    target: Option<&str>,
) -> BaselineResult {
    let mut rng = Rng::seed_from_u64(seed);
    let explorer = Explorer::new();
    let start = Instant::now();
    for trial in 1..=max_trials {
        let inputs = sample_inputs(test, config, params, &mut rng);
        let report = explorer.replay(&inputs, test_bench(test, config, *params));
        let hit = report.errors.iter().find(|e| match target {
            Some(t) => e.message.contains(t),
            None => true,
        });
        if let Some(err) = hit {
            return BaselineResult {
                trials: trial,
                found_at_trial: Some(trial),
                error: Some(err.message.clone()),
                elapsed: start.elapsed(),
            };
        }
    }
    BaselineResult {
        trials: max_trials,
        found_at_trial: None,
        error: None,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{InjectedFault, PlicVariant};

    fn fixed() -> PlicConfig {
        PlicConfig::fe310().variant(PlicVariant::Fixed)
    }

    #[test]
    fn random_testing_finds_the_shallow_f1_quickly() {
        // F1 fires for 2 of 54 sampled ids: random testing should find it
        // within a few dozen trials.
        let r = random_search(
            TestId::T1,
            PlicConfig::fe310(),
            &SuiteParams::default(),
            7,
            500,
        );
        assert!(r.found(), "random search must stumble on F1");
        assert!(r.error.unwrap().contains("out of range"));
    }

    #[test]
    fn random_testing_misses_deep_bugs_in_a_small_budget() {
        // IF6 needs priority == threshold (both non-zero): roughly a 3%
        // hit rate per trial on the FE310 priority range. With 3 trials
        // per seed, most seeds must miss — a statistical assertion that is
        // robust to the exact RNG stream.
        let config = fixed().fault(InjectedFault::If6ThresholdOffByOne);
        let misses = (0..10u64)
            .filter(|&seed| {
                !random_search(TestId::T3, config, &SuiteParams::default(), seed, 3).found()
            })
            .count();
        assert!(
            misses >= 5,
            "random testing must usually miss IF6 in 3 trials ({misses}/10 missed)"
        );
    }

    #[test]
    fn random_testing_on_the_fixed_plic_finds_nothing() {
        for test in [TestId::T1, TestId::T3] {
            let r = random_search(test, fixed(), &SuiteParams::default(), 3, 50);
            assert!(!r.found(), "{test}: fixed PLIC has no bugs to find");
        }
    }
}

//! The mock HART (interrupt target) used by all testbenches — the
//! `Interrupt_target hart(dut)` of the paper's Fig. 6.

use std::cell::RefCell;
use std::rc::Rc;

use symsc_pk::Kernel;
use symsc_plic::{InterruptTarget, Plic};
use symsc_symex::{SymCtx, SymWord};
use symsc_tlm::{BlockingTransport, GenericPayload, ResponseStatus};

use symsc_plic::config::CLAIM_BASE;

#[derive(Debug, Default)]
struct HartRecord {
    triggered: u32,
}

struct HartTarget {
    record: Rc<RefCell<HartRecord>>,
}

impl InterruptTarget for HartTarget {
    fn trigger_external_interrupt(&mut self) {
        self.record.borrow_mut().triggered += 1;
    }
}

/// A recording interrupt target plus claim/complete helpers that go
/// through the real TLM interface (the way software would).
///
/// # Example
///
/// ```
/// use symsc_pk::Kernel;
/// use symsc_plic::{Plic, PlicConfig, PlicVariant};
/// use symsc_symex::Explorer;
/// use symsc_testbench::MockHart;
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut kernel = Kernel::new();
///     let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
///     let mut plic = Plic::new(ctx, &mut kernel, cfg);
///     let hart = MockHart::new();
///     plic.connect_hart(hart.target());
///     kernel.step();
///
///     plic.enable_all_sources(ctx);
///     plic.set_priority(ctx, 3, 1);
///     plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(3));
///     kernel.step();
///     assert_eq!(hart.triggered(), 1);
///     let id = hart.claim(ctx, &mut kernel, &mut plic);
///     ctx.check(&id.eq(&ctx.word32(3)), "claims irq 3");
///     hart.complete(ctx, &mut kernel, &mut plic, &id);
/// });
/// assert!(report.passed());
/// ```
pub struct MockHart {
    record: Rc<RefCell<HartRecord>>,
}

impl Default for MockHart {
    fn default() -> MockHart {
        MockHart::new()
    }
}

impl MockHart {
    /// A fresh HART with no recorded notifications.
    pub fn new() -> MockHart {
        MockHart {
            record: Rc::new(RefCell::new(HartRecord::default())),
        }
    }

    /// The connectable interrupt-target handle for
    /// [`Plic::connect_hart`].
    pub fn target(&self) -> Rc<RefCell<dyn InterruptTarget>> {
        Rc::new(RefCell::new(HartTarget {
            record: self.record.clone(),
        }))
    }

    /// How many times the external interrupt line was raised
    /// (`was_triggered` in the paper's listing, generalized to a count).
    pub fn triggered(&self) -> u32 {
        self.record.borrow().triggered
    }

    /// Claims the next interrupt by reading `claim_response` over TLM.
    /// Returns the claimed id (0 when nothing was pending).
    pub fn claim(&self, ctx: &SymCtx, kernel: &mut Kernel, plic: &mut Plic) -> SymWord {
        let mut txn = GenericPayload::read(ctx, ctx.word32(CLAIM_BASE as u32), 4);
        plic.b_transport(ctx, kernel, &mut txn);
        ctx.check_concrete(
            txn.response == ResponseStatus::Ok,
            "claim_response read must succeed",
        );
        txn.word(0).clone()
    }

    /// Completes an interrupt by writing its id to `claim_response`.
    pub fn complete(&self, ctx: &SymCtx, kernel: &mut Kernel, plic: &mut Plic, id: &SymWord) {
        let mut txn = GenericPayload::write(ctx, ctx.word32(CLAIM_BASE as u32), 4);
        txn.set_word(0, id.clone());
        plic.b_transport(ctx, kernel, &mut txn);
        ctx.check_concrete(
            txn.response == ResponseStatus::Ok,
            "claim_response write must succeed",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{PlicConfig, PlicVariant};
    use symsc_symex::Explorer;

    #[test]
    fn counts_multiple_notifications() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
            let mut plic = Plic::new(ctx, &mut kernel, cfg);
            let hart = MockHart::new();
            plic.connect_hart(hart.target());
            kernel.step();
            plic.enable_all_sources(ctx);
            plic.set_priority(ctx, 1, 1);
            plic.set_priority(ctx, 2, 1);

            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(1));
            kernel.step();
            let first = hart.claim(ctx, &mut kernel, &mut plic);
            hart.complete(ctx, &mut kernel, &mut plic, &first);
            kernel.step();

            plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(2));
            kernel.step();
            assert_eq!(hart.triggered(), 2);
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn claim_on_idle_plic_returns_zero() {
        let report = Explorer::new().explore(|ctx| {
            let mut kernel = Kernel::new();
            let cfg = PlicConfig::fe310().variant(PlicVariant::Fixed);
            let mut plic = Plic::new(ctx, &mut kernel, cfg);
            let hart = MockHart::new();
            plic.connect_hart(hart.target());
            kernel.step();
            let id = hart.claim(ctx, &mut kernel, &mut plic);
            ctx.check(&id.eq(&ctx.word32(0)), "idle claim is zero");
        });
        assert!(report.passed());
    }
}

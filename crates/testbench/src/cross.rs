//! The cross-level test suite X1–X3: the TLM PLIC and the cycle-level
//! model driven from one symbolic transaction stream, with the *other
//! level as the oracle*.
//!
//! Where T1–T5 encode expected behavior in the testbench (latency
//! bounds, claim-order formulas), the X tests assert only *equivalence*:
//! interrupt lines, notification counts, claim ids and the architectural
//! register file must agree at every step, path by path on the solver.
//! A mutant injected at either level is caught with no expected-value
//! bookkeeping at all — every existing stimulus pattern doubles as an
//! equivalence oracle.
//!
//! | Test | Stimulus (all symbolic) |
//! |------|-------------------------|
//! | X1   | one interrupt id over `0..=sources+1` (invalid ends included), priority, full handshake, register sweep |
//! | X2   | two distinct valid ids with independent priorities; claim order resolved by equivalence |
//! | X3   | masking: symbolic priority, threshold *and enable word* — enables stay symbolic terms |

use symsc_plic::PlicConfig;
use symsc_rtl::CrossChecker;
use symsc_symex::{SymCtx, Width};
use symsysc_core::{TestOutcome, Verifier};

/// Identifier of one cross-level equivalence test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrossId {
    /// Basic interaction: one symbolic interrupt through the full
    /// claim/complete handshake, with a register sweep.
    X1,
    /// Claim order: two symbolic interrupts with symbolic priorities.
    X2,
    /// Masking: symbolic priority, threshold and enable word.
    X3,
}

impl CrossId {
    /// All cross-level tests, in order.
    pub const ALL: [CrossId; 3] = [CrossId::X1, CrossId::X2, CrossId::X3];

    /// Parses the label back into the identifier (the inverse of
    /// [`name`](CrossId::name)).
    pub fn from_name(name: &str) -> Option<CrossId> {
        CrossId::ALL.into_iter().find(|t| t.name() == name)
    }

    /// The test's label ("X1" … "X3").
    pub fn name(self) -> &'static str {
        match self {
            CrossId::X1 => "X1",
            CrossId::X2 => "X2",
            CrossId::X3 => "X3",
        }
    }

    /// A one-line description.
    pub fn description(self) -> &'static str {
        match self {
            CrossId::X1 => "cross-level basic interaction: symbolic id, handshake, register sweep",
            CrossId::X2 => "cross-level claim order: two symbolic ids with symbolic priorities",
            CrossId::X3 => "cross-level masking: symbolic priority, threshold and enable word",
        }
    }
}

impl std::fmt::Display for CrossId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// **X1 — cross-level basic interaction.** One symbolic interrupt over
/// `0..=sources+1` (so the two gateways' invalid-id handling is compared
/// too), symbolic priority, delivery, claim, completion, redelivery
/// window, and a full register sweep at the end.
fn x1_basic_interaction(ctx: &SymCtx, tlm: PlicConfig, cycle: PlicConfig) {
    let mut x = CrossChecker::new(ctx, tlm, cycle);
    let sources = x.config().sources;
    x.enable_all();

    let i = ctx.symbolic("i_interrupt", Width::W32);
    ctx.assume(&i.ule(&ctx.word32(sources + 1)));
    let valid = i.uge(&ctx.word32(1)).and(&i.ule(&ctx.word32(sources)));
    let p = ctx.symbolic("priority", Width::W32);
    ctx.assume(&p.uge(&ctx.word32(1)));
    ctx.assume(&p.ule(&ctx.word32(x.config().max_priority)));
    // The direct priority store bypasses the register decode, so pin it
    // to a valid slot on the invalid-id branches.
    let slot = i.select(&valid, &ctx.word32(1));
    x.set_priority(&slot, &p);

    x.trigger(&i);
    if ctx.decide(&valid) {
        ctx.cover("x1/valid-id");
    } else {
        ctx.cover("x1/invalid-id");
    }
    x.step();
    x.fence();

    let id = x.claim(0);
    ctx.check(
        &valid.implies(&id.eq(&i)),
        "both levels claim the triggered id",
    );
    x.complete(0, &id);
    x.step();
    x.step();
    x.fence();
    x.check_registers();
}

/// **X2 — cross-level claim order.** Two distinct valid symbolic ids
/// with independent symbolic priorities fire back to back; the claim
/// order is *not* recomputed in the testbench — the TLM level's answer
/// is checked against the cycle level's comparison tree on the solver.
fn x2_claim_order(ctx: &SymCtx, tlm: PlicConfig, cycle: PlicConfig) {
    let mut x = CrossChecker::new(ctx, tlm, cycle);
    let n = ctx.word32(x.config().sources);
    let maxp = ctx.word32(x.config().max_priority);
    let one = ctx.word32(1);
    x.enable_all();

    let i = ctx.symbolic("i_interrupt", Width::W32);
    let j = ctx.symbolic("j_interrupt", Width::W32);
    ctx.assume(&i.uge(&one));
    ctx.assume(&i.ule(&n));
    ctx.assume(&j.uge(&one));
    ctx.assume(&j.ule(&n));
    ctx.assume(&i.ne(&j));

    let p_i = ctx.symbolic("i_priority", Width::W32);
    let p_j = ctx.symbolic("j_priority", Width::W32);
    ctx.assume(&p_i.uge(&one));
    ctx.assume(&p_i.ule(&maxp));
    ctx.assume(&p_j.uge(&one));
    ctx.assume(&p_j.ule(&maxp));
    x.set_priority(&i, &p_i);
    x.set_priority(&j, &p_j);

    x.trigger(&i);
    x.trigger(&j);
    x.step();
    x.fence();

    let first = x.claim(0);
    x.complete(0, &first);
    x.step();
    let second = x.claim(0);
    ctx.check(&second.ne(&first), "the two claims take distinct ids");
    x.complete(0, &second);
    x.step();
    x.fence();
    x.check_registers();
}

/// **X3 — cross-level masking.** Symbolic priority, symbolic threshold
/// *and a symbolic enable word*: the enables remain unresolved symbolic
/// terms through both levels' bitmap logic, so an enable-path mutant at
/// either level forks into a divergent path instead of hiding behind the
/// enable-all idiom of T1–T3 and X1/X2 (this is the test that kills
/// `stuck_enable_1` by equivalence).
fn x3_masking(ctx: &SymCtx, tlm: PlicConfig, cycle: PlicConfig) {
    let mut x = CrossChecker::new(ctx, tlm, cycle);
    let maxp = ctx.word32(x.config().max_priority);
    x.enable_all();

    let i = ctx.symbolic("i_interrupt", Width::W32);
    ctx.assume(&i.uge(&ctx.word32(1)));
    ctx.assume(&i.ule(&ctx.word32(x.config().sources)));
    let priority = ctx.symbolic("priority", Width::W32);
    let threshold = ctx.symbolic("threshold", Width::W32);
    ctx.assume(&priority.ule(&maxp));
    ctx.assume(&threshold.ule(&maxp));
    let enables = ctx.symbolic("enables", Width::W32);

    x.set_priority(&i, &priority);
    x.set_threshold(0, &threshold);
    x.write_enable_word(0, 0, &enables);

    x.trigger(&i);
    x.step();
    x.fence();

    let id = x.claim(0);
    x.complete(0, &id);
    x.step();
    x.fence();
    x.check_registers();
}

/// Builds the cross-level testbench closure for `test`, with the TLM
/// model built from `tlm_config` and the cycle model from
/// `cycle_config` (inject a mutation into exactly one of them to use
/// the other as the oracle). The closure is `Fn + Send + Sync`, so it
/// runs under the multi-worker explorer like any other bench.
pub fn cross_bench(
    test: CrossId,
    tlm_config: PlicConfig,
    cycle_config: PlicConfig,
) -> impl Fn(&SymCtx) + Send + Sync {
    move |ctx: &SymCtx| match test {
        CrossId::X1 => x1_basic_interaction(ctx, tlm_config, cycle_config),
        CrossId::X2 => x2_claim_order(ctx, tlm_config, cycle_config),
        CrossId::X3 => x3_masking(ctx, tlm_config, cycle_config),
    }
}

/// Runs one cross-level test to full exploration under the given
/// verifier budgets.
pub fn run_cross_test(
    test: CrossId,
    tlm_config: PlicConfig,
    cycle_config: PlicConfig,
    verifier: &Verifier,
) -> TestOutcome {
    verifier.run(cross_bench(test, tlm_config, cycle_config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{InjectedFault, MutationOp, PlicVariant};

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn run(test: CrossId, tlm: PlicConfig, cycle: PlicConfig) -> TestOutcome {
        run_cross_test(test, tlm, cycle, &Verifier::new(test.name()))
    }

    #[test]
    fn the_fixed_plic_is_equivalent_on_all_three_tests() {
        for test in CrossId::ALL {
            let o = run(test, fixed(), fixed());
            assert!(o.passed(), "{test}: {o}");
        }
    }

    #[test]
    fn x1_catches_gateway_and_notify_mutants_in_the_cycle_model() {
        for op in [
            MutationOp::GatewayBoundOffset(2),
            MutationOp::DropNotifyForId(2),
            MutationOp::ClaimSkipsClear,
        ] {
            let o = run(CrossId::X1, fixed(), fixed().mutate(op));
            assert!(!o.passed(), "X1 must catch cycle-side {op:?}");
        }
    }

    #[test]
    fn x2_catches_tiebreak_and_retrigger_mutants_in_the_cycle_model() {
        for op in [MutationOp::TieBreakHighestId, MutationOp::SkipRetrigger] {
            let o = run(CrossId::X2, fixed(), fixed().mutate(op));
            assert!(!o.passed(), "X2 must catch cycle-side {op:?}");
        }
    }

    #[test]
    fn x3_catches_threshold_and_enable_mutants_in_the_cycle_model() {
        for op in [
            MutationOp::ThresholdCompare(symsc_plic::ThresholdCmp::OrEqual),
            MutationOp::StuckEnableForId(1),
        ] {
            let o = run(CrossId::X3, fixed(), fixed().mutate(op));
            assert!(!o.passed(), "X3 must catch cycle-side {op:?}");
        }
    }

    #[test]
    fn the_oracle_works_in_both_directions() {
        // The same faults the T suite detects via injected TLM faults
        // are caught by X tests with the cycle model as the oracle.
        let o = run(
            CrossId::X1,
            fixed().fault(InjectedFault::If2DropNotifyId13),
            fixed(),
        );
        assert!(!o.passed(), "X1 must catch the TLM-side IF2");
        let o = run(
            CrossId::X3,
            fixed().fault(InjectedFault::If6ThresholdOffByOne),
            fixed(),
        );
        assert!(!o.passed(), "X3 must catch the TLM-side IF6");
    }
}

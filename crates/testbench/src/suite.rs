//! The five symbolic unit tests of the paper's §5.1.
//!
//! Each test is an ordinary closure over the symbolic context; the same
//! closure serves full exploration ([`run_test`]), counterexample replay
//! and the random-testing baseline (which replays it on sampled concrete
//! inputs).
//!
//! Scaling note: the paper's T5 writes "up to 1000 bytes" of symbolic
//! data; this reproduction defaults to 16 bytes
//! ([`SuiteParams::max_txn_bytes`]) so that full exploration fits in a CI
//! run. The parameter is adjustable; the decode/boundary behavior the test
//! targets is identical at any size.

use symsc_pk::Kernel;
use symsc_plic::config::THRESHOLD_BASE;
use symsc_plic::{Plic, PlicConfig};
use symsc_symex::{StateDigest, SymCtx, SymWord, Width};
use symsc_tlm::{BlockingTransport, Command, GenericPayload};
use symsysc_core::{TestOutcome, Verifier};

use crate::hart::MockHart;

/// Identifier of one of the paper's five symbolic tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TestId {
    /// Basic interaction test.
    T1,
    /// Interrupt sequence (priority order) test — the paper's Fig. 6.
    T2,
    /// Interrupt masking (threshold) test.
    T3,
    /// TLM read interface test.
    T4,
    /// TLM write interface test.
    T5,
}

impl TestId {
    /// All five tests, in paper order.
    pub const ALL: [TestId; 5] = [TestId::T1, TestId::T2, TestId::T3, TestId::T4, TestId::T5];

    /// Parses the paper's label back into the identifier (the inverse of
    /// [`name`](TestId::name); used by campaign specs that persist test
    /// selections as text).
    pub fn from_name(name: &str) -> Option<TestId> {
        TestId::ALL.into_iter().find(|t| t.name() == name)
    }

    /// The paper's label ("T1" … "T5").
    pub fn name(self) -> &'static str {
        match self {
            TestId::T1 => "T1",
            TestId::T2 => "T2",
            TestId::T3 => "T3",
            TestId::T4 => "T4",
            TestId::T5 => "T5",
        }
    }

    /// A one-line description (paper §5.1).
    pub fn description(self) -> &'static str {
        match self {
            TestId::T1 => "basic interaction: symbolic interrupt, latency, pending, claim, cleanup",
            TestId::T2 => {
                "interrupt sequence: two symbolic lines, symbolic priorities, claim order"
            }
            TestId::T3 => "interrupt masking: symbolic priority vs symbolic threshold",
            TestId::T4 => "TLM read interface: symbolic address and length",
            TestId::T5 => "TLM write interface: symbolic address, length and data",
        }
    }
}

impl std::fmt::Display for TestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable testbench parameters (scaling knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuiteParams {
    /// Buffer size (bytes) for the symbolic-length T4/T5 transactions.
    /// The paper used up to 1000; the default here is 16 for tractable
    /// full exploration.
    pub max_txn_bytes: u32,
}

impl Default for SuiteParams {
    fn default() -> SuiteParams {
        SuiteParams { max_txn_bytes: 16 }
    }
}

/// Instantiates the DUV and its environment: kernel, PLIC, mock HART,
/// with the initialization step already run (all processes started once).
fn setup(ctx: &SymCtx, config: PlicConfig) -> (Kernel, Plic, MockHart) {
    let mut kernel = Kernel::new();
    let plic = Plic::new(ctx, &mut kernel, config);
    let hart = MockHart::new();
    plic.connect_hart(hart.target());
    kernel.step();
    (kernel, plic, hart)
}

/// Publishes the DUV's structural state as a join-point mark: suspended
/// paths whose kernel, PLIC and HART states have reconverged structurally
/// become candidates for subtree adoption under
/// `ExploreOrder::MergeEager`. Under the default exhaustive order the
/// fence costs one digest fold and changes nothing.
fn fence(ctx: &SymCtx, kernel: &Kernel, plic: &Plic, hart: &MockHart) {
    let mut mark = StateDigest::new();
    mark.push_u64(kernel.state_mark());
    mark.push_u64(plic.state_mark());
    mark.push_u64(u64::from(hart.triggered()));
    ctx.note_state("duv", mark.finish());
}

fn write_reg(ctx: &SymCtx, kernel: &mut Kernel, plic: &mut Plic, addr: u32, value: &SymWord) {
    let mut txn = GenericPayload::write(ctx, ctx.word32(addr), 4);
    txn.set_word(0, value.clone());
    plic.b_transport(ctx, kernel, &mut txn);
    ctx.check_concrete(txn.response.is_ok(), "register write must succeed");
}

/// **T1 — basic interaction test.** Triggers a symbolic interrupt and
/// checks delivery within the specified latency, the pending bit, a TLM
/// claim, and the cleanup afterwards. The id ranges over `0..=sources+1`,
/// so the gateway's handling of invalid ids is exercised too (this is what
/// exposes F1 on the faithful PLIC and IF1 under fault injection).
fn t1_basic_interaction(ctx: &SymCtx, config: PlicConfig) {
    let (mut kernel, mut plic, hart) = setup(ctx, config);
    plic.enable_all_sources(ctx);
    for irq in 1..=config.sources {
        plic.set_priority(ctx, irq, 1);
    }

    let i = ctx.symbolic("i_interrupt", Width::W32);
    ctx.assume(&i.ule(&ctx.word32(config.sources + 1)));
    let one = ctx.word32(1);
    let valid = i.uge(&one).and(&i.ule(&ctx.word32(config.sources)));

    plic.trigger_interrupt(ctx, &mut kernel, &i);
    if ctx.decide(&valid) {
        ctx.cover("t1/valid-id");
    } else {
        ctx.cover("t1/invalid-id");
    }

    // Latency: delivery happens exactly one clock cycle after the trigger.
    kernel.run_until(config.clock_cycle);
    if hart.triggered() == 1 {
        ctx.cover("t1/delivered");
    }
    fence(ctx, &kernel, &plic, &hart);
    let fired = ctx.lit(hart.triggered() == 1);
    ctx.check(
        &valid.implies(&fired),
        "interrupt delivered within one clock cycle",
    );

    ctx.check(
        &valid.implies(&plic.pending_bit_symbolic(&i)),
        "pending bit set for triggered interrupt",
    );

    let claimed = hart.claim(ctx, &mut kernel, &mut plic);
    ctx.check(
        &valid.implies(&claimed.eq(&i)),
        "triggered interrupt is claimable",
    );
    ctx.check(
        &valid.implies(&plic.pending_bit_symbolic(&i).not()),
        "pending bit cleared after claim",
    );

    if hart.triggered() > 0 {
        hart.complete(ctx, &mut kernel, &mut plic, &claimed);
        kernel.step();
    }
}

/// **T2 — interrupt sequence test** (the paper's Fig. 6). Two distinct
/// symbolic interrupt lines with symbolic priorities fire simultaneously
/// in zero simulation time; the higher-priority one (lowest id on ties)
/// must be delivered and claimed first, cleaned up, and the second one
/// must follow after completion.
fn t2_interrupt_priority(ctx: &SymCtx, config: PlicConfig) {
    let (mut kernel, mut plic, hart) = setup(ctx, config);

    let i = ctx.symbolic("i_interrupt", Width::W32);
    let j = ctx.symbolic("j_interrupt", Width::W32);
    let n = ctx.word32(config.sources);
    let zero = ctx.word32(0);
    // generate two valid different interrupt ids
    ctx.assume(&i.ule(&n));
    ctx.assume(&i.ugt(&zero));
    ctx.assume(&j.ule(&n));
    ctx.assume(&j.ugt(&zero));
    ctx.assume(&i.ne(&j));

    let p_i = ctx.symbolic("i_priority", Width::W32);
    let p_j = ctx.symbolic("j_priority", Width::W32);
    let one = ctx.word32(1);
    let maxp = ctx.word32(config.max_priority);
    ctx.assume(&p_i.uge(&one));
    ctx.assume(&p_i.ule(&maxp));
    ctx.assume(&p_j.uge(&one));
    ctx.assume(&p_j.ule(&maxp));

    plic.enable_all_sources(ctx);
    plic.set_priority_symbolic(&i, &p_i);
    plic.set_priority_symbolic(&j, &p_j);

    // Trigger both in zero simulation time.
    plic.trigger_interrupt(ctx, &mut kernel, &i);
    plic.trigger_interrupt(ctx, &mut kernel, &j);

    kernel.step(); // advance time to next event
    ctx.check_concrete(
        hart.triggered() == 1,
        "PLIC should have triggered an external interrupt",
    );

    // Is the correct interrupt claimable first?
    let first = hart.claim(ctx, &mut kernel, &mut plic);
    let lower = i.select(&i.ult(&j), &j);
    let j_wins = j.select(&p_j.ugt(&p_i), &lower);
    let expected_first = i.select(&p_i.ugt(&p_j), &j_wins);
    ctx.check(
        &first.eq(&expected_first),
        "interrupt with the highest priority (lowest id on ties) claimed first",
    );
    ctx.check(
        &plic.pending_bit_symbolic(&first).not(),
        "Interrupt was not cleared after claim",
    );

    hart.complete(ctx, &mut kernel, &mut plic, &first);
    kernel.step(); // advance time to next event
    fence(ctx, &kernel, &plic, &hart);

    // The second, lower-prioritized interrupt must follow.
    ctx.check_concrete(
        hart.triggered() == 2,
        "remaining interrupt delivered after completion",
    );
    let second = hart.claim(ctx, &mut kernel, &mut plic);
    let expected_second = j.select(&first.eq(&i), &i);
    ctx.check(
        &second.eq(&expected_second),
        "remaining interrupt claimed second",
    );
    hart.complete(ctx, &mut kernel, &mut plic, &second);
}

/// **T3 — interrupt masking test.** A symbolic interrupt line with a
/// symbolic priority against a symbolic threshold: the interrupt may only
/// fire if its priority is non-zero *and* strictly above the threshold.
fn t3_interrupt_masking(ctx: &SymCtx, config: PlicConfig) {
    let (mut kernel, mut plic, hart) = setup(ctx, config);
    plic.enable_all_sources(ctx);

    let i = ctx.symbolic("i_interrupt", Width::W32);
    let one = ctx.word32(1);
    ctx.assume(&i.uge(&one));
    ctx.assume(&i.ule(&ctx.word32(config.sources)));

    let priority = ctx.symbolic("priority", Width::W32);
    let threshold = ctx.symbolic("threshold", Width::W32);
    let maxp = ctx.word32(config.max_priority);
    ctx.assume(&priority.ule(&maxp));
    ctx.assume(&threshold.ule(&maxp));

    plic.set_priority_symbolic(&i, &priority);
    write_reg(
        ctx,
        &mut kernel,
        &mut plic,
        THRESHOLD_BASE as u32,
        &threshold,
    );

    plic.trigger_interrupt(ctx, &mut kernel, &i);
    kernel.step();
    fence(ctx, &kernel, &plic, &hart);

    let zero = ctx.word32(0);
    let eligible = priority.ugt(&zero).and(&priority.ugt(&threshold));
    if hart.triggered() >= 1 {
        ctx.cover("t3/fired");
    } else {
        ctx.cover("t3/masked");
    }
    let fired = ctx.lit(hart.triggered() >= 1);
    ctx.check(
        &fired.implies(&eligible),
        "interrupt fired only if priority is non-zero and above the threshold",
    );
}

/// **T4 — TLM read interface test.** Triggers an interrupt, then issues a
/// read at a fully symbolic address with a symbolic length. No functional
/// assertions: the engine hunts for generic decode errors (alignment,
/// unmapped addresses, boundary overruns).
fn t4_tlm_read_interface(ctx: &SymCtx, config: PlicConfig, params: SuiteParams) {
    let (mut kernel, mut plic, _hart) = setup(ctx, config);
    plic.enable_all_sources(ctx);
    plic.set_priority(ctx, 6, 1);
    plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(6));

    let addr = ctx.symbolic("addr", Width::W32);
    let len = ctx.symbolic("len", Width::W32);
    ctx.assume(&len.ule(&ctx.word32(params.max_txn_bytes)));

    let mut txn =
        GenericPayload::with_symbolic_length(ctx, Command::Read, addr, len, params.max_txn_bytes);
    plic.b_transport(ctx, &mut kernel, &mut txn);
    if txn.response.is_ok() {
        ctx.cover("t4/accepted");
    } else {
        ctx.cover("t4/rejected");
    }
}

/// **T5 — TLM write interface test.** Triggers an interrupt (without
/// letting the PLIC thread run — the race that exposes F6), then issues a
/// word-aligned write of symbolic data at a symbolic address with a
/// symbolic length.
fn t5_tlm_write_interface(ctx: &SymCtx, config: PlicConfig, params: SuiteParams) {
    let (mut kernel, mut plic, _hart) = setup(ctx, config);
    plic.enable_all_sources(ctx);
    plic.set_priority(ctx, 6, 1);
    plic.trigger_interrupt(ctx, &mut kernel, &ctx.word32(6));

    let addr = ctx.symbolic("addr", Width::W32);
    let len = ctx.symbolic("len", Width::W32);
    let three = ctx.word32(3);
    let zero = ctx.word32(0);
    // The write test focuses on write handling: keep the transaction
    // word-aligned (the alignment assert is T4's finding).
    ctx.assume(&addr.and(&three).eq(&zero));
    ctx.assume(&len.and(&three).eq(&zero));
    ctx.assume(&len.ule(&ctx.word32(params.max_txn_bytes)));

    let mut txn =
        GenericPayload::with_symbolic_length(ctx, Command::Write, addr, len, params.max_txn_bytes);
    for k in 0..txn.data_words() {
        txn.set_word(k, ctx.symbolic(&format!("data_{k}"), Width::W32));
    }
    plic.b_transport(ctx, &mut kernel, &mut txn);
}

/// Builds the testbench closure for `test` — usable with
/// [`Verifier::run`], [`Verifier::replay`] and the random baseline. The
/// closure is `Fn + Send + Sync` (all captures are `Copy` configuration),
/// so it can be explored by a multi-worker [`Explorer`]
/// (`symsc_symex::Explorer`).
pub fn test_bench(
    test: TestId,
    config: PlicConfig,
    params: SuiteParams,
) -> impl Fn(&SymCtx) + Send + Sync {
    move |ctx: &SymCtx| match test {
        TestId::T1 => t1_basic_interaction(ctx, config),
        TestId::T2 => t2_interrupt_priority(ctx, config),
        TestId::T3 => t3_interrupt_masking(ctx, config),
        TestId::T4 => t4_tlm_read_interface(ctx, config, params),
        TestId::T5 => t5_tlm_write_interface(ctx, config, params),
    }
}

/// Runs one test to full exploration under the given verifier budgets.
pub fn run_test(
    test: TestId,
    config: PlicConfig,
    params: &SuiteParams,
    verifier: &Verifier,
) -> TestOutcome {
    verifier.run(test_bench(test, config, *params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{InjectedFault, PlicVariant};

    // Unit tests run the shape-preserving scaled configuration so that
    // debug-mode `cargo test` stays fast; the integration tests and the
    // table binaries run the full FE310.
    fn faithful() -> PlicConfig {
        PlicConfig::fe310_scaled()
    }

    fn fixed() -> PlicConfig {
        PlicConfig::fe310_scaled().variant(PlicVariant::Fixed)
    }

    fn run(test: TestId, config: PlicConfig) -> TestOutcome {
        run_test(
            test,
            config,
            &SuiteParams::default(),
            &Verifier::new(test.name()),
        )
    }

    // ----- Table 1: the faithful PLIC -----

    #[test]
    fn table1_t1_fails_with_one_error() {
        let o = run(TestId::T1, faithful());
        assert_eq!(o.result_label(), "Fail (1)", "{o}");
        // F1: the forgotten gateway assertion.
        assert!(o.report.errors[0].message.contains("out of range"));
    }

    #[test]
    fn table1_t2_passes() {
        let o = run(TestId::T2, faithful());
        assert!(o.passed(), "{o}");
    }

    #[test]
    fn table1_t3_passes() {
        let o = run(TestId::T3, faithful());
        assert!(o.passed(), "{o}");
    }

    #[test]
    fn table1_t4_fails_with_three_errors() {
        let o = run(TestId::T4, faithful());
        assert_eq!(o.result_label(), "Fail (3)", "{o}");
        let messages: Vec<&str> = o
            .report
            .distinct_errors()
            .iter()
            .map(|e| e.message.as_str())
            .collect();
        assert!(
            messages.iter().any(|m| m.contains("aligned")),
            "F2: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("no register mapping")),
            "F3: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("boundary")),
            "F5(read): {messages:?}"
        );
    }

    #[test]
    fn table1_t5_fails_with_four_errors() {
        let o = run(TestId::T5, faithful());
        assert_eq!(o.result_label(), "Fail (4)", "{o}");
        let messages: Vec<&str> = o
            .report
            .distinct_errors()
            .iter()
            .map(|e| e.message.as_str())
            .collect();
        assert!(
            messages.iter().any(|m| m.contains("no register mapping")),
            "F3: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("does not allow")),
            "F4: {messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("boundary")),
            "F5: {messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("without external interrupt in flight")),
            "F6: {messages:?}"
        );
    }

    // ----- the fixed PLIC passes everything -----

    #[test]
    fn fixed_plic_passes_all_five_tests() {
        for test in TestId::ALL {
            let o = run(test, fixed());
            assert!(o.passed(), "{test} on fixed PLIC: {o}");
        }
    }

    // ----- Table 2: injected faults (detection pattern) -----

    #[test]
    fn t1_detects_if1_if2_if4_if5() {
        for fault in [
            InjectedFault::If1OffByOneGateway,
            InjectedFault::If2DropNotifyId13,
            InjectedFault::If4LateNotifyHighIds,
            InjectedFault::If5EarlyClearReturn,
        ] {
            let o = run(TestId::T1, fixed().fault(fault));
            assert!(!o.passed(), "T1 must detect {}", fault.label());
        }
    }

    #[test]
    fn t1_misses_if3_and_if6() {
        for fault in [
            InjectedFault::If3SkipRetrigger,
            InjectedFault::If6ThresholdOffByOne,
        ] {
            let o = run(TestId::T1, fixed().fault(fault));
            assert!(o.passed(), "T1 must not detect {}: {o}", fault.label());
        }
    }

    #[test]
    fn t2_detects_if2_if3_if5() {
        for fault in [
            InjectedFault::If2DropNotifyId13,
            InjectedFault::If3SkipRetrigger,
            InjectedFault::If5EarlyClearReturn,
        ] {
            let o = run(TestId::T2, fixed().fault(fault));
            assert!(!o.passed(), "T2 must detect {}", fault.label());
        }
    }

    #[test]
    fn t2_misses_if1_if4_if6() {
        for fault in [
            InjectedFault::If1OffByOneGateway,
            InjectedFault::If4LateNotifyHighIds,
            InjectedFault::If6ThresholdOffByOne,
        ] {
            let o = run(TestId::T2, fixed().fault(fault));
            assert!(o.passed(), "T2 must not detect {}: {o}", fault.label());
        }
    }

    #[test]
    fn t3_detects_exactly_if6() {
        let o = run(
            TestId::T3,
            fixed().fault(InjectedFault::If6ThresholdOffByOne),
        );
        assert!(!o.passed(), "T3 must detect IF6");
        for fault in [
            InjectedFault::If1OffByOneGateway,
            InjectedFault::If3SkipRetrigger,
            InjectedFault::If4LateNotifyHighIds,
        ] {
            let o = run(TestId::T3, fixed().fault(fault));
            assert!(o.passed(), "T3 must not detect {}: {o}", fault.label());
        }
    }

    #[test]
    fn t4_t5_miss_all_injected_faults() {
        // The interface tests target decode bugs, not interrupt logic.
        for test in [TestId::T4, TestId::T5] {
            for fault in [
                InjectedFault::If2DropNotifyId13,
                InjectedFault::If6ThresholdOffByOne,
            ] {
                let o = run(test, fixed().fault(fault));
                assert!(o.passed(), "{test} must not detect {}: {o}", fault.label());
            }
        }
    }

    // ----- counterexample quality -----

    #[test]
    fn t1_counterexample_is_an_invalid_id() {
        let o = run(TestId::T1, faithful());
        let cex = &o.report.errors[0].counterexample;
        let id = cex.value("i_interrupt");
        let n = u64::from(faithful().sources);
        assert!(id == 0 || id == n + 1, "invalid id, got {id}");
    }

    #[test]
    fn t1_counterexample_replays() {
        let v = Verifier::new("T1");
        let o = run_test(TestId::T1, faithful(), &SuiteParams::default(), &v);
        let cex = o.report.errors[0].counterexample.clone();
        let replayed = v.replay(
            &cex,
            test_bench(TestId::T1, faithful(), SuiteParams::default()),
        );
        assert!(!replayed.passed(), "the bug reproduces concretely");
    }

    #[test]
    fn if2_counterexample_names_id_13() {
        let o = run(TestId::T1, fixed().fault(InjectedFault::If2DropNotifyId13));
        let cex = &o.report.errors[0].counterexample;
        assert_eq!(cex.value("i_interrupt"), 13);
    }

    #[test]
    fn if6_counterexample_has_priority_equal_threshold() {
        let o = run(
            TestId::T3,
            fixed().fault(InjectedFault::If6ThresholdOffByOne),
        );
        let cex = &o.report.errors[0].counterexample;
        assert_eq!(
            cex.value("priority"),
            cex.value("threshold"),
            "IF6 fires exactly at equality"
        );
        assert!(cex.value("priority") > 0);
    }
}

//! # symsc-testbench — the paper's five symbolic PLIC tests
//!
//! The evaluation harness of the reproduction: the five symbolic unit
//! tests of the paper's §5.1 (T1–T5), the mock HART they drive the PLIC
//! with, and a random-testing baseline used where the paper's own baseline
//! (KLEE on the unmodified SystemC kernel) is not reproducible.
//!
//! | Test | Purpose (paper §5.1) |
//! |------|----------------------|
//! | T1   | basic interaction: symbolic interrupt, latency, pending bit, claim, cleanup |
//! | T2   | interrupt sequence: two symbolic lines with symbolic priorities; delivery/claim order |
//! | T3   | interrupt masking: symbolic priority and threshold; fired ⟹ eligible |
//! | T4   | TLM read interface: symbolic address and length |
//! | T5   | TLM write interface: symbolic address, length and data |
//!
//! ```
//! use symsc_plic::PlicConfig;
//! use symsc_testbench::{SuiteParams, TestId};
//! use symsysc_core::Verifier;
//!
//! // T3 passes on the faithful PLIC (Table 1).
//! let params = SuiteParams::default();
//! let outcome = symsc_testbench::run_test(
//!     TestId::T3,
//!     PlicConfig::fe310(),
//!     &params,
//!     &Verifier::new("T3"),
//! );
//! assert!(outcome.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cross;
pub mod hart;
pub mod suite;

pub use baseline::{random_search, random_search_for, BaselineResult};
pub use cross::{cross_bench, run_cross_test, CrossId};
pub use hart::MockHart;
pub use suite::{run_test, test_bench, SuiteParams, TestId};

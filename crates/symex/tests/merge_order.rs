//! Integration: exploration orders are pure optimizations.
//!
//! `MergeEager` adopts finished join-point subtrees instead of
//! re-executing them and `CoverageGuided` reorders the sequential
//! visitation; for both, everything the exhaustive engine reports —
//! path count, errors with counterexamples, coverage bins, branch maps —
//! must stay byte-identical. Only the *work* counters (executed paths,
//! decisions, solver traffic) may differ.

use symsc_symex::{ExploreOrder, Explorer, ForkStrategy, Report, SymCtx, Width};

/// Everything in a report that must not depend on the exploration order.
/// (Work counters — `decisions`, `executed_paths`, solver stats — and
/// `stats.time` legitimately differ between orders.)
fn stable_view(report: &Report) -> String {
    use std::fmt::Write;
    let mut view = String::new();
    writeln!(
        view,
        "paths={} completed={}",
        report.stats.paths, report.completed
    )
    .unwrap();
    for error in &report.errors {
        writeln!(
            view,
            "error path={} kind={:?} msg={} cex={}",
            error.path, error.kind, error.message, error.counterexample
        )
        .unwrap();
    }
    for (point, count) in &report.coverage {
        writeln!(view, "cover {point}={count}").unwrap();
    }
    for (site, bc) in &report.stats.branches {
        writeln!(view, "branch {site:032x}={}/{}", bc.taken, bc.not_taken).unwrap();
    }
    view
}

/// A testbench with a clean join point: a 4-way ladder over the delay
/// input `d`, then a device state independent of which bin was taken,
/// then a 5-way ladder over the id input `i` with an error in the
/// `i == 2` arm. Exhaustive exploration walks 4 x 5 = 20 paths; the
/// merging engine executes the `i`-ladder once and adopts it from the
/// other three delay bins.
fn fenced_bench(ctx: &SymCtx) {
    let d = ctx.symbolic("d", Width::W8);
    let mut bin = 3u64;
    for b in 0..3u64 {
        let hit = d.eq(&ctx.word(b, Width::W8));
        if ctx.decide(&hit) {
            bin = b;
            break;
        }
    }
    ctx.cover(&format!("bin{bin}"));
    // The join: downstream behavior depends only on this published state.
    ctx.note_state("dev", 7);
    let i = ctx.symbolic("i", Width::W8);
    for id in 0..4u64 {
        let hit = i.eq(&ctx.word(id, Width::W8));
        if ctx.decide(&hit) {
            ctx.cover(&format!("id{id}"));
            if id == 2 {
                // Fails exactly on this arm, on every delay bin: the
                // counterexample's `d` value must still reflect the bin.
                ctx.check(&i.ne(&ctx.word(2, Width::W8)), "id 2 is reserved");
            }
            return;
        }
    }
    ctx.cover("id_big");
}

/// A join whose arrivals carry structurally different but logically
/// equivalent range constraints on the suffix variable: the structural
/// diff check fails (both prefixes speak about `i`), so adoption must go
/// through the incremental-SAT implication query.
fn subsumable_bench(ctx: &SymCtx) {
    let s = ctx.symbolic("s", Width::W8);
    let i = ctx.symbolic("i", Width::W32);
    let low = s.ule(&ctx.word(100, Width::W8));
    if ctx.decide(&low) {
        // Range form: i <= 255.
        ctx.assume(&i.ule(&ctx.word(255, Width::W32)));
        ctx.cover("range_form");
    } else {
        // Mask form: i & 0xFF == i — the same fact, different structure.
        ctx.assume(&i.and(&ctx.word(0xFF, Width::W32)).eq(&i));
        ctx.cover("mask_form");
    }
    ctx.note_state("dev", 1);
    for id in 0..3u64 {
        let hit = i.eq(&ctx.word(id, Width::W32));
        if ctx.decide(&hit) {
            ctx.cover(&format!("id{id}"));
            return;
        }
    }
    ctx.cover("id_big");
}

fn explorer(order: ExploreOrder) -> Explorer {
    Explorer::new().workers(1).explore_order(order)
}

#[test]
fn merged_report_is_byte_identical_to_exhaustive() {
    let exhaustive = explorer(ExploreOrder::Exhaustive).explore(fenced_bench);
    let merged = explorer(ExploreOrder::MergeEager).explore(fenced_bench);
    assert_eq!(stable_view(&exhaustive), stable_view(&merged));
    assert_eq!(exhaustive.stats.paths, 20, "4 delay bins x 5 id outcomes");
    assert_eq!(exhaustive.stats.executed_paths, 20);
}

#[test]
fn merging_executes_fewer_paths() {
    let merged = explorer(ExploreOrder::MergeEager).explore(fenced_bench);
    assert_eq!(merged.stats.paths, 20, "represented paths are exhaustive");
    assert!(
        merged.stats.executed_paths < merged.stats.paths,
        "merging must save executions ({} executed, {} represented)",
        merged.stats.executed_paths,
        merged.stats.paths
    );
    assert!(merged.stats.merged_paths > 0, "structural merges happened");
    assert!(merged.stats.join_sites > 0, "the join was registered");
}

#[test]
fn merged_counterexamples_resolve_per_bin() {
    // The error lives in the adopted suffix; its counterexample must be
    // re-solved under each adopter's prefix, so every delay bin reports
    // its own distinct `d` value with `i = 2`.
    let merged = explorer(ExploreOrder::MergeEager).explore(fenced_bench);
    assert_eq!(merged.errors.len(), 4, "one error per delay bin");
    let mut d_values: Vec<u64> = merged
        .errors
        .iter()
        .map(|e| e.counterexample.value("d"))
        .collect();
    for error in &merged.errors {
        assert_eq!(error.counterexample.value("i"), 2);
    }
    d_values.sort_unstable();
    d_values.dedup();
    assert_eq!(d_values.len(), 4, "each bin pins a distinct d");
}

#[test]
fn subsumption_uses_the_implication_query() {
    let exhaustive = explorer(ExploreOrder::Exhaustive).explore(subsumable_bench);
    let merged = explorer(ExploreOrder::MergeEager).explore(subsumable_bench);
    assert_eq!(stable_view(&exhaustive), stable_view(&merged));
    assert!(
        merged.stats.subsumed_paths > 0,
        "equivalent range constraints must be proven by implication \
         (stats: {})",
        merged.stats
    );
    assert!(merged.stats.executed_paths < merged.stats.paths);
}

#[test]
fn merging_is_identical_under_both_fork_strategies() {
    // The trace machinery differs between COW fast-forward (carried
    // error events) and re-execution (re-recorded live); the reports and
    // the merge effect must not.
    let cow = explorer(ExploreOrder::MergeEager)
        .fork_strategy(ForkStrategy::CowSnapshot)
        .explore(fenced_bench);
    let reexec = explorer(ExploreOrder::MergeEager)
        .fork_strategy(ForkStrategy::Reexec)
        .explore(fenced_bench);
    assert_eq!(stable_view(&cow), stable_view(&reexec));
    assert_eq!(cow.stats.executed_paths, reexec.stats.executed_paths);
    assert_eq!(cow.stats.merged_paths, reexec.stats.merged_paths);
}

#[test]
fn merged_parallel_report_matches_sequential() {
    // Parallel MergeEager may adopt less (subtrees in flight elsewhere
    // are executed, not adopted), but the report must stay identical.
    let sequential = explorer(ExploreOrder::MergeEager).explore(fenced_bench);
    for workers in [2, 8] {
        let parallel = explorer(ExploreOrder::MergeEager)
            .workers(workers)
            .explore(fenced_bench);
        assert_eq!(
            stable_view(&sequential),
            stable_view(&parallel),
            "merged report changed between 1 and {workers} workers"
        );
    }
}

#[test]
fn coverage_guided_report_matches_exhaustive() {
    let exhaustive = explorer(ExploreOrder::Exhaustive).explore(fenced_bench);
    let guided = explorer(ExploreOrder::CoverageGuided).explore(fenced_bench);
    assert_eq!(stable_view(&exhaustive), stable_view(&guided));
    assert_eq!(guided.stats.executed_paths, guided.stats.paths);
}

#[test]
fn coverage_guided_promotes_unvisited_sites() {
    // A breadth-heavy bench: the root forks several independent sites, so
    // after the first path finishes, deeper pending snapshots flip sites
    // already seen while shallower ones are fresh — promotions must fire.
    let bench = |ctx: &SymCtx| {
        let a = ctx.symbolic("a", Width::W8);
        let b = ctx.symbolic("b", Width::W8);
        let c = ctx.symbolic("c", Width::W8);
        let zero = ctx.word(0, Width::W8);
        let mut hits = 0u32;
        for (name, v) in [("a", &a), ("b", &b), ("c", &c)] {
            if ctx.decide(&v.eq(&zero)) {
                ctx.cover(name);
                hits += 1;
            }
        }
        ctx.check_concrete(hits <= 3, "unreachable");
    };
    let exhaustive = explorer(ExploreOrder::Exhaustive).explore(bench);
    let guided = explorer(ExploreOrder::CoverageGuided).explore(bench);
    assert_eq!(stable_view(&exhaustive), stable_view(&guided));
    assert!(
        guided.stats.sched_promotions > 0,
        "the scheduler should have promoted at least one snapshot \
         (stats: {})",
        guided.stats
    );
}

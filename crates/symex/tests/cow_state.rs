//! Property test for the copy-on-write state containers.
//!
//! Drives [`CowEnv`]/[`CowVec`] with seeded random operation sequences —
//! bind, assign, push, set, truncate, fork, restore — mirrored against a
//! naive full-clone reference model (`HashMap` / `Vec` deep-copied at
//! every fork). After *every* fork and restore, every binding and every
//! slot is compared against the reference. Any sharing bug — a write
//! leaking through a shared chunk into a sibling, a restore observing a
//! later mutation — shows up as a lookup disagreement.

use std::collections::HashMap;

use symsc_symex::{CowEnv, CowVec};

/// Deterministic xorshift64* PRNG so failures replay from a seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The naive reference: a full deep copy at every fork.
#[derive(Clone)]
struct RefEnv(HashMap<String, u64>);

fn check_env(cow: &CowEnv, reference: &RefEnv, what: &str) {
    assert_eq!(cow.len(), reference.0.len(), "{what}: length diverged");
    for (name, &value) in &reference.0 {
        assert_eq!(
            cow.get(name),
            Some(value),
            "{what}: binding {name} diverged"
        );
    }
    assert_eq!(cow.to_map(), reference.0, "{what}: full map diverged");
}

#[test]
fn env_random_ops_agree_with_full_clone_reference() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed * 0x9e37_79b9);
        // A stack of (cow, reference) pairs: fork pushes, restore pops
        // back to an ancestor and resumes mutation there.
        let mut stack: Vec<(CowEnv, RefEnv)> = vec![(CowEnv::new(), RefEnv(HashMap::new()))];
        for step in 0..400 {
            let op = rng.below(100);
            let depth = stack.len();
            match op {
                // bind: a fresh or existing name
                0..=39 => {
                    let name = format!("v{}", rng.below(48));
                    let value = rng.next();
                    let (cow, reference) = stack.last_mut().expect("stack never empties");
                    cow.bind(&name, value);
                    reference.0.insert(name, value);
                }
                // assign: must agree on whether the name exists
                40..=69 => {
                    let name = format!("v{}", rng.below(64));
                    let value = rng.next();
                    let (cow, reference) = stack.last_mut().expect("stack never empties");
                    let did = cow.assign(&name, value);
                    let expected = reference.0.contains_key(&name);
                    assert_eq!(
                        did, expected,
                        "seed {seed} step {step}: assign hit diverged"
                    );
                    if expected {
                        reference.0.insert(name, value);
                    }
                }
                // fork: push a COW child and a deep-copied reference
                70..=84 => {
                    if depth < 12 {
                        let (cow, reference) = stack.last().expect("stack never empties");
                        let child = (cow.fork(), reference.clone());
                        check_env(&child.0, &child.1, "fresh fork");
                        stack.push(child);
                    }
                }
                // restore: drop back to the parent; its state must be
                // exactly what it was before the child ran (no leaks).
                _ => {
                    if depth > 1 {
                        stack.pop();
                        let (cow, reference) = stack.last().expect("parent");
                        check_env(cow, reference, "restored parent");
                    }
                }
            }
            let (cow, reference) = stack.last().expect("stack never empties");
            check_env(cow, reference, &format!("seed {seed} step {step}"));
        }
        // Every live generation must still agree at the end.
        for (depth, (cow, reference)) in stack.iter().enumerate() {
            check_env(cow, reference, &format!("seed {seed} final depth {depth}"));
        }
    }
}

fn check_vec(cow: &CowVec<u64>, reference: &[u64], what: &str) {
    assert_eq!(cow.len(), reference.len(), "{what}: length diverged");
    for (i, &value) in reference.iter().enumerate() {
        assert_eq!(cow.get(i), Some(&value), "{what}: slot {i} diverged");
    }
    assert_eq!(cow.get(reference.len()), None, "{what}: phantom tail slot");
    let collected: Vec<u64> = cow.iter().copied().collect();
    assert_eq!(collected, reference, "{what}: iteration order diverged");
}

#[test]
fn vec_random_ops_agree_with_full_clone_reference() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed * 0x51_7cc1_b727);
        let mut stack: Vec<(CowVec<u64>, Vec<u64>)> = vec![(CowVec::new(), Vec::new())];
        for step in 0..400 {
            let op = rng.below(100);
            let depth = stack.len();
            match op {
                // push
                0..=39 => {
                    let value = rng.next();
                    let (cow, reference) = stack.last_mut().expect("stack never empties");
                    cow.push(value);
                    reference.push(value);
                }
                // set at a random in-range slot
                40..=64 => {
                    let (cow, reference) = stack.last_mut().expect("stack never empties");
                    if !reference.is_empty() {
                        let i = rng.below(reference.len() as u64) as usize;
                        let value = rng.next();
                        cow.set(i, value);
                        reference[i] = value;
                    }
                }
                // truncate (sometimes past the end: must be a no-op)
                65..=74 => {
                    let (cow, reference) = stack.last_mut().expect("stack never empties");
                    let new_len = rng.below(reference.len() as u64 + 8) as usize;
                    cow.truncate(new_len);
                    reference.truncate(new_len);
                }
                // fork
                75..=89 => {
                    if depth < 12 {
                        let (cow, reference) = stack.last().expect("stack never empties");
                        let child = (cow.clone(), reference.clone());
                        check_vec(&child.0, &child.1, "fresh fork");
                        stack.push(child);
                    }
                }
                // restore to the parent
                _ => {
                    if depth > 1 {
                        stack.pop();
                        let (cow, reference) = stack.last().expect("parent");
                        check_vec(cow, reference, "restored parent");
                    }
                }
            }
            let (cow, reference) = stack.last().expect("stack never empties");
            check_vec(cow, reference, &format!("seed {seed} step {step}"));
        }
        for (depth, (cow, reference)) in stack.iter().enumerate() {
            check_vec(cow, reference, &format!("seed {seed} final depth {depth}"));
        }
    }
}

/// Sibling isolation under *simultaneous* mutation: fork the same parent
/// many times, mutate every child differently, and verify no child (or
/// the parent) sees another's writes.
#[test]
fn sibling_forks_never_observe_each_other() {
    let mut rng = Rng::new(0xdead_beef);
    let mut parent = CowEnv::new();
    let mut parent_ref: HashMap<String, u64> = HashMap::new();
    for i in 0..70u64 {
        let name = format!("slot{i}");
        let value = rng.next();
        parent.bind(&name, value);
        parent_ref.insert(name, value);
    }

    let mut children: Vec<(CowEnv, HashMap<String, u64>)> = (0..8)
        .map(|_| (parent.fork(), parent_ref.clone()))
        .collect();
    for (k, (child, child_ref)) in children.iter_mut().enumerate() {
        for _ in 0..30 {
            let name = format!("slot{}", rng.below(70));
            let value = (k as u64) << 32 | rng.below(1 << 20);
            child.bind(&name, value);
            child_ref.insert(name, value);
        }
        let fresh = format!("child{k}_private");
        child.bind(&fresh, k as u64);
        child_ref.insert(fresh, k as u64);
    }

    check_env(&parent, &RefEnv(parent_ref), "parent after child mutation");
    for (k, (child, child_ref)) in children.iter().enumerate() {
        check_env(child, &RefEnv(child_ref.clone()), &format!("child {k}"));
        for other in 0..8 {
            if other != k {
                assert_eq!(
                    child.get(&format!("child{other}_private")),
                    None,
                    "child {k} sees child {other}'s private binding"
                );
            }
        }
    }
}

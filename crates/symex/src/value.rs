//! Symbolic values: words and booleans.
//!
//! A [`SymWord`] is a bitvector expression bound to its execution context.
//! Arithmetic never forks paths; only *observing* a symbolic boolean (via
//! [`SymCtx::decide`](crate::SymCtx::decide) or [`SymBool::decide`]) does.
//! This split keeps peripheral models looking like ordinary Rust: data
//! flows through operators, control flow goes through `decide`.

use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Not, Shl, Shr, Sub};

use symsc_smt::{TermId, Width};

use crate::ctx::SymCtx;
use crate::error::ErrorKind;

/// A symbolic bitvector value (1–64 bits).
#[derive(Clone)]
pub struct SymWord {
    ctx: SymCtx,
    id: TermId,
    width: Width,
}

impl fmt::Debug for SymWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = self.ctx.with_pool(|p| p.display(self.id));
        write!(f, "SymWord({text})")
    }
}

macro_rules! binop_method {
    ($(#[$doc:meta])* $name:ident, $pool_op:ident) => {
        $(#[$doc])*
        pub fn $name(&self, rhs: &SymWord) -> SymWord {
            let id = self
                .ctx
                .with_pool(|p| p.$pool_op(self.id, rhs.id));
            SymWord::from_raw(self.ctx.clone(), id, self.width)
        }
    };
}

macro_rules! cmp_method {
    ($(#[$doc:meta])* $name:ident, $pool_op:ident) => {
        $(#[$doc])*
        pub fn $name(&self, rhs: &SymWord) -> SymBool {
            let id = self
                .ctx
                .with_pool(|p| p.$pool_op(self.id, rhs.id));
            SymBool::from_raw(self.ctx.clone(), id)
        }
    };
}

impl SymWord {
    pub(crate) fn from_raw(ctx: SymCtx, id: TermId, width: Width) -> SymWord {
        SymWord { ctx, id, width }
    }

    /// The width of this word.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The underlying term id (for engine-integration code).
    pub fn id(&self) -> TermId {
        self.id
    }

    /// The execution context this word is bound to.
    pub fn ctx(&self) -> &SymCtx {
        &self.ctx
    }

    /// The concrete value if this word folded to a constant.
    pub fn as_const(&self) -> Option<u64> {
        self.ctx.with_pool(|p| p.const_value(self.id))
    }

    /// The term's structural fingerprint: a Merkle-style hash that is
    /// identical for structurally identical terms across pools and
    /// workers. The building block for peripheral state digests
    /// ([`SymCtx::note_state`] join points).
    pub fn fingerprint(&self) -> u128 {
        self.ctx.with_pool(|p| p.fingerprint(self.id))
    }

    /// A concrete word in the same context.
    pub fn constant_like(&self, value: u64) -> SymWord {
        self.ctx.word(value, self.width)
    }

    binop_method!(
        /// Wrapping addition.
        add, add
    );
    binop_method!(
        /// Wrapping subtraction.
        sub, sub
    );
    binop_method!(
        /// Wrapping multiplication.
        mul, mul
    );
    binop_method!(
        /// Bitwise and.
        and, and
    );
    binop_method!(
        /// Bitwise or.
        or, or
    );
    binop_method!(
        /// Bitwise exclusive or.
        xor, xor
    );
    binop_method!(
        /// Logical shift left (amounts ≥ width yield zero).
        shl, shl
    );
    binop_method!(
        /// Logical shift right (amounts ≥ width yield zero).
        lshr, lshr
    );
    binop_method!(
        /// Arithmetic shift right (amounts ≥ width replicate the sign).
        ashr, ashr
    );

    /// Bitwise complement.
    pub fn not(&self) -> SymWord {
        let id = self.ctx.with_pool(|p| p.not(self.id));
        SymWord::from_raw(self.ctx.clone(), id, self.width)
    }

    /// Unsigned division. If the divisor can be zero on the current path,
    /// a [`ErrorKind::DivisionByZero`] error is recorded (the software-trap
    /// class of the paper) and the path continues under `divisor != 0`.
    pub fn udiv(&self, rhs: &SymWord) -> SymWord {
        self.guard_div(rhs);
        let id = self.ctx.with_pool(|p| p.udiv(self.id, rhs.id));
        SymWord::from_raw(self.ctx.clone(), id, self.width)
    }

    /// Unsigned remainder, with the same divide-by-zero check as
    /// [`udiv`](Self::udiv).
    pub fn urem(&self, rhs: &SymWord) -> SymWord {
        self.guard_div(rhs);
        let id = self.ctx.with_pool(|p| p.urem(self.id, rhs.id));
        SymWord::from_raw(self.ctx.clone(), id, self.width)
    }

    fn guard_div(&self, rhs: &SymWord) {
        let zero = self.ctx.word(0, rhs.width);
        let nonzero = rhs.ne(&zero);
        self.ctx.engine().check_div_guard(nonzero.id());
    }

    cmp_method!(
        /// Equality.
        eq, eq
    );
    cmp_method!(
        /// Disequality.
        ne, ne
    );
    cmp_method!(
        /// Unsigned less-than.
        ult, ult
    );
    cmp_method!(
        /// Unsigned less-or-equal.
        ule, ule
    );
    cmp_method!(
        /// Unsigned greater-than.
        ugt, ugt
    );
    cmp_method!(
        /// Unsigned greater-or-equal.
        uge, uge
    );
    cmp_method!(
        /// Signed less-than.
        slt, slt
    );
    cmp_method!(
        /// Signed less-or-equal.
        sle, sle
    );

    /// If-then-else over words: `cond ? self : other`.
    pub fn select(&self, cond: &SymBool, other: &SymWord) -> SymWord {
        let id = self.ctx.with_pool(|p| p.ite(cond.id(), self.id, other.id));
        SymWord::from_raw(self.ctx.clone(), id, self.width)
    }

    /// Zero-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the current width.
    pub fn zero_ext(&self, width: Width) -> SymWord {
        let id = self.ctx.with_pool(|p| p.zero_ext(self.id, width));
        SymWord::from_raw(self.ctx.clone(), id, width)
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the current width.
    pub fn sign_ext(&self, width: Width) -> SymWord {
        let id = self.ctx.with_pool(|p| p.sign_ext(self.id, width));
        SymWord::from_raw(self.ctx.clone(), id, width)
    }

    /// Extracts bits `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid for this width.
    pub fn extract(&self, hi: u32, lo: u32) -> SymWord {
        let (id, width) = self.ctx.with_pool(|p| {
            let id = p.extract(self.id, hi, lo);
            (id, p.width(id))
        });
        SymWord::from_raw(self.ctx.clone(), id, width)
    }

    /// Concatenation: `self` becomes the upper bits, `lo` the lower bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&self, lo: &SymWord) -> SymWord {
        let (id, width) = self.ctx.with_pool(|p| {
            let id = p.concat(self.id, lo.id);
            (id, p.width(id))
        });
        SymWord::from_raw(self.ctx.clone(), id, width)
    }

    /// The boolean value of bit `index`.
    pub fn bit(&self, index: u32) -> SymBool {
        let word = self.extract(index, index);
        SymBool::from_raw(self.ctx.clone(), word.id)
    }

    /// Forces this word to a concrete value: if constant, returns it;
    /// otherwise asks the solver for a satisfying value and *constrains the
    /// path* to that value (KLEE-style concretization).
    ///
    /// The pinned value is canonical — a pure function of the path's
    /// structural constraint set, never of solver-cache state or query
    /// history — and the pin is journaled, so a path resumed from a
    /// copy-on-write fork snapshot fast-forwards to the identical value
    /// the original run pinned (see `ForkStrategy`).
    ///
    /// Prefer symbolic assertions; use this only where the model genuinely
    /// needs a native integer (e.g. a loop bound).
    pub fn concretize(&self) -> u64 {
        if let Some(v) = self.as_const() {
            return v;
        }
        self.ctx.engine().concretize(self.id, self.width)
    }
}

macro_rules! std_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for &SymWord {
            type Output = SymWord;
            fn $method(self, rhs: &SymWord) -> SymWord {
                self.$impl_method(rhs)
            }
        }
        impl $trait for SymWord {
            type Output = SymWord;
            fn $method(self, rhs: SymWord) -> SymWord {
                SymWord::$impl_method(&self, &rhs)
            }
        }
    };
}

std_binop!(Add, add, add);
std_binop!(Sub, sub, sub);
std_binop!(BitAnd, bitand, and);
std_binop!(BitOr, bitor, or);
std_binop!(BitXor, bitxor, xor);
std_binop!(Shl, shl, shl);
std_binop!(Shr, shr, lshr);

impl Not for &SymWord {
    type Output = SymWord;
    fn not(self) -> SymWord {
        SymWord::not(self)
    }
}

/// A symbolic boolean (width-1 bitvector).
#[derive(Clone)]
pub struct SymBool {
    ctx: SymCtx,
    id: TermId,
}

impl fmt::Debug for SymBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = self.ctx.with_pool(|p| p.display(self.id));
        write!(f, "SymBool({text})")
    }
}

impl SymBool {
    pub(crate) fn from_raw(ctx: SymCtx, id: TermId) -> SymBool {
        SymBool { ctx, id }
    }

    /// The underlying term id.
    pub fn id(&self) -> TermId {
        self.id
    }

    /// The execution context this boolean is bound to.
    pub fn ctx(&self) -> &SymCtx {
        &self.ctx
    }

    /// The concrete value if this boolean folded to a constant.
    pub fn as_const(&self) -> Option<bool> {
        self.ctx
            .with_pool(|p| p.const_value(self.id).map(|v| v == 1))
    }

    /// The term's structural fingerprint (see [`SymWord::fingerprint`]).
    pub fn fingerprint(&self) -> u128 {
        self.ctx.with_pool(|p| p.fingerprint(self.id))
    }

    /// Logical conjunction.
    pub fn and(&self, rhs: &SymBool) -> SymBool {
        let id = self.ctx.with_pool(|p| p.and(self.id, rhs.id));
        SymBool::from_raw(self.ctx.clone(), id)
    }

    /// Logical disjunction.
    pub fn or(&self, rhs: &SymBool) -> SymBool {
        let id = self.ctx.with_pool(|p| p.or(self.id, rhs.id));
        SymBool::from_raw(self.ctx.clone(), id)
    }

    /// Logical negation.
    pub fn not(&self) -> SymBool {
        let id = self.ctx.with_pool(|p| p.not(self.id));
        SymBool::from_raw(self.ctx.clone(), id)
    }

    /// Logical implication `self -> rhs`.
    pub fn implies(&self, rhs: &SymBool) -> SymBool {
        let id = self.ctx.with_pool(|p| p.implies(self.id, rhs.id));
        SymBool::from_raw(self.ctx.clone(), id)
    }

    /// Resolves to a concrete `bool`, forking if both directions are
    /// feasible. Shorthand for [`SymCtx::decide`](crate::SymCtx::decide).
    pub fn decide(&self) -> bool {
        self.ctx.decide(self)
    }

    /// Converts to a 1-bit [`SymWord`].
    pub fn to_word(&self) -> SymWord {
        SymWord::from_raw(self.ctx.clone(), self.id, Width::W1)
    }
}

impl crate::ctx::SymCtx {
    /// Reports a division-by-zero style guard failure helper; used by the
    /// TLM layer for modeled memory copies.
    pub fn guard_in_bounds(&self, ok: &SymBool, message: &str) {
        if self.decide(&ok.not()) {
            self.fail(ErrorKind::OutOfBounds, message);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::explore::Explorer;
    use crate::Width;

    #[test]
    fn arithmetic_folds_for_concrete_values() {
        Explorer::new().explore(|ctx| {
            let a = ctx.word(6, Width::W32);
            let b = ctx.word(7, Width::W32);
            let p = a.mul(&b);
            assert_eq!(p.as_const(), Some(42));
            let s = &a + &b;
            assert_eq!(s.as_const(), Some(13));
            let d = a.sub(&b);
            assert_eq!(d.as_const(), Some(0xFFFF_FFFF));
        });
    }

    #[test]
    fn operators_compose_symbolically() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let mask = ctx.word(0x0F, Width::W8);
            let low = &x & &mask;
            let sixteen = ctx.word(16, Width::W8);
            // low nibble is always < 16
            ctx.check(&low.ult(&sixteen), "nibble bound");
        });
        assert!(report.passed());
        assert_eq!(report.stats.paths, 1);
    }

    #[test]
    fn bit_extraction() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.eq(&ctx.word(0b1010_0001, Width::W8)));
            let b0 = x.bit(0).to_word();
            let b1 = x.bit(1).to_word();
            ctx.check(&b0.eq(&ctx.word(1, Width::W1)), "bit 0 set");
            ctx.check(&b1.eq(&ctx.word(0, Width::W1)), "bit 1 clear");
        });
        assert!(report.passed());
    }

    #[test]
    fn division_by_possible_zero_reports_trap() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let hundred = ctx.word(100, Width::W8);
            let _ = hundred.udiv(&x); // x may be 0
        });
        assert_eq!(report.errors.len(), 1);
        assert_eq!(
            report.errors[0].kind,
            crate::error::ErrorKind::DivisionByZero
        );
        assert_eq!(report.errors[0].counterexample.value("x"), 0);
    }

    #[test]
    fn division_by_assumed_nonzero_is_silent() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            ctx.assume(&x.ne(&zero));
            let hundred = ctx.word(100, Width::W8);
            let _ = hundred.udiv(&x);
        });
        assert!(report.passed());
    }

    #[test]
    fn select_follows_condition() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let five = ctx.word(5, Width::W8);
            let small = x.ult(&five);
            let a = ctx.word(1, Width::W8);
            let b = ctx.word(2, Width::W8);
            let picked = a.select(&small, &b);
            // (x < 5 && picked == 1) || (x >= 5 && picked == 2)
            let ok_small = small.implies(&picked.eq(&a));
            let ok_big = small.not().implies(&picked.eq(&b));
            ctx.check(&ok_small.and(&ok_big), "select semantics");
        });
        assert!(report.passed());
    }

    #[test]
    fn concretize_pins_the_value() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let ten = ctx.word(10, Width::W8);
            ctx.assume(&x.ult(&ten));
            let v = x.concretize();
            assert!(v < 10);
            // After concretization the word behaves like that constant.
            let k = ctx.word(v, Width::W8);
            ctx.check(&x.eq(&k), "concretization pins value");
        });
        assert!(report.passed());
    }
}

#[cfg(test)]
mod signed_tests {
    use crate::explore::Explorer;
    use crate::Width;

    #[test]
    fn ashr_replicates_the_sign() {
        let report = Explorer::new().explore(|ctx| {
            let neg = ctx.word(0x80, Width::W8);
            let one = ctx.word(1, Width::W8);
            let r = neg.ashr(&one);
            assert_eq!(r.as_const(), Some(0xC0));
        });
        assert!(report.passed());
    }

    #[test]
    fn sign_ext_widens_negative_values() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.eq(&ctx.word(0xFF, Width::W8)));
            let wide = x.sign_ext(Width::W32);
            ctx.check(&wide.eq(&ctx.word32(0xFFFF_FFFF)), "-1 stays -1");
            // And it is still signed-less-than zero at the wider width.
            let zero = ctx.word32(0);
            ctx.check(&wide.slt(&zero), "negative after widening");
        });
        assert!(report.passed());
    }
}

//! State merging, subsumption pruning and join-point bookkeeping.
//!
//! Path count — not solver time — dominates once the fork and solver
//! optimizations are in place, so this module attacks it directly, in the
//! spirit of the path-explosion countermeasures surveyed for hardware
//! symbolic execution: *state merging* at testbench-published join
//! points, *subsumption* of pending states whose constraint set is
//! implied by an already-explored one, and a *heuristic scheduler* next
//! to the exhaustive drain.
//!
//! The unit of sharing is a **join point**: a fork site (structural
//! fingerprint) reached right after the testbench published its live
//! state through [`SymCtx::note_state`](crate::SymCtx::note_state). Two
//! paths arriving at the same site with identical published state marks
//! are at the same *continuation*: everything the suffix does is a
//! function of the published state, the symbolic inputs, and the path
//! constraint set. The first arrival becomes the join's *owner* and
//! explores the whole subtree normally; a later arrival *adopts* the
//! owner's recorded suffix traces — synthesizing one represented path
//! per suffix — instead of re-executing the subtree, provided a
//! soundness check shows its constraint set cannot change any suffix
//! verdict:
//!
//! 1. **structural merge** — the two prefix constraint sets are equal as
//!    fingerprint sets, or differ only in constraints whose variable
//!    support is disjoint from the transitive support closure of the
//!    suffix (so every suffix solver verdict, pinned value and
//!    counterexample model — all defined per independence slice — is
//!    untouched);
//! 2. **subsumption** — otherwise, an incremental-SAT implication query
//!    ([`Solver::check_implied`](symsc_smt::Solver)) proves the two
//!    prefixes mutually imply each other's extra constraints (equivalent
//!    feasible sets ⇒ identical suffix verdicts). Only attempted when
//!    the suffix pins no values and records no errors, because those are
//!    per-slice *models*, not verdicts.
//!
//! Adopted errors are re-solved canonically under the adopter's own
//! prefix (same structural constraint set the exhaustive engine would
//! have solved), which is what keeps merged reports byte-identical to
//! the exhaustive oracle's. All decisions are pure functions of
//! structural fingerprints and canonical constraint sets — the same
//! determinism contract `ForkStrategy::Reexec` pins for forking.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};

use symsc_smt::TranscriptStore;

use crate::error::{ErrorKind, SymError};

/// How the explorer orders and prunes pending paths — the path-explosion
/// countermeasure selector.
///
/// [`Exhaustive`](ExploreOrder::Exhaustive) is the reference semantics
/// and the differential oracle: every feasible path is executed. The
/// other orders must report byte-identical verdicts and coverage; they
/// only change *which* paths are physically executed
/// ([`MergeEager`](ExploreOrder::MergeEager)) or in what order
/// ([`CoverageGuided`](ExploreOrder::CoverageGuided)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExploreOrder {
    /// Execute every feasible path (the default; the oracle).
    #[default]
    Exhaustive,
    /// Prioritize pending snapshots whose fork site has an unvisited
    /// `false` direction — KLEE-style coverage-first scheduling. A pure
    /// visitation order: the explored path set (and the report) is
    /// unchanged. Only meaningful on a sequential exploration, like
    /// [`SearchStrategy`](crate::SearchStrategy).
    CoverageGuided,
    /// Merge and subsume paths at testbench-published join points (see
    /// the [module docs](self)). Reports stay byte-identical to
    /// [`Exhaustive`](ExploreOrder::Exhaustive); `stats.paths` still
    /// counts *represented* paths, while `stats.executed_paths` counts
    /// the (much smaller) number physically executed. Sequential runs
    /// are forced depth-first so every join owner completes its subtree
    /// before any sibling arrives.
    MergeEager,
}

/// One event of a path's structural trace. Recorded only under
/// [`ExploreOrder::MergeEager`]; every fingerprint is pool-independent,
/// so a trace recorded on one worker can be adopted (and its constraint
/// terms rebuilt) on any other.
#[derive(Clone, Debug)]
pub(crate) enum TraceEvent {
    /// A symbolic branch decision at fork-site `site`, taken `dir`.
    Decide { site: u128, dir: bool },
    /// A constraint pushed on the path (decision, assumption or guard).
    Constraint(u128),
    /// A concretization pin `term == value` pushed on the path.
    Pin(u128),
    /// A functional-coverage bin hit.
    Cover(String),
    /// A symbolic input declared (first declaration on the path).
    Input(String),
    /// An error recorded on the path. `cons_hwm` is the number of
    /// constraints pushed *before* the error (trace-local coordinates);
    /// `neg` is the violated condition's negation (the solve focus), or
    /// `None` for errors solved against the bare path constraints.
    Error {
        kind: ErrorKind,
        message: String,
        cons_hwm: usize,
        neg: Option<u128>,
    },
}

/// A completed path's structural trace: its decision vector plus the
/// event stream that produced it. Adoption replays these *as data*.
#[derive(Clone, Debug)]
pub(crate) struct PathTrace {
    pub(crate) taken: Vec<bool>,
    pub(crate) events: Vec<TraceEvent>,
}

/// The first path to arrive at a join key: its decision prefix (the
/// subtree root) and its prefix constraint set as fingerprints.
#[derive(Clone, Debug)]
pub(crate) struct OwnerEntry {
    pub(crate) prefix: Vec<bool>,
    pub(crate) fps: Vec<u128>,
}

/// Merge/subsumption counters, folded into
/// [`ExplorationStats`](crate::ExplorationStats).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct MergeCounters {
    pub(crate) merged_paths: u64,
    pub(crate) subsumed_paths: u64,
    pub(crate) join_sites: u64,
    pub(crate) merge_rejects: u64,
}

/// One explored path, as harvested from a worker or synthesized by an
/// adoption: everything needed to reconstruct the canonical report.
pub(crate) struct PathRecord {
    /// The branch directions taken, which identify the path uniquely and
    /// define its canonical (depth-first) position.
    pub(crate) taken: Vec<bool>,
    /// Errors recorded on this path (path indices renumbered at merge).
    pub(crate) errors: Vec<SymError>,
    /// Coverage bins hit on this path.
    pub(crate) coverage: BTreeSet<String>,
    /// `(fork-site fingerprint, direction)` pairs decided on this path.
    pub(crate) branches: BTreeSet<(u128, bool)>,
}

/// The exploration-wide merge state, shared by all workers.
#[derive(Default)]
pub(crate) struct MergeState {
    /// Pool-independent term structure for every fingerprint referenced
    /// by an owner entry or a stored trace.
    pub(crate) store: TranscriptStore,
    /// Join key → first arrival.
    pub(crate) owners: HashMap<u128, OwnerEntry>,
    /// Traces of completed paths — executed and synthesized alike, so
    /// adoption composes (an outer join can adopt paths an inner join
    /// synthesized).
    pub(crate) traces: Vec<PathTrace>,
    /// Live-unit coverage: for every pending-or-running unit of work
    /// (keyed by its forced prefix), a count at the unit's prefix and
    /// every ancestor. `cover[p] > 0` ⇔ some live unit's subtree
    /// intersects the subtree under `p`.
    cover: HashMap<Vec<bool>, u64>,
    pub(crate) counters: MergeCounters,
}

impl MergeState {
    /// Whether any pending or running unit of work can still produce a
    /// path under `prefix` — i.e. the subtree is *not* fully explored.
    pub(crate) fn subtree_active(&self, prefix: &[bool]) -> bool {
        self.cover.get(prefix).copied().unwrap_or(0) > 0
    }

    fn bump(&mut self, prefix: &[bool], up: bool) {
        for k in 0..=prefix.len() {
            let key = prefix[..k].to_vec();
            if up {
                *self.cover.entry(key).or_insert(0) += 1;
            } else {
                let slot = self
                    .cover
                    .get_mut(&key)
                    .expect("removing a unit that was never added");
                *slot -= 1;
                if *slot == 0 {
                    self.cover.remove(&key);
                }
            }
        }
    }
}

/// Cross-worker handle to the merge state (a plain mutex: merge-lock
/// sections are short — solver work happens outside the lock).
#[derive(Default)]
pub(crate) struct MergeShared {
    state: Mutex<MergeState>,
}

impl MergeShared {
    pub(crate) fn new() -> MergeShared {
        MergeShared::default()
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, MergeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a pending-or-running unit of work by its forced prefix.
    pub(crate) fn add_unit(&self, prefix: &[bool]) {
        self.lock().bump(prefix, true);
    }

    /// Removes a completed unit. Callers must add the units it forked
    /// *before* removing it, so a subtree never looks complete early.
    pub(crate) fn remove_unit(&self, prefix: &[bool]) {
        self.lock().bump(prefix, false);
    }

    pub(crate) fn counters(&self) -> MergeCounters {
        self.lock().counters
    }
}

/// FNV-1a over 128-bit words — the join-key mixer. Deterministic and
/// pool-independent, like everything it hashes.
fn fnv128(acc: u128, word: u128) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = acc;
    for chunk in [word as u64, (word >> 64) as u64] {
        h ^= u128::from(chunk);
        h = h.wrapping_mul(PRIME);
    }
    h
}

const FNV_OFFSET: u128 = 0x6C62_272E_07BB_0142_62B8_2175_6295_C58D;

/// Hashes a path's published state marks (tag → digest map).
pub(crate) fn hash_marks(marks: &BTreeMap<String, u64>) -> u128 {
    let mut h = FNV_OFFSET;
    for (tag, digest) in marks {
        for byte in tag.bytes() {
            h = fnv128(h, u128::from(byte));
        }
        h = fnv128(h, u128::from(*digest));
    }
    h
}

/// The join key: a pure function of the fork-site fingerprint and the
/// published state marks — identical on every worker and in every pool.
pub(crate) fn join_key(site: u128, mark_hash: u128) -> u128 {
    fnv128(fnv128(FNV_OFFSET, site), mark_hash)
}

/// An order-sensitive accumulator for peripheral state digests.
///
/// Peripherals fold their observable state — term fingerprints
/// ([`crate::SymWord::fingerprint`]), concrete flags, counters — into a
/// digest and publish it via [`crate::SymCtx::note_state`]. Two states
/// fold to the same digest exactly when their symbolic registers are
/// structurally identical, so the digest is deterministic across pools,
/// workers and fork strategies.
#[derive(Clone, Debug)]
pub struct StateDigest {
    h: u128,
}

impl StateDigest {
    /// A fresh digest (FNV-1a offset basis).
    pub fn new() -> StateDigest {
        StateDigest { h: FNV_OFFSET }
    }

    /// Folds a 128-bit term fingerprint.
    pub fn push(&mut self, fingerprint: u128) {
        self.h = fnv128(self.h, fingerprint);
    }

    /// Folds a concrete 64-bit value (booleans, counters, lengths).
    pub fn push_u64(&mut self, value: u64) {
        self.push(u128::from(value));
    }

    /// Folds a byte string, length-prefixed so distinct concatenations
    /// fold distinctly (used by the campaign orchestrator to fingerprint
    /// specs and serialized results).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push_u64(bytes.len() as u64);
        for b in bytes {
            self.push(u128::from(*b));
        }
    }

    /// Folds a string (UTF-8 bytes, length-prefixed).
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Folds a concrete boolean (handshake flags, option discriminants —
    /// the cycle-level model's notification registers fold these).
    pub fn push_bool(&mut self, value: bool) {
        self.push_u64(u64::from(value));
    }

    /// The folded digest, ready for [`crate::SymCtx::note_state`].
    pub fn finish(&self) -> u64 {
        (self.h as u64) ^ ((self.h >> 64) as u64)
    }
}

impl Default for StateDigest {
    fn default() -> StateDigest {
        StateDigest::new()
    }
}

/// A trace's continuation from a join at decision depth `depth`: the
/// remaining decision directions, the event tail (starting at the join
/// decision itself), and how many constraints the trace pushed before
/// the tail (for rebasing error high-water marks).
#[derive(Clone, Debug)]
pub(crate) struct Suffix {
    pub(crate) taken_tail: Vec<bool>,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) pre_cons: usize,
}

impl Suffix {
    /// Whether the suffix pins concretized values or records errors —
    /// per-slice *models* rather than verdicts, which the implication
    /// (subsumption) check cannot preserve.
    pub(crate) fn has_models(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::Pin(_) | TraceEvent::Error { .. }))
    }
}

/// Splits a completed trace at decision depth `depth` (the join
/// decision's index in `taken`). Returns `None` if the trace has no
/// decision at that depth.
pub(crate) fn split_suffix(trace: &PathTrace, depth: usize) -> Option<Suffix> {
    if trace.taken.len() <= depth {
        return None;
    }
    let mut decides = 0usize;
    let mut pre_cons = 0usize;
    for (i, event) in trace.events.iter().enumerate() {
        match event {
            TraceEvent::Decide { .. } => {
                if decides == depth {
                    return Some(Suffix {
                        taken_tail: trace.taken[depth..].to_vec(),
                        events: trace.events[i..].to_vec(),
                        pre_cons,
                    });
                }
                decides += 1;
            }
            TraceEvent::Constraint(_) | TraceEvent::Pin(_) => pre_cons += 1,
            _ => {}
        }
    }
    None
}

/// The transitive support closure of the suffix constraint set, grown
/// over the `common` prefix constraints: every input name the suffix
/// queries can reach through shared-variable chains. A prefix constraint
/// whose support is disjoint from this closure lives in an independence
/// slice no suffix query ever touches — suffix verdicts, pinned values
/// and counterexample models are invariant to it ("models are defined
/// per slice").
pub(crate) fn suffix_closure(
    store: &mut TranscriptStore,
    suffix_fps: &BTreeSet<u128>,
    prefix: &BTreeSet<u128>,
) -> BTreeSet<String> {
    let mut closure: BTreeSet<String> = BTreeSet::new();
    for &fp in suffix_fps {
        closure.extend(store.support_names(fp).iter().cloned());
    }
    // Fixpoint over *all* prefix constraints (common and diffs alike): a
    // constraint bridging a closure variable to a fresh one pulls the
    // fresh one in, so at fixpoint every prefix constraint has support
    // either fully inside or fully outside the closure — the constraint
    // graph is split into a suffix-observable component and independent
    // slices.
    let mut absorbed: BTreeSet<u128> = BTreeSet::new();
    loop {
        let mut changed = false;
        for &fp in prefix {
            if absorbed.contains(&fp) {
                continue;
            }
            let support = store.support_names(fp);
            if support.iter().any(|name| closure.contains(name)) {
                closure.extend(support.iter().cloned());
                absorbed.insert(fp);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    closure
}

/// Whether `fp`'s support touches the closure — i.e. whether the suffix
/// can observe this prefix constraint at all.
pub(crate) fn touches_closure(
    store: &mut TranscriptStore,
    closure: &BTreeSet<String>,
    fp: u128,
) -> bool {
    store
        .support_names(fp)
        .iter()
        .any(|name| closure.contains(name))
}

/// The structural-merge soundness check: every `diff` constraint's
/// support must be disjoint from the suffix closure (grown over common
/// and diff constraints alike). The adoption path inlines this
/// partitioning to also collect the *harmful* diffs; this composed form
/// is kept for the unit tests.
#[cfg(test)]
pub(crate) fn closure_disjoint(
    store: &mut TranscriptStore,
    suffix_fps: &BTreeSet<u128>,
    common: &BTreeSet<u128>,
    diffs: &BTreeSet<u128>,
) -> bool {
    let prefix: BTreeSet<u128> = common.union(diffs).copied().collect();
    let closure = suffix_closure(store, suffix_fps, &prefix);
    diffs
        .iter()
        .all(|&fp| !touches_closure(store, &closure, fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_smt::{TermPool, Width};

    #[test]
    fn join_keys_separate_sites_and_marks() {
        let mut marks = BTreeMap::new();
        marks.insert("plic".to_string(), 1u64);
        let a = join_key(10, hash_marks(&marks));
        let b = join_key(11, hash_marks(&marks));
        marks.insert("plic".to_string(), 2u64);
        let c = join_key(10, hash_marks(&marks));
        assert_ne!(a, b, "different sites, different keys");
        assert_ne!(a, c, "different marks, different keys");
        let mut same = BTreeMap::new();
        same.insert("plic".to_string(), 1u64);
        assert_eq!(a, join_key(10, hash_marks(&same)), "keys are pure");
    }

    #[test]
    fn unit_cover_tracks_subtrees() {
        let shared = MergeShared::new();
        shared.add_unit(&[]);
        shared.add_unit(&[true, false]);
        {
            let st = shared.lock();
            assert!(st.subtree_active(&[]));
            assert!(st.subtree_active(&[true]));
            assert!(st.subtree_active(&[true, false]));
            assert!(!st.subtree_active(&[true, false, true]));
            assert!(!st.subtree_active(&[false]));
        }
        shared.remove_unit(&[true, false]);
        {
            let st = shared.lock();
            assert!(!st.subtree_active(&[true]), "only the root unit is live");
            assert!(st.subtree_active(&[]));
        }
        shared.remove_unit(&[]);
        assert!(!shared.lock().subtree_active(&[]));
    }

    #[test]
    fn split_suffix_finds_the_join_decision() {
        let trace = PathTrace {
            taken: vec![true, false, true],
            events: vec![
                TraceEvent::Constraint(1),
                TraceEvent::Decide {
                    site: 10,
                    dir: true,
                },
                TraceEvent::Constraint(2),
                TraceEvent::Pin(3),
                TraceEvent::Decide {
                    site: 20,
                    dir: false,
                },
                TraceEvent::Constraint(4),
                TraceEvent::Cover("bin".to_string()),
                TraceEvent::Decide {
                    site: 30,
                    dir: true,
                },
                TraceEvent::Constraint(5),
            ],
        };
        let suffix = split_suffix(&trace, 1).expect("depth 1 exists");
        assert_eq!(suffix.taken_tail, vec![false, true]);
        assert_eq!(suffix.pre_cons, 3, "constraint 1, 2 and the pin");
        assert!(matches!(
            suffix.events[0],
            TraceEvent::Decide { site: 20, .. }
        ));
        assert!(!suffix.has_models(), "no pins or errors after depth 1");
        let deep = split_suffix(&trace, 2).expect("depth 2 exists");
        assert!(!deep.has_models());
        assert!(split_suffix(&trace, 3).is_none());
    }

    #[test]
    fn closure_check_blocks_connected_diffs_only() {
        let mut pool = TermPool::new();
        let mut store = TranscriptStore::new();
        let i = pool.var("i", Width::W32);
        let t = pool.var("t", Width::W32);
        let four = pool.constant(4, Width::W32);
        let suffix_c = pool.ult(i, four); // suffix speaks about i
        let common_c = pool.ult(t, four); // common speaks about t
        let diff_t = pool.eq(t, four); // diff over t: disjoint from {i}
        let diff_i = pool.eq(i, four); // diff over i: connected
        let sfp = store.encode(&pool, suffix_c);
        let cfp = store.encode(&pool, common_c);
        let dt = store.encode(&pool, diff_t);
        let di = store.encode(&pool, diff_i);
        let suffix: BTreeSet<u128> = [sfp].into();
        let common: BTreeSet<u128> = [cfp].into();
        assert!(closure_disjoint(&mut store, &suffix, &common, &[dt].into()));
        assert!(!closure_disjoint(
            &mut store,
            &suffix,
            &common,
            &[di].into()
        ));

        // A bridging common constraint connects t to i transitively.
        let bridge = pool.eq(i, t);
        let bfp = store.encode(&pool, bridge);
        let common2: BTreeSet<u128> = [cfp, bfp].into();
        assert!(
            !closure_disjoint(&mut store, &suffix, &common2, &[dt].into()),
            "i == t pulls t into the suffix closure"
        );
    }
}

//! Symbolic-index arrays.
//!
//! KLEE models memory as flat arrays that can be read and written at
//! symbolic offsets without forking. [`SymArray`] reproduces that for
//! word arrays: `select` builds an if-then-else chain over the entries and
//! `store` merges the new value into every entry under an equality guard.
//! Both are pure dataflow — no path forks — so a peripheral register file
//! indexed by a symbolic address stays single-path, exactly as in KLEE.

use symsc_smt::Width;

use crate::cow::CowVec;
use crate::ctx::SymCtx;
use crate::value::SymWord;

/// A fixed-size array of words supporting symbolic indices.
///
/// The words live in a [`CowVec`], so cloning an array — as the
/// peripheral snapshot/restore APIs do at every fork — costs a handful of
/// Arc bumps, and a post-fork write copies only the chunk it lands in.
///
/// # Example
///
/// ```
/// use symsc_symex::{Explorer, Width};
/// use symsc_symex::array::SymArray;
///
/// let report = Explorer::new().explore(|ctx| {
///     let mut a = SymArray::filled(ctx, 4, 0, Width::W32);
///     let i = ctx.symbolic("i", Width::W32);
///     let four = ctx.word32(4);
///     ctx.assume(&i.ult(&four));
///     a.store(&i, &ctx.word32(7));
///     let read_back = a.select(&i);
///     ctx.check(&read_back.eq(&ctx.word32(7)), "read-after-write");
/// });
/// assert!(report.passed());
/// ```
#[derive(Clone, Debug)]
pub struct SymArray {
    ctx: SymCtx,
    words: CowVec<SymWord>,
    width: Width,
}

impl SymArray {
    /// An array of `len` words, all holding the concrete `fill` value.
    pub fn filled(ctx: &SymCtx, len: usize, fill: u64, width: Width) -> SymArray {
        let words: CowVec<SymWord> = (0..len).map(|_| ctx.word(fill, width)).collect();
        SymArray {
            ctx: ctx.clone(),
            words,
            width,
        }
    }

    /// An array built from explicit words.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in width or `words` is empty.
    pub fn from_words(ctx: &SymCtx, words: Vec<SymWord>) -> SymArray {
        assert!(!words.is_empty(), "SymArray must be non-empty");
        let width = words[0].width();
        assert!(
            words.iter().all(|w| w.width() == width),
            "SymArray words must share a width"
        );
        SymArray {
            ctx: ctx.clone(),
            words: words.into_iter().collect(),
            width,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array is empty (never true for constructed arrays).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The element width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Reads at a *concrete* index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &SymWord {
        self.words.get(index).expect("SymArray index out of range")
    }

    /// Writes at a *concrete* index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, value: SymWord) {
        assert_eq!(value.width(), self.width, "width mismatch");
        self.words.set(index, value);
    }

    /// Reads at a symbolic index without forking (ite chain). Out-of-range
    /// indices read as zero; callers are expected to bounds-check first,
    /// as KLEE's memory model reports such accesses separately.
    pub fn select(&self, index: &SymWord) -> SymWord {
        let mut acc = self.ctx.word(0, self.width);
        for (i, w) in self.words.iter().enumerate() {
            let k = self.ctx.word(i as u64, index.width());
            let here = index.eq(&k);
            acc = w.select(&here, &acc);
        }
        acc
    }

    /// Writes at a symbolic index without forking (guarded merge into each
    /// entry). Out-of-range indices write nowhere.
    pub fn store(&mut self, index: &SymWord, value: &SymWord) {
        assert_eq!(value.width(), self.width, "width mismatch");
        for i in 0..self.words.len() {
            let k = self.ctx.word(i as u64, index.width());
            let here = index.eq(&k);
            let merged = value.select(&here, self.words.get(i).expect("in range"));
            self.words.set(i, merged);
        }
    }

    /// Iterates over the words (concrete order).
    pub fn iter(&self) -> impl Iterator<Item = &SymWord> + '_ {
        self.words.iter()
    }

    /// Folds the element fingerprints into `digest`, in index order.
    ///
    /// Two arrays fold identically exactly when they are structurally
    /// equal word for word, so peripherals can publish array-backed
    /// register state through [`crate::StateDigest`] /
    /// [`SymCtx::note_state`](crate::SymCtx::note_state) without deep
    /// comparisons.
    pub fn fold_digest(&self, digest: &mut crate::StateDigest) {
        digest.push_u64(self.words.len() as u64);
        for w in self.words.iter() {
            digest.push(w.fingerprint());
        }
    }

    /// A structural hash of the array: a pure function of the element
    /// terms' structure (see [`SymWord::fingerprint`]).
    pub fn structural_hash(&self) -> u64 {
        let mut digest = crate::StateDigest::new();
        self.fold_digest(&mut digest);
        digest.finish()
    }

    /// Like [`select`](SymArray::select), but with KLEE-style memory
    /// checking: if the index can exceed the array bounds on the current
    /// path, an [`OutOfBounds`](crate::ErrorKind::OutOfBounds) error is
    /// recorded with a counterexample and the erring path terminates; the
    /// surviving path continues under `index < len`.
    pub fn select_checked(&self, index: &SymWord, what: &str) -> SymWord {
        self.bounds_guard(index, what);
        self.select(index)
    }

    /// Like [`store`](SymArray::store), with the same bounds checking as
    /// [`select_checked`](SymArray::select_checked).
    pub fn store_checked(&mut self, index: &SymWord, value: &SymWord, what: &str) {
        self.bounds_guard(index, what);
        self.store(index, value);
    }

    fn bounds_guard(&self, index: &SymWord, what: &str) {
        let len = self.ctx.word(self.words.len() as u64, index.width());
        let oob = index.uge(&len);
        if self.ctx.decide(&oob) {
            self.ctx.fail(
                crate::ErrorKind::OutOfBounds,
                format!("index out of bounds accessing {what}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn concrete_access_round_trip() {
        Explorer::new().explore(|ctx| {
            let mut a = SymArray::filled(ctx, 3, 0, Width::W32);
            a.set(1, ctx.word32(42));
            assert_eq!(a.get(1).as_const(), Some(42));
            assert_eq!(a.get(0).as_const(), Some(0));
            assert_eq!(a.len(), 3);
        });
    }

    #[test]
    fn symbolic_select_does_not_fork() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = SymArray::filled(ctx, 4, 0, Width::W32);
            for i in 0..4 {
                a.set(i, ctx.word32(i as u32 * 10));
            }
            let i = ctx.symbolic("i", Width::W32);
            ctx.assume(&i.ult(&ctx.word32(4)));
            let v = a.select(&i);
            let ten_i = i.mul(&ctx.word32(10));
            ctx.check(&v.eq(&ten_i), "select reads entry i");
        });
        assert!(report.passed());
        assert_eq!(report.stats.paths, 1, "select must not fork");
    }

    #[test]
    fn symbolic_store_updates_exactly_one_entry() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = SymArray::filled(ctx, 4, 5, Width::W32);
            let i = ctx.symbolic("i", Width::W32);
            ctx.assume(&i.ult(&ctx.word32(4)));
            a.store(&i, &ctx.word32(99));
            // Entry i is 99; all others still 5.
            let j = ctx.symbolic("j", Width::W32);
            ctx.assume(&j.ult(&ctx.word32(4)));
            let v = a.select(&j);
            let same = j.eq(&i);
            let expect_hit = same.implies(&v.eq(&ctx.word32(99)));
            let expect_miss = same.not().implies(&v.eq(&ctx.word32(5)));
            ctx.check(&expect_hit.and(&expect_miss), "single-entry store");
        });
        assert!(report.passed());
    }

    #[test]
    fn out_of_range_select_reads_zero() {
        let report = Explorer::new().explore(|ctx| {
            let a = SymArray::filled(ctx, 2, 7, Width::W32);
            let big = ctx.word32(100);
            let v = a.select(&big);
            ctx.check(&v.eq(&ctx.word32(0)), "oob reads zero");
        });
        assert!(report.passed());
    }

    #[test]
    fn width_mismatch_is_reported_as_model_panic() {
        // Inside an exploration, model panics become ModelPanic errors.
        let report = Explorer::new().max_paths(1).explore(|ctx| {
            let mut a = SymArray::filled(ctx, 2, 0, Width::W32);
            a.set(0, ctx.word(1, Width::W8));
        });
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, crate::ErrorKind::ModelPanic);
        assert!(report.errors[0].message.contains("width mismatch"));
    }
}

#[cfg(test)]
mod checked_tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::ErrorKind;

    #[test]
    fn checked_select_reports_possible_overrun() {
        let report = Explorer::new().explore(|ctx| {
            let a = SymArray::filled(ctx, 4, 0, Width::W32);
            let i = ctx.symbolic("i", Width::W32);
            ctx.assume(&i.ule(&ctx.word32(5))); // 4 and 5 overrun
            let _ = a.select_checked(&i, "scratch array");
        });
        assert_eq!(report.distinct_errors().len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.kind, ErrorKind::OutOfBounds);
        assert!(e.counterexample.value("i") >= 4);
        assert_eq!(report.stats.paths, 2, "error path + in-bounds path");
    }

    #[test]
    fn checked_store_is_silent_when_bounded() {
        let report = Explorer::new().explore(|ctx| {
            let mut a = SymArray::filled(ctx, 4, 0, Width::W32);
            let i = ctx.symbolic("i", Width::W32);
            ctx.assume(&i.ult(&ctx.word32(4)));
            a.store_checked(&i, &ctx.word32(9), "scratch array");
            let v = a.select_checked(&i, "scratch array");
            ctx.check(&v.eq(&ctx.word32(9)), "round trip");
        });
        assert!(report.passed(), "{report}");
        assert_eq!(report.stats.paths, 1);
    }
}

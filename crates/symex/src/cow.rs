//! Copy-on-write persistent containers for snapshot forking.
//!
//! A fork must capture the forking path's live state — concretization
//! journal, register words, scheduler maps — in O(changed state), not
//! O(total state). [`CowVec`] is the workhorse: an Arc-chunked vector
//! whose clone is a handful of reference-count bumps. Writes go through
//! [`Arc::make_mut`], so a chunk is deep-copied only the first time a
//! fork diverges from its siblings inside that chunk (clone-on-first-
//! write). [`CowEnv`] layers a name → value environment on top for
//! snapshot-friendly variable maps.

use std::collections::HashMap;
use std::sync::Arc;

/// Entries per chunk. Small enough that a diverging write copies little,
/// large enough that a clone touches few Arcs. 32 words ≈ one cache line
/// of pointers per 1024 entries.
const CHUNK: usize = 32;

/// A persistent vector: `clone` is O(len / CHUNK) reference-count bumps,
/// and a write after a clone copies only the chunk it lands in.
///
/// # Example
///
/// ```
/// use symsc_symex::cow::CowVec;
///
/// let mut a: CowVec<u64> = CowVec::new();
/// a.push(1);
/// a.push(2);
/// let b = a.clone();      // O(chunks), shares storage
/// a.set(0, 99);           // copies one chunk; b is untouched
/// assert_eq!(a.get(0), Some(&99));
/// assert_eq!(b.get(0), Some(&1));
/// ```
#[derive(Clone, Debug)]
pub struct CowVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T: Clone> Default for CowVec<T> {
    fn default() -> CowVec<T> {
        CowVec::new()
    }
}

impl<T: Clone> CowVec<T> {
    /// An empty vector.
    pub fn new() -> CowVec<T> {
        CowVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        self.chunks[index / CHUNK].get(index % CHUNK)
    }

    /// Overwrites the entry at `index`, copying its chunk if shared.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, value: T) {
        assert!(index < self.len, "CowVec::set out of range");
        let chunk = Arc::make_mut(&mut self.chunks[index / CHUNK]);
        chunk[index % CHUNK] = value;
    }

    /// Appends an entry, copying the last chunk if shared.
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(CHUNK) {
            let mut fresh = Vec::with_capacity(CHUNK);
            fresh.push(value);
            self.chunks.push(Arc::new(fresh));
        } else {
            let chunk = Arc::make_mut(self.chunks.last_mut().expect("partial chunk"));
            chunk.push(value);
        }
        self.len += 1;
    }

    /// Shortens the vector to `new_len` entries (no-op if already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        let keep_chunks = new_len.div_ceil(CHUNK);
        self.chunks.truncate(keep_chunks);
        if !new_len.is_multiple_of(CHUNK) {
            let chunk = Arc::make_mut(self.chunks.last_mut().expect("partial chunk"));
            chunk.truncate(new_len % CHUNK);
        }
        self.len = new_len;
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Iterates over the entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Builds a vector from an iterator of entries.
    pub fn from_iter_items(items: impl IntoIterator<Item = T>) -> CowVec<T> {
        let mut v = CowVec::new();
        for item in items {
            v.push(item);
        }
        v
    }

    /// Folds the vector into a [`StateDigest`](crate::StateDigest): the
    /// length followed by each entry's extracted fingerprint, in order.
    /// The extraction closure lets pool-owned values (e.g. `SymWord`)
    /// contribute their structural fingerprint, so two vectors digest
    /// equal exactly when their entries are structurally equal —
    /// independent of which worker's term pool they live in.
    pub fn fold_digest(&self, digest: &mut crate::StateDigest, mut f: impl FnMut(&T) -> u128) {
        digest.push_u64(self.len as u64);
        for item in self.iter() {
            digest.push(f(item));
        }
    }
}

impl<T: Clone> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> CowVec<T> {
        CowVec::from_iter_items(iter)
    }
}

impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &CowVec<T>) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Clone + Eq> Eq for CowVec<T> {}

/// A persistent `name -> u64` environment with fork semantics.
///
/// Bindings live in a [`CowVec`] of slots; the name → slot index map is
/// Arc-shared and copied only when a *new* name is bound after a fork.
/// Assigning an existing name touches one slot chunk. [`fork`](CowEnv::fork)
/// is therefore O(chunks) and two forks never observe each other's writes.
#[derive(Clone, Debug, Default)]
pub struct CowEnv {
    index: Arc<HashMap<String, usize>>,
    slots: CowVec<u64>,
}

impl CowEnv {
    /// An empty environment.
    pub fn new() -> CowEnv {
        CowEnv::default()
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Binds `name` to `value`, creating the binding if absent.
    pub fn bind(&mut self, name: &str, value: u64) {
        if let Some(&slot) = self.index.get(name) {
            self.slots.set(slot, value);
            return;
        }
        let index = Arc::make_mut(&mut self.index);
        index.insert(name.to_string(), self.slots.len());
        self.slots.push(value);
    }

    /// Overwrites an existing binding; returns `false` if `name` is unbound.
    pub fn assign(&mut self, name: &str, value: u64) -> bool {
        match self.index.get(name) {
            Some(&slot) => {
                self.slots.set(slot, value);
                true
            }
            None => false,
        }
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.index
            .get(name)
            .map(|&slot| *self.slots.get(slot).expect("slot in range"))
    }

    /// A copy-on-write fork: O(chunks) now, divergence pays per chunk.
    pub fn fork(&self) -> CowEnv {
        self.clone()
    }

    /// Flattens into an ordinary map (e.g. for the term evaluator).
    pub fn to_map(&self) -> HashMap<String, u64> {
        self.index
            .iter()
            .map(|(name, &slot)| (name.clone(), *self.slots.get(slot).expect("slot in range")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip_across_chunks() {
        let mut v = CowVec::new();
        for i in 0..100u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 100);
        for i in 0..100u64 {
            assert_eq!(v.get(i as usize), Some(&i));
        }
        assert_eq!(v.get(100), None);
        let collected: Vec<u64> = v.iter().copied().collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clone_shares_until_written() {
        let mut a: CowVec<u64> = (0..64).collect();
        let b = a.clone();
        a.set(0, 999);
        a.set(63, 888);
        assert_eq!(b.get(0), Some(&0));
        assert_eq!(b.get(63), Some(&63));
        assert_eq!(a.get(0), Some(&999));
        assert_eq!(a.get(63), Some(&888));
        assert_eq!(a.get(1), b.get(1), "untouched entries stay shared");
    }

    #[test]
    fn push_after_clone_does_not_leak_into_sibling() {
        let mut a: CowVec<u64> = (0..33).collect(); // partial second chunk
        let mut b = a.clone();
        a.push(100);
        b.push(200);
        assert_eq!(a.len(), 34);
        assert_eq!(b.len(), 34);
        assert_eq!(a.get(33), Some(&100));
        assert_eq!(b.get(33), Some(&200));
    }

    #[test]
    fn fold_digest_tracks_content_not_storage_layout() {
        let a: CowVec<u64> = (0..70).collect();
        let mut b = a.clone();
        b.set(0, 0); // same value; chunk storage diverges, content does not

        let digest_of = |v: &CowVec<u64>| {
            let mut d = crate::StateDigest::new();
            v.fold_digest(&mut d, |x| u128::from(*x));
            d.finish()
        };
        assert_eq!(digest_of(&a), digest_of(&b), "layout must not matter");

        b.set(1, 999);
        assert_ne!(digest_of(&a), digest_of(&b), "content must matter");

        let short: CowVec<u64> = (0..69).collect();
        assert_ne!(digest_of(&a), digest_of(&short), "length must matter");
    }

    #[test]
    fn truncate_drops_tail_only() {
        let mut a: CowVec<u64> = (0..70).collect();
        let b = a.clone();
        a.truncate(40);
        assert_eq!(a.len(), 40);
        assert_eq!(a.get(39), Some(&39));
        assert_eq!(a.get(40), None);
        assert_eq!(b.len(), 70, "sibling unaffected");
        a.truncate(500);
        assert_eq!(a.len(), 40, "growing truncate is a no-op");
        a.truncate(0);
        assert!(a.is_empty());
    }

    #[test]
    fn equality_is_structural() {
        let a: CowVec<u64> = (0..50).collect();
        let mut b: CowVec<u64> = (0..50).collect();
        assert_eq!(a, b);
        b.set(17, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn env_bind_assign_get() {
        let mut env = CowEnv::new();
        assert!(env.is_empty());
        env.bind("x", 1);
        env.bind("y", 2);
        assert_eq!(env.get("x"), Some(1));
        assert_eq!(env.get("y"), Some(2));
        assert_eq!(env.get("z"), None);
        assert!(env.assign("x", 10));
        assert!(!env.assign("z", 10));
        assert_eq!(env.get("x"), Some(10));
        env.bind("x", 11); // bind on existing name assigns
        assert_eq!(env.get("x"), Some(11));
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn env_forks_are_isolated() {
        let mut parent = CowEnv::new();
        for i in 0..40u64 {
            parent.bind(&format!("v{i}"), i);
        }
        let mut left = parent.fork();
        let mut right = parent.fork();
        left.assign("v3", 1000);
        right.bind("fresh", 7);
        right.assign("v3", 2000);
        assert_eq!(parent.get("v3"), Some(3));
        assert_eq!(left.get("v3"), Some(1000));
        assert_eq!(right.get("v3"), Some(2000));
        assert_eq!(left.get("fresh"), None);
        assert_eq!(right.get("fresh"), Some(7));
        assert_eq!(parent.to_map().len(), 40);
        assert_eq!(right.to_map().len(), 41);
    }
}

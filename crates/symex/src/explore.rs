//! The path explorer: copy-on-write snapshot forking over a worklist of
//! suspended engine snapshots.
//!
//! Exploration runs on a pool of worker threads (see
//! [`Explorer::workers`]). Every pending [`PathSnapshot`] is an
//! independent unit of work: a worker pops one, *fast-forwards* the
//! testbench through its forced prefix — solver-free, replaying the
//! pinned concretizations from the snapshot's journal — and resumes live
//! execution at the fork point, pushing newly captured snapshots back for
//! any worker to steal. Workers keep private term pools and solvers but
//! share one whole-query solver cache, so a feasibility query solved on
//! any worker is a cache hit on every other. Per-worker results are
//! merged into canonical (sequential depth-first) order, so the report is
//! independent of scheduling.
//!
//! The original forked *re-execution* engine — prefixes re-solved from
//! scratch — remains available via [`ForkStrategy::Reexec`] as the
//! differential oracle the snapshot engine is verified against.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

use symsc_smt::{CexCache, QueryCache, Solver};

use crate::ctx::{EngineState, PathTerm, SymCtx};
use crate::error::{ErrorKind, Report};
use crate::merge::{ExploreOrder, MergeShared, PathRecord};
use crate::snapshot::PathSnapshot;
use crate::stats::ExplorationStats;

thread_local! {
    static IN_EXPLORATION: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INSTALL: Once = Once::new();

/// Installs (once, process-wide) a panic hook that silences panics raised
/// while a thread is inside an exploration — path termination is control
/// flow for the engine, not a crash — and forwards everything else to the
/// previously installed hook.
fn install_quiet_hook() {
    HOOK_INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_EXPLORATION.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

/// How the explorer orders pending paths — the analogue of KLEE's
/// searchers. The paper attributes its fast time-to-first-bug to "KLEE's
/// symbolic exploration heuristics, which attempt to solve the most
/// promising paths first"; the strategy is exposed here so its effect can
/// be measured (see the `exploration` bench).
///
/// Strategies order *visitation*, so they only matter on a sequential
/// exploration ([`Explorer::workers`]`(1)`) — with more workers, paths are
/// claimed greedily by the pool and the merged report is always in
/// canonical depth-first order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first: follow one execution to the end before backtracking
    /// (stack order). Deterministic; the default.
    DepthFirst,
    /// Breadth-first: explore all paths of depth *n* before any of depth
    /// *n + 1* (queue order). Finds shallow bugs first.
    BreadthFirst,
    /// Random-path selection with a deterministic seed (KLEE's
    /// `random-path` searcher): picks a pending prefix uniformly.
    RandomPath(u64),
}

/// How a fork materializes the other branch — the engine's state-capture
/// strategy.
///
/// Both strategies explore the same path tree and produce byte-identical
/// reports (every report-relevant value is a pure function of the
/// structural constraint set); they differ only in how much work resuming
/// a pending path costs. The differential harness in `crates/bench`
/// (`cow_fork`) holds them to that equivalence bar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForkStrategy {
    /// Copy-on-write snapshots (the default): a fork captures the live
    /// path state — concretization journal, prefix errors — in O(changed
    /// state), and resuming fast-forwards the prefix without any solver
    /// work. The KLEE-style state-forking analogue.
    CowSnapshot,
    /// Forked re-execution: a fork records only the decision prefix and
    /// the resume re-solves it from scratch — O(depth) solver work per
    /// path. The original engine, kept as the differential oracle.
    Reexec,
}

/// Drives the symbolic exploration of a testbench closure.
///
/// The closure is executed once per path. With one worker, all paths share
/// one term pool and one solver; with several, each worker keeps its own
/// pool and solver but all share one whole-query cache.
///
/// # Example
///
/// ```
/// use symsc_symex::{Explorer, Width};
///
/// let report = Explorer::new().max_paths(100).explore(|ctx| {
///     let x = ctx.symbolic("x", Width::W8);
///     let limit = ctx.word(4, Width::W8);
///     ctx.assume(&x.ult(&limit));
///     // One fork per feasible value comparison below:
///     let two = ctx.word(2, Width::W8);
///     if ctx.decide(&x.ult(&two)) {
///         ctx.check(&x.ult(&two), "consistent view");
///     }
/// });
/// assert!(report.completed);
/// assert_eq!(report.stats.paths, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Explorer {
    max_paths: u64,
    max_path_decisions: u64,
    timeout: Option<Duration>,
    query_cache: bool,
    solver_stack: bool,
    incremental: bool,
    strategy: SearchStrategy,
    fork: ForkStrategy,
    order: ExploreOrder,
    workers: usize,
}

/// The cache stack one exploration's solvers are built over. Parallel
/// workers all clone the same handles, so a query or slice solved on any
/// worker is a hit on every other — semantically invisible either way,
/// since cached results are bit-for-bit what a fresh solve computes.
#[derive(Clone)]
struct SolverSetup {
    query: Option<Arc<QueryCache>>,
    cex: Option<Arc<CexCache>>,
    model_reuse: bool,
    incremental: bool,
}

impl SolverSetup {
    fn build(&self) -> Solver {
        Solver::with_stack(self.query.clone(), self.cex.clone(), self.model_reuse)
            .with_incremental(self.incremental)
    }
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with default budgets (1 million paths, 100k decisions
    /// per path, no timeout, query cache on, one worker per available
    /// hardware thread).
    pub fn new() -> Explorer {
        Explorer {
            max_paths: 1_000_000,
            max_path_decisions: 100_000,
            timeout: None,
            query_cache: true,
            solver_stack: true,
            incremental: true,
            strategy: SearchStrategy::DepthFirst,
            fork: ForkStrategy::CowSnapshot,
            order: ExploreOrder::Exhaustive,
            workers: 0,
        }
    }

    /// Caps the number of explored paths.
    pub fn max_paths(mut self, paths: u64) -> Explorer {
        self.max_paths = paths;
        self
    }

    /// Caps decisions per path (guards against loops over symbolic state).
    pub fn max_path_decisions(mut self, decisions: u64) -> Explorer {
        self.max_path_decisions = decisions;
        self
    }

    /// Stops exploring (marking the report incomplete) after `timeout`.
    pub fn timeout(mut self, timeout: Duration) -> Explorer {
        self.timeout = Some(timeout);
        self
    }

    /// Disables the whole-query solver cache (ablation benchmarks).
    pub fn query_cache(mut self, enabled: bool) -> Explorer {
        self.query_cache = enabled;
        self
    }

    /// Enables or disables the layered solver stack's cache layers — the
    /// counterexample cache and cached-model feasibility witnesses
    /// (default: on). Off reproduces the earlier flat-cache engine for
    /// ablation runs. Independence slicing itself is always on: it is part
    /// of the decision procedure (models are defined per slice), which is
    /// what keeps this switch — like the worker count — incapable of
    /// changing any report.
    pub fn solver_stack(mut self, enabled: bool) -> Explorer {
        self.solver_stack = enabled;
        self
    }

    /// Enables or disables the incremental per-path SAT context (default:
    /// on). When on, each worker keeps the current path's constraint
    /// prefix bit-blasted and asserted in a retained CDCL solver and
    /// decides fork-feasibility probes as assumption solves on top,
    /// carrying learned clauses and activities along the path. Contexts
    /// are worker-local and dropped at every path start, and only
    /// verdict-level probes use them, so — like the cache layers — this
    /// switch cannot change any report, only how fast the core answers.
    pub fn incremental(mut self, enabled: bool) -> Explorer {
        self.incremental = enabled;
        self
    }

    /// Selects the path-selection strategy (default: depth-first). Only
    /// meaningful with [`workers`](Self::workers)`(1)`; see
    /// [`SearchStrategy`].
    pub fn strategy(mut self, strategy: SearchStrategy) -> Explorer {
        self.strategy = strategy;
        self
    }

    /// Selects the fork strategy (default: copy-on-write snapshots).
    /// [`ForkStrategy::Reexec`] restores the original forked
    /// re-execution engine, the differential oracle — both produce
    /// byte-identical reports; see [`ForkStrategy`].
    pub fn fork_strategy(mut self, fork: ForkStrategy) -> Explorer {
        self.fork = fork;
        self
    }

    /// Selects the exploration order (default: exhaustive). See
    /// [`ExploreOrder`]: `CoverageGuided` reorders the sequential
    /// visitation toward unvisited fork-site directions, `MergeEager`
    /// merges and subsumes paths at testbench-published join points
    /// (`SymCtx::note_state`). Both report byte-identically to the
    /// exhaustive oracle.
    pub fn explore_order(mut self, order: ExploreOrder) -> Explorer {
        self.order = order;
        self
    }

    /// Whether the copy-on-write snapshot strategy is active.
    fn cow_enabled(&self) -> bool {
        self.fork == ForkStrategy::CowSnapshot
    }

    /// Sets the number of worker threads. `0` (the default) uses
    /// [`std::thread::available_parallelism`]; `1` runs the exploration
    /// sequentially on the calling thread, preserving the single-threaded
    /// engine's exact behavior (shared pool, strategy-ordered visitation).
    pub fn workers(mut self, workers: usize) -> Explorer {
        self.workers = workers;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The exploration-wide cache stack, per this explorer's config.
    fn solver_setup(&self) -> SolverSetup {
        SolverSetup {
            query: self.query_cache.then(|| Arc::new(QueryCache::new())),
            cex: self.solver_stack.then(|| Arc::new(CexCache::new())),
            model_reuse: self.solver_stack,
            incremental: self.incremental,
        }
    }

    /// Explores all feasible paths of `testbench`.
    ///
    /// The closure runs once per path; it must be deterministic apart from
    /// the engine's branch decisions (re-execution soundness). Panics from
    /// model code are caught and reported as [`ErrorKind::ModelPanic`]
    /// errors with a counterexample; they terminate only their own path.
    ///
    /// With more than one worker the closure is called concurrently from
    /// several threads, hence the `Fn + Sync` bound. Testbenches that
    /// mutate captured state should use [`explore_mut`](Self::explore_mut)
    /// instead.
    pub fn explore<F>(&self, testbench: F) -> Report
    where
        F: Fn(&SymCtx) + Sync,
    {
        let workers = self.resolved_workers();
        if workers <= 1 {
            if self.order == ExploreOrder::MergeEager {
                self.explore_merged_sequential(testbench)
            } else {
                self.explore_sequential(testbench)
            }
        } else {
            self.explore_parallel(&testbench, workers)
        }
    }

    /// Explores all feasible paths of a testbench that mutates captured
    /// state (e.g. collects observations into a `Vec`). Mutable captures
    /// cannot be shared across worker threads, so this always runs
    /// sequentially, like [`workers`](Self::workers)`(1)`.
    pub fn explore_mut<F: FnMut(&SymCtx)>(&self, testbench: F) -> Report {
        if self.order == ExploreOrder::MergeEager {
            self.explore_merged_sequential(testbench)
        } else {
            self.explore_sequential(testbench)
        }
    }

    /// The single-threaded engine: one pool, one solver, strategy-ordered
    /// visitation. This is the reference semantics the parallel engine's
    /// merged reports are defined against.
    fn explore_sequential<F: FnMut(&SymCtx)>(&self, mut testbench: F) -> Report {
        install_quiet_hook();
        let state = Arc::new(Mutex::new(EngineState::new(
            self.max_path_decisions,
            self.solver_setup().build(),
            self.cow_enabled(),
        )));
        let mut worklist: Vec<PathSnapshot> = vec![PathSnapshot::root()];
        let start = Instant::now();
        let mut completed = true;
        let mut paths = 0u64;
        // xorshift state for SearchStrategy::RandomPath.
        let mut rng_state = match self.strategy {
            SearchStrategy::RandomPath(seed) => seed | 1,
            _ => 0,
        };
        let mut promotions = 0u64;
        // CoverageGuided visits paths out of canonical order, so its
        // report is assembled from per-path records like the parallel
        // engine's — a pure function of the explored path set. (The
        // search strategies intentionally report in visitation order.)
        let canonical = self.order == ExploreOrder::CoverageGuided;
        let mut records: Vec<PathRecord> = Vec::new();

        loop {
            let next = if self.order == ExploreOrder::CoverageGuided {
                pick_coverage_guided(&mut worklist, &state, &mut promotions)
            } else {
                self.pick_next(&mut worklist, &mut rng_state)
            };
            let Some(snapshot) = next else { break };
            if paths >= self.max_paths {
                completed = false;
                break;
            }
            if let Some(t) = self.timeout {
                if start.elapsed() >= t {
                    completed = false;
                    break;
                }
            }

            let ctx = SymCtx::new(state.clone());
            ctx.engine().begin_path(snapshot);
            IN_EXPLORATION.with(|f| f.set(true));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
            IN_EXPLORATION.with(|f| f.set(false));
            paths += 1;

            if let Err(payload) = outcome {
                if payload.downcast_ref::<PathTerm>().is_none() {
                    // A genuine model/testbench panic: the C++ analogue is
                    // an abort or unhandled exception. Report it with a
                    // counterexample for the current path.
                    let message = panic_message(payload.as_ref());
                    ctx.engine()
                        .record_error_here(ErrorKind::ModelPanic, message);
                }
            }

            let mut st = ctx.engine();
            st.path_index += 1;
            if canonical {
                // Fold branch directions into the exploration-wide map
                // (the scheduler's signal) while keeping the per-path
                // record for canonical assembly.
                let branches = st.take_path_branches();
                for &(site, dir) in &branches {
                    let entry = st.branches.entry(site).or_default();
                    if dir {
                        entry.taken += 1;
                    } else {
                        entry.not_taken += 1;
                    }
                }
                records.push(PathRecord {
                    taken: st.taken_so_far(),
                    errors: std::mem::take(&mut st.errors),
                    coverage: st.take_path_coverage(),
                    branches,
                });
            } else {
                st.end_path_coverage();
                st.end_path_branches();
            }
            // Push pending prefixes (discovered this run); pick_next
            // applies the search strategy on removal.
            let pending = std::mem::take(&mut st.pending);
            drop(st);
            worklist.extend(pending);
        }

        let st = lock_state(&state);
        if st.budget_exhausted {
            completed = false;
        }
        let time = start.elapsed();
        if canonical {
            let stats = ExplorationStats {
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
                fork_snapshots: st.fork_snapshots,
                fast_forward_decisions: st.ff_decisions,
                executed_paths: paths,
                sched_promotions: promotions,
                ..ExplorationStats::default()
            };
            return assemble_records(records, stats, completed);
        }
        Report {
            errors: st.errors.clone(),
            coverage: st.coverage.clone(),
            stats: ExplorationStats {
                paths,
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
                fork_snapshots: st.fork_snapshots,
                fast_forward_decisions: st.ff_decisions,
                branches: st.branches.clone(),
                executed_paths: paths,
                sched_promotions: promotions,
                ..ExplorationStats::default()
            },
            completed,
        }
    }

    /// The merging engine: like the sequential depth-first engine, but
    /// paths arriving at a testbench-published join point
    /// ([`SymCtx::note_state`]) adopt the finished subtree of the first
    /// arrival instead of re-executing it, when the adoption soundness
    /// checks pass (see [`crate::merge`]). Adopted subtrees contribute
    /// *synthesized* path records, so the final report is byte-identical
    /// to the exhaustive engine's; only `executed_paths` (and the solver
    /// workload) shrinks.
    ///
    /// Visitation is forced depth-first regardless of the configured
    /// [`SearchStrategy`]: DFS guarantees a join owner's subtree is fully
    /// drained before any path outside it reaches the join, so every
    /// eligible arrival finds a complete subtree to adopt.
    fn explore_merged_sequential<F: FnMut(&SymCtx)>(&self, mut testbench: F) -> Report {
        install_quiet_hook();
        let shared = Arc::new(MergeShared::new());
        let state = Arc::new(Mutex::new(EngineState::new(
            self.max_path_decisions,
            self.solver_setup().build(),
            self.cow_enabled(),
        )));
        lock_state(&state).merge = Some(shared.clone());
        let mut worklist: Vec<PathSnapshot> = vec![PathSnapshot::root()];
        shared.add_unit(&[]);
        let start = Instant::now();
        let mut completed = true;
        let mut executed = 0u64;
        let mut records: Vec<PathRecord> = Vec::new();

        while let Some(snapshot) = worklist.pop() {
            if executed >= self.max_paths {
                completed = false;
                break;
            }
            if let Some(t) = self.timeout {
                if start.elapsed() >= t {
                    completed = false;
                    break;
                }
            }
            let unit: Vec<bool> = snapshot.unit_prefix().to_vec();

            let ctx = SymCtx::new(state.clone());
            ctx.engine().begin_path(snapshot);
            IN_EXPLORATION.with(|f| f.set(true));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
            IN_EXPLORATION.with(|f| f.set(false));
            executed += 1;

            if let Err(payload) = outcome {
                if payload.downcast_ref::<PathTerm>().is_none() {
                    let message = panic_message(payload.as_ref());
                    ctx.engine()
                        .record_error_here(ErrorKind::ModelPanic, message);
                }
            }

            let mut st = ctx.engine();
            st.path_index += 1;
            harvest_records(&mut st, &mut records);
            // Unit accounting order matters: pending subtrees must be
            // visible before this unit retires, or a concurrent arrival
            // could see the owner subtree as drained while forks of it
            // are still queued. (Trivially safe sequentially; kept
            // identical to the parallel discipline.)
            let pending = std::mem::take(&mut st.pending);
            drop(st);
            for snapshot in &pending {
                shared.add_unit(snapshot.unit_prefix());
            }
            shared.remove_unit(&unit);
            worklist.extend(pending);
        }

        let st = lock_state(&state);
        if st.budget_exhausted {
            completed = false;
        }
        let counters = shared.counters();
        let stats = ExplorationStats {
            instructions: st.pool.ops_created() + st.decisions,
            decisions: st.decisions,
            time: start.elapsed(),
            solver_time: st.solver_time,
            solver: st.solver.stats(),
            fork_snapshots: st.fork_snapshots,
            fast_forward_decisions: st.ff_decisions,
            executed_paths: executed,
            merged_paths: counters.merged_paths,
            subsumed_paths: counters.subsumed_paths,
            join_sites: counters.join_sites,
            merge_rejects: counters.merge_rejects,
            ..ExplorationStats::default()
        };
        assemble_records(records, stats, completed)
    }

    /// The parallel engine: a pool of `workers` threads drains the shared
    /// prefix queue. Each worker keeps a private [`EngineState`] (pool +
    /// solver) and all workers share one whole-query cache; the per-path
    /// results are merged into canonical depth-first order afterwards, so
    /// the report does not depend on scheduling.
    fn explore_parallel<F>(&self, testbench: &F, workers: usize) -> Report
    where
        F: Fn(&SymCtx) + Sync,
    {
        install_quiet_hook();
        let start = Instant::now();
        let setup = self.solver_setup();
        let queue = WorkQueue::new(vec![PathSnapshot::root()]);
        let limits = SharedLimits {
            paths_started: AtomicU64::new(0),
            max_paths: self.max_paths,
            deadline: self.timeout.map(|t| start + t),
            truncated: AtomicBool::new(false),
        };
        // Parallel MergeEager: workers share one merge state. An arrival
        // only adopts while the owner subtree is fully drained, so a
        // subtree still being executed elsewhere is simply executed again
        // here — verdicts stay byte-identical, only `executed_paths`
        // becomes scheduling-dependent.
        let merge = (self.order == ExploreOrder::MergeEager).then(|| Arc::new(MergeShared::new()));
        if let Some(shared) = &merge {
            shared.add_unit(&[]);
        }

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let setup = setup.clone();
                let merge = merge.clone();
                let queue = &queue;
                let limits = &limits;
                handles.push(
                    scope.spawn(move || self.run_worker(queue, limits, testbench, setup, merge)),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("exploration worker panicked"))
                .collect()
        });

        self.merge_outputs(outputs, &limits, start.elapsed(), merge.as_deref())
    }

    /// One worker's loop: pop a prefix, re-execute, harvest the path
    /// record, feed newly forked prefixes back to the queue.
    fn run_worker<F>(
        &self,
        queue: &WorkQueue,
        limits: &SharedLimits,
        testbench: &F,
        setup: SolverSetup,
        merge: Option<Arc<MergeShared>>,
    ) -> WorkerOutput
    where
        F: Fn(&SymCtx) + Sync,
    {
        let state = Arc::new(Mutex::new(EngineState::new(
            self.max_path_decisions,
            setup.build(),
            self.cow_enabled(),
        )));
        lock_state(&state).merge = merge.clone();
        let mut records = Vec::new();
        let mut executed = 0u64;

        while let Some(snapshot) = queue.pop() {
            let over_budget =
                limits.paths_started.fetch_add(1, AtomicOrdering::SeqCst) >= limits.max_paths;
            let past_deadline = limits
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline);
            if over_budget || past_deadline {
                limits.truncated.store(true, AtomicOrdering::SeqCst);
                queue.halt();
                queue.complete(Vec::new());
                break;
            }
            let unit: Vec<bool> = snapshot.unit_prefix().to_vec();

            let ctx = SymCtx::new(state.clone());
            ctx.engine().begin_path(snapshot);
            IN_EXPLORATION.with(|f| f.set(true));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
            IN_EXPLORATION.with(|f| f.set(false));
            executed += 1;

            if let Err(payload) = outcome {
                if payload.downcast_ref::<PathTerm>().is_none() {
                    let message = panic_message(payload.as_ref());
                    ctx.engine()
                        .record_error_here(ErrorKind::ModelPanic, message);
                }
            }

            let mut st = ctx.engine();
            st.path_index += 1;
            harvest_records(&mut st, &mut records);
            let pending = std::mem::take(&mut st.pending);
            drop(st);
            if let Some(shared) = &merge {
                // Publish the forks' units before retiring this one, so
                // the subtree never looks drained while work remains.
                for snapshot in &pending {
                    shared.add_unit(snapshot.unit_prefix());
                }
                shared.remove_unit(&unit);
            }
            queue.complete(pending);
        }

        let st = lock_state(&state);
        WorkerOutput {
            records,
            decisions: st.decisions,
            pool_ops: st.pool.ops_created(),
            solver_time: st.solver_time,
            solver: st.solver.stats(),
            fork_snapshots: st.fork_snapshots,
            ff_decisions: st.ff_decisions,
            budget_exhausted: st.budget_exhausted,
            executed,
        }
    }

    /// Merges per-worker results into a report in canonical order: path
    /// records sort by their decision vectors (taken-true before
    /// taken-false), which is exactly the order the sequential depth-first
    /// engine visits paths in. Error path indices are renumbered to that
    /// order and coverage bins are re-counted, so the merged report is a
    /// pure function of the explored path set.
    fn merge_outputs(
        &self,
        outputs: Vec<WorkerOutput>,
        limits: &SharedLimits,
        time: Duration,
        merge: Option<&MergeShared>,
    ) -> Report {
        let mut completed = !limits.truncated.load(AtomicOrdering::SeqCst);
        let mut records = Vec::new();
        let mut stats = ExplorationStats {
            time,
            ..ExplorationStats::default()
        };
        for output in outputs {
            records.extend(output.records);
            stats.decisions += output.decisions;
            stats.instructions += output.pool_ops;
            stats.solver_time += output.solver_time;
            stats.solver.merge(&output.solver);
            stats.fork_snapshots += output.fork_snapshots;
            stats.fast_forward_decisions += output.ff_decisions;
            stats.executed_paths += output.executed;
            if output.budget_exhausted {
                completed = false;
            }
        }
        stats.instructions += stats.decisions;
        if let Some(shared) = merge {
            let counters = shared.counters();
            stats.merged_paths = counters.merged_paths;
            stats.subsumed_paths = counters.subsumed_paths;
            stats.join_sites = counters.join_sites;
            stats.merge_rejects = counters.merge_rejects;
        }
        assemble_records(records, stats, completed)
    }
}

/// Assembles path records into the canonical report: records sort by
/// their decision vectors (taken-true before taken-false), which is
/// exactly the order the sequential depth-first engine visits paths in.
/// Error path indices are renumbered to that order and coverage bins and
/// branch maps are re-counted, so the report is a pure function of the
/// represented path set — independent of workers, scheduling, and merge
/// decisions.
fn assemble_records(
    mut records: Vec<PathRecord>,
    mut stats: ExplorationStats,
    completed: bool,
) -> Report {
    stats.paths = records.len() as u64;
    records.sort_by(|a, b| cmp_decision_order(&a.taken, &b.taken));
    let mut errors = Vec::new();
    let mut coverage = BTreeMap::new();
    for (index, record) in records.into_iter().enumerate() {
        for mut error in record.errors {
            error.path = index as u64;
            errors.push(error);
        }
        for bin in record.coverage {
            *coverage.entry(bin).or_insert(0) += 1;
        }
        // Per-direction sums are order-independent, so the merged
        // branch map matches the sequential engine's exactly.
        for (site, dir) in record.branches {
            let entry = stats.branches.entry(site).or_default();
            if dir {
                entry.taken += 1;
            } else {
                entry.not_taken += 1;
            }
        }
    }

    Report {
        errors,
        coverage,
        stats,
        completed,
    }
}

/// Harvests one finished run into `records`: either the path's own record,
/// or — if the run was absorbed at a join point — the records synthesized
/// from the adopted subtree (the partial run's own accumulators are
/// dropped; the adoption already folded them in).
fn harvest_records(st: &mut EngineState, records: &mut Vec<PathRecord>) {
    if st.adopted {
        records.append(&mut std::mem::take(&mut st.adopted_records));
        st.errors.clear();
        let _ = st.take_path_coverage();
        let _ = st.take_path_branches();
    } else {
        let record = PathRecord {
            taken: st.taken_so_far(),
            errors: std::mem::take(&mut st.errors),
            coverage: st.take_path_coverage(),
            branches: st.take_path_branches(),
        };
        st.publish_trace();
        records.push(record);
    }
}

/// The coverage-guided sequential pick: prefer the deepest pending
/// snapshot whose flipped fork direction is still unvisited in the
/// exploration-wide branch map; fall back to plain depth-first. A
/// reordering heuristic only — the visited path *set* (and hence the
/// report) is unchanged.
fn pick_coverage_guided(
    worklist: &mut Vec<PathSnapshot>,
    state: &Arc<Mutex<EngineState>>,
    promotions: &mut u64,
) -> Option<PathSnapshot> {
    if worklist.is_empty() {
        return None;
    }
    let pick = {
        let st = lock_state(state);
        worklist.iter().rposition(|snapshot| {
            snapshot
                .flip_site
                .is_some_and(|site| st.branches.get(&site).is_none_or(|cov| cov.not_taken == 0))
        })
    };
    match pick {
        Some(index) if index + 1 != worklist.len() => {
            *promotions += 1;
            Some(worklist.remove(index))
        }
        _ => worklist.pop(),
    }
}

impl Explorer {
    /// Replays a testbench *concretely* on a counterexample: every
    /// `symbolic` input resolves to its recorded value, so exactly one
    /// path executes and no solver is involved. This is the paper's
    /// "compile the bytecode into a machine-native executable and attach a
    /// debugger" step — the error reproduces deterministically.
    ///
    /// The returned report covers that single path (the reproduced errors
    /// carry the replayed input values as their counterexample). Replay is
    /// always sequential; the worker setting does not apply.
    pub fn replay<F: FnMut(&SymCtx)>(
        &self,
        counterexample: &crate::error::Counterexample,
        mut testbench: F,
    ) -> Report {
        install_quiet_hook();
        let state = Arc::new(Mutex::new(EngineState::new(
            self.max_path_decisions,
            self.solver_setup().build(),
            false,
        )));
        lock_state(&state).replay = Some(counterexample.to_map());
        let start = Instant::now();

        let ctx = SymCtx::new(state.clone());
        ctx.engine().begin_path(PathSnapshot::root());
        IN_EXPLORATION.with(|f| f.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
        IN_EXPLORATION.with(|f| f.set(false));
        if let Err(payload) = outcome {
            if payload.downcast_ref::<PathTerm>().is_none() {
                let message = panic_message(payload.as_ref());
                ctx.engine()
                    .record_error_here(ErrorKind::ModelPanic, message);
            }
        }

        let mut st = lock_state(&state);
        st.end_path_coverage();
        st.end_path_branches();
        let st = &*st;
        let time = start.elapsed();
        Report {
            errors: st.errors.clone(),
            coverage: st.coverage.clone(),
            stats: ExplorationStats {
                paths: 1,
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
                fork_snapshots: 0,
                fast_forward_decisions: 0,
                branches: st.branches.clone(),
                executed_paths: 1,
                ..ExplorationStats::default()
            },
            completed: true,
        }
    }

    /// Runs a testbench *concolically* on a concrete assignment: inputs
    /// stay symbolic (so fork sites keep the structural fingerprints the
    /// exploration would compute), but every decision is evaluated under
    /// the assignment instead of solved. Exactly one path executes, no
    /// solver is involved, and — unlike [`replay`](Self::replay), which
    /// constant-folds the inputs and therefore records no fork sites —
    /// the report's `stats.branches` holds real branch coverage, keyed by
    /// the *same* fingerprints symbolic exploration uses.
    ///
    /// This is the coverage-guided fuzzer's execution mode: it makes a
    /// concrete run's coverage directly comparable (and mergeable) with a
    /// symbolic exploration's.
    pub fn trace<F: FnMut(&SymCtx)>(
        &self,
        assignment: &crate::error::Counterexample,
        mut testbench: F,
    ) -> Report {
        install_quiet_hook();
        let state = Arc::new(Mutex::new(EngineState::new(
            self.max_path_decisions,
            self.solver_setup().build(),
            false,
        )));
        lock_state(&state).trace = Some(assignment.to_map());
        let start = Instant::now();

        let ctx = SymCtx::new(state.clone());
        ctx.engine().begin_path(PathSnapshot::root());
        IN_EXPLORATION.with(|f| f.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
        IN_EXPLORATION.with(|f| f.set(false));
        if let Err(payload) = outcome {
            if payload.downcast_ref::<PathTerm>().is_none() {
                let message = panic_message(payload.as_ref());
                ctx.engine()
                    .record_error_here(ErrorKind::ModelPanic, message);
            }
        }

        let mut st = lock_state(&state);
        st.end_path_coverage();
        st.end_path_branches();
        let st = &*st;
        let time = start.elapsed();
        Report {
            errors: st.errors.clone(),
            coverage: st.coverage.clone(),
            stats: ExplorationStats {
                paths: 1,
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
                fork_snapshots: 0,
                fast_forward_decisions: 0,
                branches: st.branches.clone(),
                executed_paths: 1,
                ..ExplorationStats::default()
            },
            completed: true,
        }
    }
}

impl Explorer {
    /// Removes and returns the next snapshot to explore, per the strategy.
    fn pick_next(
        &self,
        worklist: &mut Vec<PathSnapshot>,
        rng_state: &mut u64,
    ) -> Option<PathSnapshot> {
        if worklist.is_empty() {
            return None;
        }
        match self.strategy {
            SearchStrategy::DepthFirst => worklist.pop(),
            SearchStrategy::BreadthFirst => Some(worklist.remove(0)),
            SearchStrategy::RandomPath(_) => {
                // xorshift64*
                let mut x = *rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng_state = x;
                let idx = (x as usize) % worklist.len();
                Some(worklist.swap_remove(idx))
            }
        }
    }
}

/// Exploration-wide budgets shared by all workers.
struct SharedLimits {
    /// Paths claimed so far (including the claim that trips the budget).
    paths_started: AtomicU64,
    max_paths: u64,
    deadline: Option<Instant>,
    /// Set when a worker stopped the exploration early (budget/deadline).
    truncated: AtomicBool,
}

/// A worker's complete contribution: its path records plus the counters of
/// its private engine state.
struct WorkerOutput {
    records: Vec<PathRecord>,
    decisions: u64,
    pool_ops: u64,
    solver_time: Duration,
    solver: symsc_smt::SolverStats,
    fork_snapshots: u64,
    ff_decisions: u64,
    budget_exhausted: bool,
    /// Testbench runs actually performed (>= `records.len()` only when a
    /// run was absorbed at a join point and synthesized several records).
    executed: u64,
}

/// The shared work queue of pending path snapshots — the work-stealing
/// point of the pool: any worker may resume a snapshot forked on any
/// other (snapshots are pool-independent by construction).
///
/// `in_flight` counts snapshots popped but not yet completed: the queue is
/// only *drained* when it is empty **and** nothing is in flight, because a
/// running path may still fork new snapshots. `halt` wakes everyone up for
/// an early exit (path budget or timeout).
struct WorkQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    queue: Vec<PathSnapshot>,
    in_flight: usize,
    halted: bool,
}

impl WorkQueue {
    fn new(initial: Vec<PathSnapshot>) -> WorkQueue {
        WorkQueue {
            state: Mutex::new(QueueState {
                queue: initial,
                in_flight: 0,
                halted: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims the next snapshot, blocking while other workers might still
    /// fork new ones. Returns `None` once the queue has fully drained (or
    /// was halted).
    fn pop(&self) -> Option<PathSnapshot> {
        let mut st = self.lock();
        loop {
            if st.halted {
                return None;
            }
            if let Some(snapshot) = st.queue.pop() {
                st.in_flight += 1;
                return Some(snapshot);
            }
            if st.in_flight == 0 {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks one claimed snapshot as done, adding the snapshots it forked.
    fn complete(&self, forked: Vec<PathSnapshot>) {
        let mut st = self.lock();
        st.queue.extend(forked);
        st.in_flight -= 1;
        // Wake waiters: either new work arrived, or the drain condition
        // (empty + nothing in flight) may now hold.
        self.ready.notify_all();
    }

    /// Stops the exploration early: pending prefixes are abandoned.
    fn halt(&self) {
        let mut st = self.lock();
        st.halted = true;
        self.ready.notify_all();
    }
}

/// Canonical path order: compares two decision vectors with *true before
/// false* at the first differing decision. A pending prefix is spawned at
/// the decision it flips to false, so this is exactly the order in which
/// the sequential depth-first engine completes paths. Distinct paths are
/// never prefixes of one another (re-execution of a common prefix is
/// deterministic), so the tie-break on length is defensive only.
fn cmp_decision_order(a: &[bool], b: &[bool]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match (x, y) {
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
    }
    a.len().cmp(&b.len())
}

fn lock_state(state: &Arc<Mutex<EngineState>>) -> MutexGuard<'_, EngineState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Width;

    #[test]
    fn exhaustive_enumeration_of_small_domain() {
        // Forks once per comparison: the engine should enumerate exactly
        // the feasible orderings.
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let four = ctx.word(4, Width::W8);
            ctx.assume(&x.ult(&four)); // x in 0..4
            let mut found = 4u64;
            for v in 0..4u64 {
                let k = ctx.word(v, Width::W8);
                if ctx.decide(&x.eq(&k)) {
                    found = v;
                    break;
                }
            }
            assert!(found < 4, "x must match one of its four values");
        });
        assert!(report.completed);
        assert!(report.passed());
        assert_eq!(report.stats.paths, 4);
    }

    #[test]
    fn model_panic_is_reported_with_counterexample() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let k = ctx.word(0x2A, Width::W8);
            if ctx.decide(&x.eq(&k)) {
                panic!("boom at 42");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.kind, ErrorKind::ModelPanic);
        assert!(e.message.contains("boom"));
        assert_eq!(e.counterexample.value("x"), 0x2A);
    }

    #[test]
    fn path_budget_marks_report_incomplete() {
        let report = Explorer::new().max_paths(2).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            for v in 0..8u64 {
                let k = ctx.word(v, Width::W8);
                if ctx.decide(&x.eq(&k)) {
                    return;
                }
            }
        });
        assert!(!report.completed);
        assert!(report.stats.paths <= 2);
    }

    #[test]
    fn decision_budget_prevents_symbolic_loops() {
        let report = Explorer::new().max_path_decisions(16).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W32);
            // `x != 0` forever: a loop whose bound is symbolic.
            let mut i = 0u64;
            loop {
                let k = ctx.word32(i as u32);
                if ctx.decide(&x.eq(&k)) {
                    break;
                }
                i += 1;
            }
        });
        assert!(!report.completed);
        let _ = report;
    }

    #[test]
    fn timeout_truncates_search() {
        let report = Explorer::new()
            .timeout(Duration::from_millis(0))
            .explore(|ctx| {
                let x = ctx.symbolic("x", Width::W8);
                let zero = ctx.word(0, Width::W8);
                let _ = ctx.decide(&x.eq(&zero));
            });
        assert!(!report.completed);
    }

    #[test]
    fn nested_forks_cover_the_cross_product() {
        let report = Explorer::new().explore(|ctx| {
            let a = ctx.symbolic("a", Width::W1);
            let b = ctx.symbolic("b", Width::W1);
            let one = ctx.word(1, Width::W1);
            let _ = ctx.decide(&a.eq(&one));
            let _ = ctx.decide(&b.eq(&one));
        });
        assert_eq!(report.stats.paths, 4);
        assert!(report.completed);
    }

    #[test]
    fn errors_found_on_multiple_paths_are_all_recorded() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let two = ctx.word(2, Width::W8);
            let rem = x.urem(&two);
            let zero = ctx.word(0, Width::W8);
            if ctx.decide(&rem.eq(&zero)) {
                ctx.check(&ctx.lit(false), "even values always fail");
            } else {
                ctx.check(&ctx.lit(false), "odd values always fail");
            }
        });
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.distinct_errors().len(), 2);
        // Counterexamples must actually be even / odd respectively.
        for e in &report.errors {
            let x = e.counterexample.value("x");
            if e.message.contains("even") {
                assert_eq!(x % 2, 0);
            } else {
                assert_eq!(x % 2, 1);
            }
        }
    }

    #[test]
    fn replay_determinism_same_report_twice() {
        let run = || {
            Explorer::new().explore(|ctx| {
                let x = ctx.symbolic("x", Width::W8);
                let ten = ctx.word(10, Width::W8);
                ctx.assume(&x.ult(&ten));
                let five = ctx.word(5, Width::W8);
                if ctx.decide(&x.ult(&five)) {
                    ctx.check(&x.ult(&five), "low half");
                } else {
                    ctx.check(&x.uge(&five), "high half");
                }
            })
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.stats.paths, r2.stats.paths);
        assert_eq!(r1.errors.len(), r2.errors.len());
        assert!(r1.passed() && r2.passed());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::Width;

    /// A forking ladder with an error on one specific path; used to check
    /// that parallel reports are canonical. The symbolic `check` issues the
    /// same guard query on every path, which is what the shared query
    /// cache absorbs.
    fn ladder(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        let sixteen = ctx.word(16, Width::W8);
        ctx.assume(&x.ult(&sixteen));
        ctx.check(&x.ult(&sixteen), "in range");
        let mut bits = [false; 4];
        for bit in 0..4u32 {
            let b = x.bit(bit).to_word();
            let one = ctx.word(1, Width::W1);
            bits[bit as usize] = ctx.decide(&b.eq(&one));
        }
        ctx.cover(if bits[0] { "bit0" } else { "nobit0" });
        let needle = bits == [true, true, true, false]; // x == 0b0111
        ctx.check_concrete(!needle, "0b0111 is the needle");
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let seq = Explorer::new().workers(1).explore(ladder);
        for workers in [2, 4, 8] {
            let par = Explorer::new().workers(workers).explore(ladder);
            assert_eq!(par.stats.paths, seq.stats.paths, "{workers} workers");
            assert_eq!(par.errors.len(), seq.errors.len());
            assert_eq!(par.errors[0].kind, seq.errors[0].kind);
            assert_eq!(par.errors[0].message, seq.errors[0].message);
            assert_eq!(par.errors[0].path, seq.errors[0].path);
            assert_eq!(
                par.errors[0].counterexample, seq.errors[0].counterexample,
                "{workers} workers: counterexamples must be identical"
            );
            assert_eq!(par.coverage, seq.coverage, "{workers} workers");
            assert_eq!(par.stats.decisions, seq.stats.decisions);
            assert!(par.completed);
        }
    }

    #[test]
    fn parallel_workers_share_the_query_cache() {
        // Under the re-execution oracle every worker re-solves
        // structurally identical prefix queries; with a shared cache at
        // least some must hit. (The copy-on-write engine eliminates those
        // repeated prefix queries altogether — that is its entire point —
        // so the premise of this test only holds for re-execution.)
        let report = Explorer::new()
            .workers(4)
            .fork_strategy(ForkStrategy::Reexec)
            .explore(ladder);
        assert!(
            report.stats.solver.cache_hits > 0,
            "shared cache shows no hits: {:?}",
            report.stats.solver
        );
    }

    #[test]
    fn cow_matches_reexec_on_the_ladder() {
        // The differential bar at unit scale: both fork strategies, at
        // several worker counts, produce identical reports on the ladder
        // (errors, counterexamples, coverage, branch maps) — and the COW
        // runs actually snapshot and fast-forward.
        let oracle = Explorer::new()
            .workers(1)
            .fork_strategy(ForkStrategy::Reexec)
            .explore(ladder);
        assert_eq!(oracle.stats.fork_snapshots, 0, "re-exec never snapshots");
        assert_eq!(oracle.stats.fast_forward_decisions, 0);
        for workers in [1, 2, 8] {
            let cow = Explorer::new()
                .workers(workers)
                .fork_strategy(ForkStrategy::CowSnapshot)
                .explore(ladder);
            assert_eq!(cow.stats.paths, oracle.stats.paths, "{workers} workers");
            assert_eq!(cow.stats.decisions, oracle.stats.decisions);
            assert_eq!(cow.errors.len(), oracle.errors.len());
            for (c, o) in cow.errors.iter().zip(oracle.errors.iter()) {
                assert_eq!(c.kind, o.kind);
                assert_eq!(c.message, o.message);
                assert_eq!(c.path, o.path);
                assert_eq!(c.counterexample, o.counterexample);
            }
            assert_eq!(cow.coverage, oracle.coverage);
            assert_eq!(cow.stats.branches, oracle.stats.branches);
            assert_eq!(
                cow.stats.fork_snapshots,
                cow.stats.paths - 1,
                "every non-root path resumes a snapshot"
            );
            assert!(cow.stats.fast_forward_decisions > 0);
        }
    }

    #[test]
    fn parallel_path_budget_truncates() {
        let report = Explorer::new().workers(4).max_paths(2).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            for v in 0..8u64 {
                let k = ctx.word(v, Width::W8);
                if ctx.decide(&x.eq(&k)) {
                    return;
                }
            }
        });
        assert!(!report.completed);
        assert!(report.stats.paths <= 2);
    }

    #[test]
    fn parallel_timeout_truncates() {
        let report = Explorer::new()
            .workers(2)
            .timeout(Duration::from_millis(0))
            .explore(ladder);
        assert!(!report.completed);
    }

    #[test]
    fn parallel_model_panics_are_reported() {
        let report = Explorer::new().workers(4).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let k = ctx.word(0x2A, Width::W8);
            if ctx.decide(&x.eq(&k)) {
                panic!("boom at 42");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::ModelPanic);
        assert_eq!(report.errors[0].counterexample.value("x"), 0x2A);
    }

    #[test]
    fn explore_mut_supports_mutable_captures() {
        let mut seen = Vec::new();
        let report = Explorer::new().explore_mut(|ctx| {
            let x = ctx.symbolic("x", Width::W1);
            let one = ctx.word(1, Width::W1);
            seen.push(ctx.decide(&x.eq(&one)));
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(seen, vec![true, false]);
    }

    #[test]
    fn canonical_order_puts_true_first() {
        assert_eq!(cmp_decision_order(&[true, false], &[false]), Ordering::Less);
        assert_eq!(
            cmp_decision_order(&[false], &[true, true]),
            Ordering::Greater
        );
        assert_eq!(cmp_decision_order(&[true], &[true]), Ordering::Equal);
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::Width;

    fn buggy_bench(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        let ten = ctx.word(10, Width::W8);
        ctx.check(&x.ult(&ten), "x below 10");
    }

    #[test]
    fn replay_reproduces_the_error_concretely() {
        let explorer = Explorer::new();
        let report = explorer.explore(buggy_bench);
        assert_eq!(report.errors.len(), 1);
        let cex = report.errors[0].counterexample.clone();
        assert!(cex.value("x") >= 10);

        let replayed = explorer.replay(&cex, buggy_bench);
        assert_eq!(replayed.errors.len(), 1, "error reproduces");
        assert_eq!(replayed.stats.paths, 1, "single concrete path");
        assert_eq!(
            replayed.errors[0].counterexample.value("x"),
            cex.value("x"),
            "replay reports the same inputs"
        );
        assert_eq!(
            replayed.stats.solver.queries, replayed.stats.solver.trivial,
            "no real solver work during replay"
        );
    }

    #[test]
    fn replay_of_good_inputs_is_silent() {
        let explorer = Explorer::new();
        let mut good = crate::error::Counterexample::default();
        let _ = &mut good; // value("x") defaults to 0, which passes
        let replayed = explorer.replay(&good, buggy_bench);
        assert!(replayed.passed());
    }

    #[test]
    fn replay_reproduces_model_panics() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            let k = ctx.word(7, Width::W8);
            if ctx.decide(&x.eq(&k)) {
                panic!("boom on 7");
            }
        };
        let explorer = Explorer::new();
        let report = explorer.explore(bench);
        let cex = report.errors[0].counterexample.clone();
        assert_eq!(cex.value("x"), 7);
        let replayed = explorer.replay(&cex, bench);
        assert_eq!(replayed.errors.len(), 1);
        assert!(replayed.errors[0].message.contains("boom"));
    }

    #[test]
    fn trace_records_the_same_fork_sites_as_exploration() {
        // Replay constant-folds the inputs, so `decide` never sees a
        // symbolic condition and the branch map stays empty; trace keeps
        // the inputs symbolic and must record exactly the fork sites the
        // symbolic exploration fingerprints.
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            let ten = ctx.word(10, Width::W8);
            if ctx.decide(&x.ult(&ten)) {
                ctx.cover("small");
            }
        };
        let explorer = Explorer::new();
        let explored = explorer.explore(bench);
        assert_eq!(explored.stats.paths, 2);
        let sites: Vec<u128> = explored.stats.branches.keys().copied().collect();
        assert_eq!(sites.len(), 1);

        let small = crate::error::Counterexample::from_pairs([("x", 3u64)]);
        let traced = explorer.trace(&small, bench);
        assert!(traced.passed());
        assert_eq!(traced.stats.paths, 1);
        let traced_sites: Vec<u128> = traced.stats.branches.keys().copied().collect();
        assert_eq!(traced_sites, sites, "same structural fingerprints");
        assert_eq!(traced.stats.branches[&sites[0]].taken, 1);
        assert_eq!(traced.stats.branches[&sites[0]].not_taken, 0);
        assert_eq!(traced.coverage.get("small"), Some(&1));
        assert_eq!(
            traced.stats.solver.queries, 0,
            "trace mode never consults the solver"
        );

        let big = crate::error::Counterexample::from_pairs([("x", 200u64)]);
        let traced = explorer.trace(&big, bench);
        assert_eq!(traced.stats.branches[&sites[0]].not_taken, 1);
        assert!(traced.coverage.is_empty());

        // Replay of the same input records no fork sites at all.
        let replayed = explorer.replay(&small, bench);
        assert!(replayed.stats.branches.is_empty());
    }

    #[test]
    fn trace_reports_violations_with_the_traced_inputs() {
        let explorer = Explorer::new();
        let bad = crate::error::Counterexample::from_pairs([("x", 42u64)]);
        let traced = explorer.trace(&bad, buggy_bench);
        assert_eq!(traced.errors.len(), 1);
        assert_eq!(traced.errors[0].counterexample.value("x"), 42);
        assert_eq!(traced.stats.paths, 1);

        let good = crate::error::Counterexample::from_pairs([("x", 3u64)]);
        assert!(explorer.trace(&good, buggy_bench).passed());
    }

    #[test]
    fn trace_handles_assume_concretize_and_panics() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(100, Width::W8)));
            let v = x.concretize();
            if v == 7 {
                panic!("boom on 7");
            }
        };
        let explorer = Explorer::new();
        let boom = crate::error::Counterexample::from_pairs([("x", 7u64)]);
        let traced = explorer.trace(&boom, bench);
        assert_eq!(traced.errors.len(), 1);
        assert_eq!(traced.errors[0].kind, ErrorKind::ModelPanic);
        assert_eq!(traced.errors[0].counterexample.value("x"), 7);

        // A traced input violating an assumption ends the path silently.
        let outside = crate::error::Counterexample::from_pairs([("x", 200u64)]);
        let traced = explorer.trace(&outside, bench);
        assert!(traced.passed());
        assert_eq!(traced.stats.paths, 1);
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::Width;

    /// A forking ladder: 4 nested decisions -> 16 paths; the path with
    /// x == 0b0111 (bits 0..2 set, bit 3 clear) errors. The first path of
    /// *any* strategy is the root (all decisions default to true), so the
    /// needle is placed one flip away from it: depth-first finds it on
    /// the very next path, breadth-first only after the other one-flip
    /// prefixes of earlier decisions.
    fn ladder(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        ctx.assume(&x.ult(&ctx.word(16, Width::W8)));
        let mut bits = [false; 4];
        for bit in 0..4u32 {
            let b = x.bit(bit).to_word();
            let one = ctx.word(1, Width::W1);
            bits[bit as usize] = ctx.decide(&b.eq(&one));
        }
        let needle = bits == [true, true, true, false]; // x == 0b0111
        ctx.check_concrete(!needle, "0b0111 is the needle");
    }

    #[test]
    fn all_strategies_find_the_same_errors() {
        for strategy in [
            SearchStrategy::DepthFirst,
            SearchStrategy::BreadthFirst,
            SearchStrategy::RandomPath(7),
            SearchStrategy::RandomPath(1234),
        ] {
            let report = Explorer::new()
                .workers(1)
                .strategy(strategy)
                .explore(ladder);
            assert_eq!(report.stats.paths, 16, "{strategy:?}");
            assert_eq!(report.errors.len(), 1, "{strategy:?}");
            assert_eq!(report.errors[0].counterexample.value("x"), 0b0111);
            assert!(report.completed, "{strategy:?}");
        }
    }

    #[test]
    fn strategies_order_paths_differently() {
        let dfs = Explorer::new()
            .workers(1)
            .strategy(SearchStrategy::DepthFirst)
            .explore(ladder);
        let bfs = Explorer::new()
            .workers(1)
            .strategy(SearchStrategy::BreadthFirst)
            .explore(ladder);
        // DFS pops the most recent fork (the bit-3 flip of the root path)
        // first; BFS drains the older forks (bits 0..2) before it.
        assert_eq!(dfs.errors[0].path, 1, "DFS: needle on the next path");
        assert_eq!(bfs.errors[0].path, 4, "BFS: needle after the level");
    }

    #[test]
    fn random_path_is_deterministic_per_seed() {
        let a = Explorer::new()
            .workers(1)
            .strategy(SearchStrategy::RandomPath(99))
            .explore(ladder);
        let b = Explorer::new()
            .workers(1)
            .strategy(SearchStrategy::RandomPath(99))
            .explore(ladder);
        assert_eq!(a.errors[0].path, b.errors[0].path);
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use crate::Width;

    #[test]
    fn coverage_counts_paths_per_bin() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(4, Width::W8)));
            ctx.cover("entered");
            if ctx.decide(&x.ult(&ctx.word(2, Width::W8))) {
                ctx.cover("low");
                ctx.cover("low"); // repeated hits on one path count once
            } else {
                ctx.cover("high");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.coverage.get("entered"), Some(&2));
        assert_eq!(report.coverage.get("low"), Some(&1));
        assert_eq!(report.coverage.get("high"), Some(&1));
        assert_eq!(report.coverage.get("never"), None, "unhit bins are absent");
    }

    #[test]
    fn coverage_survives_path_termination() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.cover("before-assume");
            ctx.assume(&x.eq(&ctx.word(200, Width::W8)));
            ctx.cover("after-assume");
            ctx.check_concrete(false, "always fails");
            ctx.cover("unreachable");
        });
        assert_eq!(report.coverage.get("before-assume"), Some(&1));
        assert_eq!(report.coverage.get("after-assume"), Some(&1));
        assert_eq!(report.coverage.get("unreachable"), None);
    }

    #[test]
    fn branch_coverage_tracks_fork_sites_per_direction() {
        let report = Explorer::new().workers(1).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(4, Width::W8)));
            // Site A forks both ways; site B only on the low half.
            if ctx.decide(&x.ult(&ctx.word(2, Width::W8))) {
                let _ = ctx.decide(&x.eq(&ctx.word(0, Width::W8)));
            }
        });
        assert_eq!(report.stats.paths, 3);
        assert_eq!(report.stats.branch_sites(), 2);
        // Site A: taken on 2 paths, not-taken on 1; site B: 1 and 1.
        let mut per_site: Vec<_> = report.stats.branches.values().collect();
        per_site.sort_by_key(|b| (b.taken, b.not_taken));
        assert_eq!((per_site[0].taken, per_site[0].not_taken), (1, 1));
        assert_eq!((per_site[1].taken, per_site[1].not_taken), (2, 1));
        assert_eq!(report.stats.branches_covered(), 4);
        assert!((report.stats.branch_coverage() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_branches_cover_half() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(4, Width::W8)));
            // Infeasible true side: the site is decided but never taken.
            let _ = ctx.decide(&x.uge(&ctx.word(10, Width::W8)));
        });
        assert_eq!(report.stats.paths, 1);
        assert_eq!(report.stats.branch_sites(), 1);
        assert_eq!(report.stats.branches_covered(), 1);
        assert!((report.stats.branch_coverage() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn branch_maps_merge_identically_across_worker_counts() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(16, Width::W8)));
            for bit in 0..4u32 {
                let b = x.bit(bit).to_word();
                let one = ctx.word(1, Width::W1);
                let _ = ctx.decide(&b.eq(&one));
            }
        };
        let seq = Explorer::new().workers(1).explore(bench);
        assert_eq!(seq.stats.branch_sites(), 4);
        for workers in [2, 4, 8] {
            let par = Explorer::new().workers(workers).explore(bench);
            assert_eq!(par.stats.branches, seq.stats.branches, "{workers} workers");
        }
    }

    #[test]
    fn replay_reports_coverage_too() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            if ctx.decide(&x.eq(&ctx.word(5, Width::W8))) {
                ctx.cover("five");
            }
        };
        let explorer = Explorer::new();
        let cex = crate::error::Counterexample::from_pairs([("x", 5u64)]);
        let replayed = explorer.replay(&cex, bench);
        assert_eq!(replayed.coverage.get("five"), Some(&1));
    }
}

//! The path explorer: forked re-execution over recorded decision prefixes.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;
use std::time::{Duration, Instant};

use crate::ctx::{EngineState, PathTerm, SymCtx};
use crate::error::{ErrorKind, Report};
use crate::stats::ExplorationStats;

thread_local! {
    static IN_EXPLORATION: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INSTALL: Once = Once::new();

/// Installs (once, process-wide) a panic hook that silences panics raised
/// while a thread is inside an exploration — path termination is control
/// flow for the engine, not a crash — and forwards everything else to the
/// previously installed hook.
fn install_quiet_hook() {
    HOOK_INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_EXPLORATION.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

/// How the explorer orders pending paths — the analogue of KLEE's
/// searchers. The paper attributes its fast time-to-first-bug to "KLEE's
/// symbolic exploration heuristics, which attempt to solve the most
/// promising paths first"; the strategy is exposed here so its effect can
/// be measured (see the `exploration` bench).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first: follow one execution to the end before backtracking
    /// (stack order). Deterministic; the default.
    DepthFirst,
    /// Breadth-first: explore all paths of depth *n* before any of depth
    /// *n + 1* (queue order). Finds shallow bugs first.
    BreadthFirst,
    /// Random-path selection with a deterministic seed (KLEE's
    /// `random-path` searcher): picks a pending prefix uniformly.
    RandomPath(u64),
}

/// Drives the symbolic exploration of a testbench closure.
///
/// The closure is executed once per path. All paths share one term pool
/// and one solver (with its query cache), so replays are cheap.
///
/// # Example
///
/// ```
/// use symsc_symex::{Explorer, Width};
///
/// let report = Explorer::new().max_paths(100).explore(|ctx| {
///     let x = ctx.symbolic("x", Width::W8);
///     let limit = ctx.word(4, Width::W8);
///     ctx.assume(&x.ult(&limit));
///     // One fork per feasible value comparison below:
///     let two = ctx.word(2, Width::W8);
///     if ctx.decide(&x.ult(&two)) {
///         ctx.check(&x.ult(&two), "consistent view");
///     }
/// });
/// assert!(report.completed);
/// assert_eq!(report.stats.paths, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Explorer {
    max_paths: u64,
    max_path_decisions: u64,
    timeout: Option<Duration>,
    query_cache: bool,
    strategy: SearchStrategy,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with default budgets (1 million paths, 100k decisions
    /// per path, no timeout, query cache on).
    pub fn new() -> Explorer {
        Explorer {
            max_paths: 1_000_000,
            max_path_decisions: 100_000,
            timeout: None,
            query_cache: true,
            strategy: SearchStrategy::DepthFirst,
        }
    }

    /// Caps the number of explored paths.
    pub fn max_paths(mut self, paths: u64) -> Explorer {
        self.max_paths = paths;
        self
    }

    /// Caps decisions per path (guards against loops over symbolic state).
    pub fn max_path_decisions(mut self, decisions: u64) -> Explorer {
        self.max_path_decisions = decisions;
        self
    }

    /// Stops exploring (marking the report incomplete) after `timeout`.
    pub fn timeout(mut self, timeout: Duration) -> Explorer {
        self.timeout = Some(timeout);
        self
    }

    /// Disables the whole-query solver cache (ablation benchmarks).
    pub fn query_cache(mut self, enabled: bool) -> Explorer {
        self.query_cache = enabled;
        self
    }

    /// Selects the path-selection strategy (default: depth-first).
    pub fn strategy(mut self, strategy: SearchStrategy) -> Explorer {
        self.strategy = strategy;
        self
    }

    /// Explores all feasible paths of `testbench`.
    ///
    /// The closure runs once per path; it must be deterministic apart from
    /// the engine's branch decisions (re-execution soundness). Panics from
    /// model code are caught and reported as [`ErrorKind::ModelPanic`]
    /// errors with a counterexample; they terminate only their own path.
    pub fn explore<F: FnMut(&SymCtx)>(&self, mut testbench: F) -> Report {
        install_quiet_hook();
        let state = Rc::new(RefCell::new(EngineState::new(
            self.max_path_decisions,
            self.query_cache,
        )));
        let mut worklist: Vec<Vec<bool>> = vec![Vec::new()];
        let start = Instant::now();
        let mut completed = true;
        let mut paths = 0u64;
        // xorshift state for SearchStrategy::RandomPath.
        let mut rng_state = match self.strategy {
            SearchStrategy::RandomPath(seed) => seed | 1,
            _ => 0,
        };

        while let Some(prefix) = self.pick_next(&mut worklist, &mut rng_state) {
            if paths >= self.max_paths {
                completed = false;
                break;
            }
            if let Some(t) = self.timeout {
                if start.elapsed() >= t {
                    completed = false;
                    break;
                }
            }

            state.borrow_mut().begin_path(prefix);
            let ctx = SymCtx::new(state.clone());
            IN_EXPLORATION.with(|f| f.set(true));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
            IN_EXPLORATION.with(|f| f.set(false));
            paths += 1;

            if let Err(payload) = outcome {
                if payload.downcast_ref::<PathTerm>().is_none() {
                    // A genuine model/testbench panic: the C++ analogue is
                    // an abort or unhandled exception. Report it with a
                    // counterexample for the current path.
                    let message = panic_message(payload.as_ref());
                    state
                        .borrow_mut()
                        .record_error_here(ErrorKind::ModelPanic, message);
                }
            }

            let mut st = state.borrow_mut();
            st.path_index += 1;
            st.end_path_coverage();
            // Push pending prefixes (discovered this run); pick_next
            // applies the search strategy on removal.
            let pending = std::mem::take(&mut st.pending);
            worklist.extend(pending);
        }

        let st = state.borrow();
        if st.budget_exhausted {
            completed = false;
        }
        let time = start.elapsed();
        Report {
            errors: st.errors.clone(),
            coverage: st.coverage.clone(),
            stats: ExplorationStats {
                paths,
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
            },
            completed,
        }
    }
}

impl Explorer {
    /// Replays a testbench *concretely* on a counterexample: every
    /// `symbolic` input resolves to its recorded value, so exactly one
    /// path executes and no solver is involved. This is the paper's
    /// "compile the bytecode into a machine-native executable and attach a
    /// debugger" step — the error reproduces deterministically.
    ///
    /// The returned report covers that single path (the reproduced errors
    /// carry the replayed input values as their counterexample).
    pub fn replay<F: FnMut(&SymCtx)>(
        &self,
        counterexample: &crate::error::Counterexample,
        mut testbench: F,
    ) -> Report {
        install_quiet_hook();
        let state = Rc::new(RefCell::new(EngineState::new(
            self.max_path_decisions,
            self.query_cache,
        )));
        state.borrow_mut().replay = Some(counterexample.to_map());
        let start = Instant::now();

        state.borrow_mut().begin_path(Vec::new());
        let ctx = SymCtx::new(state.clone());
        IN_EXPLORATION.with(|f| f.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| testbench(&ctx)));
        IN_EXPLORATION.with(|f| f.set(false));
        if let Err(payload) = outcome {
            if payload.downcast_ref::<PathTerm>().is_none() {
                let message = panic_message(payload.as_ref());
                state
                    .borrow_mut()
                    .record_error_here(ErrorKind::ModelPanic, message);
            }
        }

        let mut st = state.borrow_mut();
        st.end_path_coverage();
        let st = &*st;
        let time = start.elapsed();
        Report {
            errors: st.errors.clone(),
            coverage: st.coverage.clone(),
            stats: ExplorationStats {
                paths: 1,
                instructions: st.pool.ops_created() + st.decisions,
                decisions: st.decisions,
                time,
                solver_time: st.solver_time,
                solver: st.solver.stats(),
            },
            completed: true,
        }
    }
}

impl Explorer {
    /// Removes and returns the next prefix to explore, per the strategy.
    fn pick_next(
        &self,
        worklist: &mut Vec<Vec<bool>>,
        rng_state: &mut u64,
    ) -> Option<Vec<bool>> {
        if worklist.is_empty() {
            return None;
        }
        match self.strategy {
            SearchStrategy::DepthFirst => worklist.pop(),
            SearchStrategy::BreadthFirst => Some(worklist.remove(0)),
            SearchStrategy::RandomPath(_) => {
                // xorshift64*
                let mut x = *rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng_state = x;
                let idx = (x as usize) % worklist.len();
                Some(worklist.swap_remove(idx))
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Width;

    #[test]
    fn exhaustive_enumeration_of_small_domain() {
        // Forks once per comparison: the engine should enumerate exactly
        // the feasible orderings.
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let four = ctx.word(4, Width::W8);
            ctx.assume(&x.ult(&four)); // x in 0..4
            let mut found = 4u64;
            for v in 0..4u64 {
                let k = ctx.word(v, Width::W8);
                if ctx.decide(&x.eq(&k)) {
                    found = v;
                    break;
                }
            }
            assert!(found < 4, "x must match one of its four values");
        });
        assert!(report.completed);
        assert!(report.passed());
        assert_eq!(report.stats.paths, 4);
    }

    #[test]
    fn model_panic_is_reported_with_counterexample() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let k = ctx.word(0x2A, Width::W8);
            if ctx.decide(&x.eq(&k)) {
                panic!("boom at 42");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.kind, ErrorKind::ModelPanic);
        assert!(e.message.contains("boom"));
        assert_eq!(e.counterexample.value("x"), 0x2A);
    }

    #[test]
    fn path_budget_marks_report_incomplete() {
        let report = Explorer::new().max_paths(2).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            for v in 0..8u64 {
                let k = ctx.word(v, Width::W8);
                if ctx.decide(&x.eq(&k)) {
                    return;
                }
            }
        });
        assert!(!report.completed);
        assert_eq!(report.stats.paths, 2);
    }

    #[test]
    fn decision_budget_prevents_symbolic_loops() {
        let report = Explorer::new().max_path_decisions(16).explore(|ctx| {
            let x = ctx.symbolic("x", Width::W32);
            // `x != 0` forever: a loop whose bound is symbolic.
            let mut i = 0u64;
            loop {
                let k = ctx.word32(i as u32);
                if ctx.decide(&x.eq(&k)) {
                    break;
                }
                i += 1;
            }
        });
        assert!(!report.completed);
        let _ = report;
    }

    #[test]
    fn timeout_truncates_search() {
        let report = Explorer::new()
            .timeout(Duration::from_millis(0))
            .explore(|ctx| {
                let x = ctx.symbolic("x", Width::W8);
                let zero = ctx.word(0, Width::W8);
                let _ = ctx.decide(&x.eq(&zero));
            });
        assert!(!report.completed);
    }

    #[test]
    fn nested_forks_cover_the_cross_product() {
        let report = Explorer::new().explore(|ctx| {
            let a = ctx.symbolic("a", Width::W1);
            let b = ctx.symbolic("b", Width::W1);
            let one = ctx.word(1, Width::W1);
            let _ = ctx.decide(&a.eq(&one));
            let _ = ctx.decide(&b.eq(&one));
        });
        assert_eq!(report.stats.paths, 4);
        assert!(report.completed);
    }

    #[test]
    fn errors_found_on_multiple_paths_are_all_recorded() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let two = ctx.word(2, Width::W8);
            let rem = x.urem(&two);
            let zero = ctx.word(0, Width::W8);
            if ctx.decide(&rem.eq(&zero)) {
                ctx.check(&ctx.lit(false), "even values always fail");
            } else {
                ctx.check(&ctx.lit(false), "odd values always fail");
            }
        });
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.distinct_errors().len(), 2);
        // Counterexamples must actually be even / odd respectively.
        for e in &report.errors {
            let x = e.counterexample.value("x");
            if e.message.contains("even") {
                assert_eq!(x % 2, 0);
            } else {
                assert_eq!(x % 2, 1);
            }
        }
    }

    #[test]
    fn replay_determinism_same_report_twice() {
        let run = || {
            Explorer::new().explore(|ctx| {
                let x = ctx.symbolic("x", Width::W8);
                let ten = ctx.word(10, Width::W8);
                ctx.assume(&x.ult(&ten));
                let five = ctx.word(5, Width::W8);
                if ctx.decide(&x.ult(&five)) {
                    ctx.check(&x.ult(&five), "low half");
                } else {
                    ctx.check(&x.uge(&five), "high half");
                }
            })
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.stats.paths, r2.stats.paths);
        assert_eq!(r1.errors.len(), r2.errors.len());
        assert!(r1.passed() && r2.passed());
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::Width;

    fn buggy_bench(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        let ten = ctx.word(10, Width::W8);
        ctx.check(&x.ult(&ten), "x below 10");
    }

    #[test]
    fn replay_reproduces_the_error_concretely() {
        let explorer = Explorer::new();
        let report = explorer.explore(buggy_bench);
        assert_eq!(report.errors.len(), 1);
        let cex = report.errors[0].counterexample.clone();
        assert!(cex.value("x") >= 10);

        let replayed = explorer.replay(&cex, buggy_bench);
        assert_eq!(replayed.errors.len(), 1, "error reproduces");
        assert_eq!(replayed.stats.paths, 1, "single concrete path");
        assert_eq!(
            replayed.errors[0].counterexample.value("x"),
            cex.value("x"),
            "replay reports the same inputs"
        );
        assert_eq!(replayed.stats.solver.queries, replayed.stats.solver.trivial,
            "no real solver work during replay");
    }

    #[test]
    fn replay_of_good_inputs_is_silent() {
        let explorer = Explorer::new();
        let mut good = crate::error::Counterexample::default();
        let _ = &mut good; // value("x") defaults to 0, which passes
        let replayed = explorer.replay(&good, buggy_bench);
        assert!(replayed.passed());
    }

    #[test]
    fn replay_reproduces_model_panics() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            let k = ctx.word(7, Width::W8);
            if ctx.decide(&x.eq(&k)) {
                panic!("boom on 7");
            }
        };
        let explorer = Explorer::new();
        let report = explorer.explore(bench);
        let cex = report.errors[0].counterexample.clone();
        assert_eq!(cex.value("x"), 7);
        let replayed = explorer.replay(&cex, bench);
        assert_eq!(replayed.errors.len(), 1);
        assert!(replayed.errors[0].message.contains("boom"));
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::Width;

    /// A forking ladder: 4 nested decisions -> 16 paths; the path with
    /// x == 0b0111 (bits 0..2 set, bit 3 clear) errors. The first path of
    /// *any* strategy is the root (all decisions default to true), so the
    /// needle is placed one flip away from it: depth-first finds it on
    /// the very next path, breadth-first only after the other one-flip
    /// prefixes of earlier decisions.
    fn ladder(ctx: &SymCtx) {
        let x = ctx.symbolic("x", Width::W8);
        ctx.assume(&x.ult(&ctx.word(16, Width::W8)));
        let mut bits = [false; 4];
        for bit in 0..4u32 {
            let b = x.bit(bit).to_word();
            let one = ctx.word(1, Width::W1);
            bits[bit as usize] = ctx.decide(&b.eq(&one));
        }
        let needle = bits == [true, true, true, false]; // x == 0b0111
        ctx.check_concrete(!needle, "0b0111 is the needle");
    }

    #[test]
    fn all_strategies_find_the_same_errors() {
        for strategy in [
            SearchStrategy::DepthFirst,
            SearchStrategy::BreadthFirst,
            SearchStrategy::RandomPath(7),
            SearchStrategy::RandomPath(1234),
        ] {
            let report = Explorer::new().strategy(strategy).explore(ladder);
            assert_eq!(report.stats.paths, 16, "{strategy:?}");
            assert_eq!(report.errors.len(), 1, "{strategy:?}");
            assert_eq!(report.errors[0].counterexample.value("x"), 0b0111);
            assert!(report.completed, "{strategy:?}");
        }
    }

    #[test]
    fn strategies_order_paths_differently() {
        let dfs = Explorer::new()
            .strategy(SearchStrategy::DepthFirst)
            .explore(ladder);
        let bfs = Explorer::new()
            .strategy(SearchStrategy::BreadthFirst)
            .explore(ladder);
        // DFS pops the most recent fork (the bit-3 flip of the root path)
        // first; BFS drains the older forks (bits 0..2) before it.
        assert_eq!(dfs.errors[0].path, 1, "DFS: needle on the next path");
        assert_eq!(bfs.errors[0].path, 4, "BFS: needle after the level");
    }

    #[test]
    fn random_path_is_deterministic_per_seed() {
        let a = Explorer::new()
            .strategy(SearchStrategy::RandomPath(99))
            .explore(ladder);
        let b = Explorer::new()
            .strategy(SearchStrategy::RandomPath(99))
            .explore(ladder);
        assert_eq!(a.errors[0].path, b.errors[0].path);
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use crate::Width;

    #[test]
    fn coverage_counts_paths_per_bin() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.assume(&x.ult(&ctx.word(4, Width::W8)));
            ctx.cover("entered");
            if ctx.decide(&x.ult(&ctx.word(2, Width::W8))) {
                ctx.cover("low");
                ctx.cover("low"); // repeated hits on one path count once
            } else {
                ctx.cover("high");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.coverage.get("entered"), Some(&2));
        assert_eq!(report.coverage.get("low"), Some(&1));
        assert_eq!(report.coverage.get("high"), Some(&1));
        assert_eq!(report.coverage.get("never"), None, "unhit bins are absent");
    }

    #[test]
    fn coverage_survives_path_termination() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            ctx.cover("before-assume");
            ctx.assume(&x.eq(&ctx.word(200, Width::W8)));
            ctx.cover("after-assume");
            ctx.check_concrete(false, "always fails");
            ctx.cover("unreachable");
        });
        assert_eq!(report.coverage.get("before-assume"), Some(&1));
        assert_eq!(report.coverage.get("after-assume"), Some(&1));
        assert_eq!(report.coverage.get("unreachable"), None);
    }

    #[test]
    fn replay_reports_coverage_too() {
        let bench = |ctx: &SymCtx| {
            let x = ctx.symbolic("x", Width::W8);
            if ctx.decide(&x.eq(&ctx.word(5, Width::W8))) {
                ctx.cover("five");
            }
        };
        let explorer = Explorer::new();
        let cex = crate::error::Counterexample::from_pairs([("x", 5u64)]);
        let replayed = explorer.replay(&cex, bench);
        assert_eq!(replayed.coverage.get("five"), Some(&1));
    }
}

//! # symsc-symex — a symbolic execution engine for peripheral models
//!
//! This crate plays the role of KLEE in the reproduced paper: it executes a
//! *testbench* (an ordinary Rust closure) over symbolic bitvector values,
//! explores every feasible control path, checks assertions, and produces a
//! concrete counterexample for every error it finds.
//!
//! ## Execution model: forked re-execution
//!
//! KLEE forks interpreter states at symbolic branches. A native-code engine
//! cannot snapshot a running Rust program, so we use the re-execution
//! analogue: the [`Explorer`] runs the testbench from the
//! start once per path, forcing a recorded prefix of branch decisions and
//! letting the remainder default to the first feasible direction. Every
//! novel two-feasible branch enqueues the opposite prefix. Because the term
//! pool is hash-consed and shared across runs, replayed prefixes rebuild
//! identical terms and the whole-query solver cache absorbs the repeated
//! feasibility checks.
//!
//! ## Error classes (matching the paper's Section 4.1)
//!
//! * failed assertions ([`ErrorKind::AssertionFailed`]),
//! * invalid memory accesses ([`ErrorKind::OutOfBounds`]),
//! * division by zero ([`ErrorKind::DivisionByZero`]),
//! * unhandled model panics ([`ErrorKind::ModelPanic`]) — the analogue of
//!   an abort / unhandled exception in the C++ model.
//!
//! Every error carries a [`Counterexample`]: a concrete assignment for all
//! symbolic inputs that drives the testbench onto the erring path.
//!
//! ## Example
//!
//! ```
//! use symsc_symex::{Explorer, Width};
//!
//! // "Verify" a tiny saturating increment: buggy for x == 255.
//! let report = Explorer::new().explore(|ctx| {
//!     let x = ctx.symbolic("x", Width::W8);
//!     let one = ctx.word(1, Width::W8);
//!     let incremented = x.add(&one);          // wraps!
//!     let cond = incremented.uge(&x);
//!     ctx.check(&cond, "increment must not decrease");
//! });
//! assert_eq!(report.errors.len(), 1);
//! let cex = &report.errors[0].counterexample;
//! assert_eq!(cex.value("x"), 255);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod ctx;
pub mod error;
pub mod explore;
pub mod stats;
pub mod value;

pub use array::SymArray;
pub use ctx::SymCtx;
pub use error::{Counterexample, ErrorKind, Report, SymError};
pub use explore::{Explorer, SearchStrategy};
pub use stats::{BranchCoverage, ExplorationStats};
pub use symsc_smt::Width;
pub use value::{SymBool, SymWord};

//! # symsc-symex — a symbolic execution engine for peripheral models
//!
//! This crate plays the role of KLEE in the reproduced paper: it executes a
//! *testbench* (an ordinary Rust closure) over symbolic bitvector values,
//! explores every feasible control path, checks assertions, and produces a
//! concrete counterexample for every error it finds.
//!
//! ## Execution model: copy-on-write snapshot forking
//!
//! KLEE forks interpreter states at symbolic branches. A native-code
//! engine cannot suspend a running Rust closure, so a fork captures a
//! snapshot of the live *solver-relevant* path state — the concretization
//! journal and the errors recorded on the
//! shared prefix — in copy-on-write structures ([`cow::CowVec`]) whose
//! fork cost is O(changed state). Resuming a snapshot re-runs the native
//! code over the forced decision prefix, but *fast-forwards* it: no
//! solver call, no feasibility probe, no counterexample model is ever
//! recomputed on the prefix, because the forking path already did that
//! work. Live execution (and solving) picks up exactly at the fork point.
//! The original forked re-execution engine — prefixes re-solved from
//! scratch — remains available as
//! [`ForkStrategy::Reexec`](explore::ForkStrategy), the differential
//! oracle: both strategies produce byte-identical reports, because every
//! report-relevant value (branch verdicts, counterexample models,
//! concretized values) is a pure function of the structural constraint
//! set rather than of the path's cached-model history.
//!
//! ## Error classes (matching the paper's Section 4.1)
//!
//! * failed assertions ([`ErrorKind::AssertionFailed`]),
//! * invalid memory accesses ([`ErrorKind::OutOfBounds`]),
//! * division by zero ([`ErrorKind::DivisionByZero`]),
//! * unhandled model panics ([`ErrorKind::ModelPanic`]) — the analogue of
//!   an abort / unhandled exception in the C++ model.
//!
//! Every error carries a [`Counterexample`]: a concrete assignment for all
//! symbolic inputs that drives the testbench onto the erring path.
//!
//! ## Example
//!
//! ```
//! use symsc_symex::{Explorer, Width};
//!
//! // "Verify" a tiny saturating increment: buggy for x == 255.
//! let report = Explorer::new().explore(|ctx| {
//!     let x = ctx.symbolic("x", Width::W8);
//!     let one = ctx.word(1, Width::W8);
//!     let incremented = x.add(&one);          // wraps!
//!     let cond = incremented.uge(&x);
//!     ctx.check(&cond, "increment must not decrease");
//! });
//! assert_eq!(report.errors.len(), 1);
//! let cex = &report.errors[0].counterexample;
//! assert_eq!(cex.value("x"), 255);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cow;
pub mod ctx;
pub mod error;
pub mod explore;
pub mod merge;
mod snapshot;
pub mod stats;
pub mod value;

pub use array::SymArray;
pub use cow::{CowEnv, CowVec};
pub use ctx::SymCtx;
pub use error::{Counterexample, ErrorKind, Report, SymError};
pub use explore::{Explorer, ForkStrategy, SearchStrategy};
pub use merge::{ExploreOrder, StateDigest};
pub use stats::{BranchCoverage, ExplorationStats};
pub use symsc_smt::Width;
pub use value::{SymBool, SymWord};

//! Suspended path snapshots — the explorer's unit of work.
//!
//! A fork captures the forking path's live, solver-relevant state instead
//! of just a decision prefix: the concretization journal (values already
//! pinned on the shared prefix) and the errors already recorded on it.
//! Everything in a snapshot is *pool-independent* — directions, `u64`
//! values, rendered errors — because parallel workers keep private term
//! pools, and a snapshot forked on one worker must be resumable (stolen)
//! by any other. Terms are rebuilt structurally during fast-forward; the
//! hash-consed pools guarantee the rebuilt constraint set is identical.

use crate::cow::CowVec;
use crate::error::SymError;
use crate::merge::TraceEvent;

/// A suspended engine state, ready to be resumed by any worker.
///
/// Under the copy-on-write strategy the engine *fast-forwards* through
/// `prefix` — pushing constraints and replaying `journal` without a single
/// solver call — and resumes live execution at the fork point. Under the
/// re-execution oracle strategy, `journal` and `errors` stay empty and the
/// prefix is re-solved from scratch, which is the original engine
/// semantics the differential harness compares against.
#[derive(Clone, Debug, Default)]
pub(crate) struct PathSnapshot {
    /// Branch directions from the root to (and including) the flipped
    /// fork decision.
    pub(crate) prefix: Vec<bool>,
    /// Values pinned by `concretize` on the shared prefix, in call order.
    /// O(chunks) to fork, shared with every sibling until one diverges.
    pub(crate) journal: CowVec<u64>,
    /// Errors recorded on the shared prefix (check-style guards record
    /// and continue, so a fork can extend past them). Restored verbatim
    /// with the path index rewritten to the resuming path's.
    pub(crate) errors: Vec<SymError>,
    /// The fork site's structural fingerprint — what the resumed path
    /// decides `false` at. `None` only for the root. Drives the
    /// coverage-guided scheduler.
    pub(crate) flip_site: Option<u128>,
    /// Prefix trace `Error` events with their event-stream positions
    /// (`MergeEager` only). Fast-forward rebuilds every other event from
    /// the re-executed prefix, but errors are restored — not re-solved —
    /// so their events are carried and re-inserted at the recorded
    /// positions.
    pub(crate) trace_errors: Vec<(usize, TraceEvent)>,
}

impl PathSnapshot {
    /// The root snapshot: no forced decisions, nothing to restore.
    pub(crate) fn root() -> PathSnapshot {
        PathSnapshot::default()
    }

    /// A prefix-only snapshot — the re-execution oracle's unit of work.
    pub(crate) fn from_prefix(prefix: Vec<bool>) -> PathSnapshot {
        PathSnapshot {
            prefix,
            ..PathSnapshot::default()
        }
    }

    /// Whether this is the root of an exploration (nothing forced).
    pub(crate) fn is_root(&self) -> bool {
        self.prefix.is_empty() && self.journal.is_empty() && self.errors.is_empty()
    }

    /// The forced prefix this snapshot identifies — the unit-of-work key
    /// for join-point subtree accounting.
    pub(crate) fn unit_prefix(&self) -> &[bool] {
        &self.prefix
    }
}

//! Error reports and counterexamples.

use std::collections::BTreeMap;
use std::fmt;

use symsc_smt::Model;

use crate::stats::ExplorationStats;

/// The class of a detected error, mirroring the error classes KLEE reports
/// in the paper (failed assertion, invalid memory access, software trap,
/// unhandled exception).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// A testbench or model assertion evaluated to false on some path.
    AssertionFailed,
    /// An access outside the bounds of a modeled memory or register.
    OutOfBounds,
    /// A division or remainder with a (possibly) zero divisor.
    DivisionByZero,
    /// The model panicked — the analogue of an abort or unhandled C++
    /// exception terminating the simulation.
    ModelPanic,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ErrorKind::AssertionFailed => "assertion failed",
            ErrorKind::OutOfBounds => "out-of-bounds access",
            ErrorKind::DivisionByZero => "division by zero",
            ErrorKind::ModelPanic => "model panic",
        };
        f.write_str(text)
    }
}

/// A concrete assignment for every symbolic input on an erring path.
///
/// Replaying the testbench with these values (see
/// `Verifier::replay` in `symsysc-core`) reproduces the error
/// deterministically — the paper's point ⑥, attaching a debugger to a
/// concrete executable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counterexample {
    values: BTreeMap<String, u64>,
}

impl Counterexample {
    /// Builds a counterexample from a solver model and the inputs declared
    /// on the erring path (inputs missing from the model are don't-care and
    /// read as zero).
    pub(crate) fn from_model(model: &Model, inputs: &[String]) -> Counterexample {
        let values = inputs
            .iter()
            .map(|name| (name.clone(), model.value_or_zero(name)))
            .collect();
        Counterexample { values }
    }

    /// Builds a counterexample from explicit replay values.
    pub(crate) fn from_values(
        values: &std::collections::HashMap<String, u64>,
        inputs: &[String],
    ) -> Counterexample {
        let values = inputs
            .iter()
            .map(|name| (name.clone(), values.get(name).copied().unwrap_or(0)))
            .collect();
        Counterexample { values }
    }

    /// Builds a counterexample from explicit `(input, value)` pairs —
    /// used by random-testing baselines to drive concrete replays.
    pub fn from_pairs<I, S>(pairs: I) -> Counterexample
    where
        I: IntoIterator<Item = (S, u64)>,
        S: Into<String>,
    {
        Counterexample {
            values: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// The recorded inputs as a `name -> value` map (for replay).
    pub fn to_map(&self) -> std::collections::HashMap<String, u64> {
        self.values.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// The concrete value of input `name` (zero if the input was not
    /// declared on the erring path).
    pub fn value(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(input, value)` pairs in input-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of recorded inputs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no inputs were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = {value}")?;
        }
        write!(f, "}}")
    }
}

/// One detected error with its reproduction data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymError {
    /// The error class.
    pub kind: ErrorKind,
    /// A human-readable description (the assertion message, panic payload,
    /// or access description).
    pub message: String,
    /// Concrete input values reaching the error.
    pub counterexample: Counterexample,
    /// Index of the exploration path on which the error was found.
    pub path: u64,
    /// Wall-clock time from exploration start to this detection — the
    /// quantity the paper's Table 2 reports.
    pub found_at: std::time::Duration,
}

impl fmt::Display for SymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (path {}, inputs {})",
            self.kind, self.message, self.path, self.counterexample
        )
    }
}

/// The result of a full (or truncated) state-space exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Every error occurrence, in discovery order. The same underlying bug
    /// typically errors on many paths; see
    /// [`distinct_errors`](Report::distinct_errors).
    pub errors: Vec<SymError>,
    /// Functional-coverage bins: label → number of paths that hit it
    /// (see [`SymCtx::cover`](crate::SymCtx::cover)).
    pub coverage: BTreeMap<String, u64>,
    /// Aggregate statistics (paths, instructions, solver time).
    pub stats: ExplorationStats,
    /// `true` if the state space was fully explored; `false` if a path,
    /// time or decision budget truncated the search.
    pub completed: bool,
}

impl Report {
    /// Whether the run found no errors (a *Pass* in the paper's Table 1).
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }

    /// Distinct errors, deduplicated by `(kind, message)` — the paper's
    /// "number of detected failures".
    pub fn distinct_errors(&self) -> Vec<&SymError> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.errors {
            if seen.insert((e.kind, e.message.clone())) {
                out.push(e);
            }
        }
        out
    }

    /// The first error, if any (useful for time-to-first-error reporting).
    pub fn first_error(&self) -> Option<&SymError> {
        self.errors.first()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let distinct = self.distinct_errors();
        if distinct.is_empty() {
            writeln!(f, "PASS ({} paths)", self.stats.paths)?;
        } else {
            writeln!(
                f,
                "FAIL ({} distinct error(s), {} occurrence(s), {} paths)",
                distinct.len(),
                self.errors.len(),
                self.stats.paths
            )?;
            for e in distinct {
                writeln!(f, "  {e}")?;
            }
        }
        write!(f, "{}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_error(kind: ErrorKind, message: &str) -> SymError {
        SymError {
            kind,
            message: message.to_string(),
            counterexample: Counterexample::default(),
            path: 0,
            found_at: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn distinct_errors_dedupe_by_kind_and_message() {
        let report = Report {
            errors: vec![
                dummy_error(ErrorKind::AssertionFailed, "a"),
                dummy_error(ErrorKind::AssertionFailed, "a"),
                dummy_error(ErrorKind::AssertionFailed, "b"),
                dummy_error(ErrorKind::ModelPanic, "a"),
            ],
            coverage: BTreeMap::new(),
            stats: ExplorationStats::default(),
            completed: true,
        };
        assert_eq!(report.distinct_errors().len(), 3);
        assert!(!report.passed());
    }

    #[test]
    fn counterexample_reads_missing_inputs_as_zero() {
        let cex = Counterexample::default();
        assert_eq!(cex.value("nope"), 0);
        assert!(cex.is_empty());
    }

    #[test]
    fn display_formats() {
        let e = dummy_error(ErrorKind::OutOfBounds, "read past register");
        let text = e.to_string();
        assert!(text.contains("out-of-bounds"));
        assert!(text.contains("read past register"));
    }
}

//! The symbolic execution context: path constraints, branch decisions,
//! assumptions, assertions and error recording.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use symsc_smt::{Model, SatResult, Solver, TermId, TermPool, Width};

use crate::cow::CowVec;
use crate::error::{Counterexample, ErrorKind, SymError};
use crate::merge::{
    hash_marks, join_key, split_suffix, suffix_closure, touches_closure, MergeShared, OwnerEntry,
    PathRecord, PathTrace, Suffix, TraceEvent,
};
use crate::snapshot::PathSnapshot;
use crate::value::{SymBool, SymWord};

/// Internal marker unwound through the testbench to terminate a path.
/// Callers never see it: the explorer catches and interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PathTerm;

/// Engine state shared between the explorer and every [`SymCtx`] /
/// [`SymWord`] handle of one exploration.
///
/// Pool and solver live for the *whole* exploration (all paths); the
/// remaining fields are reset per path by
/// [`begin_path`](EngineState::begin_path).
pub(crate) struct EngineState {
    pub(crate) pool: TermPool,
    pub(crate) solver: Solver,
    /// Exploration-level accumulators.
    pub(crate) errors: Vec<SymError>,
    pub(crate) decisions: u64,
    pub(crate) path_index: u64,
    pub(crate) solver_time: Duration,
    pub(crate) started: Instant,
    /// Per-path state.
    pub(crate) constraints: Vec<TermId>,
    forced: Vec<bool>,
    cursor: usize,
    taken: Vec<bool>,
    pub(crate) pending: Vec<PathSnapshot>,
    pub(crate) inputs: Vec<String>,
    /// Copy-on-write fork strategy: a fork captures a [`PathSnapshot`] of
    /// the live path state, and resuming one *fast-forwards* through the
    /// forced prefix without any solver work. When `false`, forks record
    /// a bare decision prefix that is re-solved from scratch — the
    /// original engine, kept as the differential oracle.
    cow: bool,
    /// Values pinned by `concretize` on the current path, in call order.
    /// Restored from the resumed snapshot; consumed during fast-forward,
    /// appended to in the free region.
    journal: CowVec<u64>,
    journal_cursor: usize,
    /// `errors.len()` at path start: errors at or past this index belong
    /// to the current path and travel with snapshots forked from it.
    path_error_base: usize,
    /// Snapshots captured across the whole exploration (stats).
    pub(crate) fork_snapshots: u64,
    /// Decisions replayed solver-free during fast-forward (stats).
    pub(crate) ff_decisions: u64,
    /// Reusable constraint buffer for [`check`](Self::check); avoids a
    /// per-query allocation on the hot path.
    scratch: Vec<TermId>,
    path_decisions: u64,
    max_path_decisions: u64,
    pub(crate) budget_exhausted: bool,
    /// Concrete replay mode: symbolic inputs resolve to these values.
    pub(crate) replay: Option<std::collections::HashMap<String, u64>>,
    /// Concolic trace mode: inputs stay symbolic (so fork-site
    /// fingerprints are the ones exploration would see) but every
    /// decision is *evaluated* under this assignment instead of solved —
    /// a single concrete path with real branch coverage and no solver
    /// work. This is the fuzzer's execution mode.
    pub(crate) trace: Option<std::collections::HashMap<String, u64>>,
    /// Functional-coverage bins: label -> number of paths that hit it.
    pub(crate) coverage: std::collections::BTreeMap<String, u64>,
    /// Bins hit on the current path (merged into `coverage` per path).
    path_coverage: std::collections::BTreeSet<String>,
    /// Symbolic branch coverage: fork-site fingerprint -> per-direction
    /// path counts (merged from `path_branches` per path).
    pub(crate) branches: std::collections::BTreeMap<u128, crate::stats::BranchCoverage>,
    /// `(site, direction)` pairs decided on the current path. Sites are
    /// structural fingerprints, so they agree across pools and workers.
    path_branches: std::collections::BTreeSet<(u128, bool)>,
    /// A cached satisfying assignment for the current path constraints
    /// (KLEE's "eager evaluation" trick): branch feasibility can often be
    /// answered by evaluating the condition under this model instead of
    /// calling the solver.
    cur_env: Option<std::collections::HashMap<String, u64>>,
    /// Join-point merge state shared across workers; `Some` only under
    /// `ExploreOrder::MergeEager`, which also enables trace recording.
    pub(crate) merge: Option<Arc<MergeShared>>,
    /// State digests published by the testbench via `note_state` on the
    /// current path (tag -> digest), part of the join key.
    state_marks: std::collections::BTreeMap<String, u64>,
    /// Armed by `note_state`, consumed by the next *symbolic* decision
    /// (concrete decisions pass through), which becomes a join point.
    fence_armed: bool,
    /// The current path's structural trace (MergeEager only).
    trace_events: Vec<TraceEvent>,
    /// Live terms behind every fingerprint in `trace_events` (constraints,
    /// pins, error negations — the latter are *not* in `constraints`), so
    /// the whole trace can be encoded into the shared transcript store.
    trace_terms: Vec<TermId>,
    /// Prefix `Error` events restored from the resumed snapshot, keyed by
    /// event-stream position; re-inserted while fast-forward rebuilds the
    /// rest of the prefix trace (errors are restored, never re-solved).
    carried_events: VecDeque<(usize, TraceEvent)>,
    /// Set when the current path was terminated by a join-point adoption:
    /// the driver drops the partial path and keeps `adopted_records`.
    pub(crate) adopted: bool,
    /// Represented paths synthesized by the adoption (one per owner
    /// suffix), ready for canonical report assembly.
    pub(crate) adopted_records: Vec<PathRecord>,
}

impl EngineState {
    /// A fresh engine state around a pre-configured `solver`. Parallel
    /// workers receive solvers built over clones of one shared cache
    /// stack, so a query or slice solved on any worker is a hit on every
    /// other.
    pub(crate) fn new(max_path_decisions: u64, solver: Solver, cow: bool) -> EngineState {
        EngineState {
            pool: TermPool::new(),
            solver,
            errors: Vec::new(),
            decisions: 0,
            path_index: 0,
            solver_time: Duration::ZERO,
            started: Instant::now(),
            constraints: Vec::new(),
            forced: Vec::new(),
            cursor: 0,
            taken: Vec::new(),
            pending: Vec::new(),
            inputs: Vec::new(),
            cow,
            journal: CowVec::new(),
            journal_cursor: 0,
            path_error_base: 0,
            fork_snapshots: 0,
            ff_decisions: 0,
            scratch: Vec::new(),
            path_decisions: 0,
            max_path_decisions,
            budget_exhausted: false,
            replay: None,
            trace: None,
            coverage: std::collections::BTreeMap::new(),
            path_coverage: std::collections::BTreeSet::new(),
            branches: std::collections::BTreeMap::new(),
            path_branches: std::collections::BTreeSet::new(),
            cur_env: None,
            merge: None,
            state_marks: std::collections::BTreeMap::new(),
            fence_armed: false,
            trace_events: Vec::new(),
            trace_terms: Vec::new(),
            carried_events: VecDeque::new(),
            adopted: false,
            adopted_records: Vec::new(),
        }
    }

    pub(crate) fn begin_path(&mut self, snapshot: PathSnapshot) {
        // Replay and trace execute exactly one path on a fresh engine;
        // resuming a forked snapshot in those modes would silently replay
        // stale state, so it is a hard error. Callers holding a snapshot
        // must explore it, not replay it.
        assert!(
            (self.replay.is_none() && self.trace.is_none()) || snapshot.is_root(),
            "replay/trace require a fresh engine per path: \
             cannot resume a forked snapshot"
        );
        // A new path invalidates the solver's per-path incremental
        // context: its asserted prefix belongs to the path just ended.
        self.solver.begin_path();
        self.constraints.clear();
        self.forced = snapshot.prefix;
        self.cursor = 0;
        self.taken.clear();
        self.inputs.clear();
        self.path_decisions = 0;
        self.path_coverage.clear();
        self.path_branches.clear();
        self.journal = snapshot.journal;
        self.journal_cursor = 0;
        // Errors already recorded on the shared prefix resume with this
        // path, re-indexed to it. (Only check-style guards record and
        // continue; killing errors never precede a fork.)
        self.path_error_base = self.errors.len();
        for mut error in snapshot.errors {
            error.path = self.path_index;
            self.errors.push(error);
        }
        self.state_marks.clear();
        self.fence_armed = false;
        self.trace_events.clear();
        self.trace_terms.clear();
        self.carried_events = snapshot.trace_errors.into_iter().collect();
        self.adopted = false;
        self.adopted_records.clear();
        if self.cow && !self.forced.is_empty() {
            // Fast-forward holds no cached model: the prefix needs no
            // feasibility answers (the parent already solved them), and
            // the free region re-establishes a model on first use.
            self.cur_env = None;
        } else {
            // The empty assignment satisfies the (empty) constraint set.
            self.cur_env = Some(std::collections::HashMap::new());
        }
    }

    /// Whether the engine is solver-free fast-forwarding a resumed
    /// snapshot's forced prefix (copy-on-write strategy only).
    fn in_fast_forward(&self) -> bool {
        self.cow && self.cursor < self.forced.len()
    }

    /// Publishes a digest of live testbench state under `tag` and arms
    /// the join fence: the next *symbolic* decision becomes a join point
    /// keyed by (fork-site fingerprint, published marks). A no-op unless
    /// merging is enabled.
    pub(crate) fn note_state(&mut self, tag: &str, digest: u64) {
        if self.merge.is_none() {
            return;
        }
        self.state_marks.insert(tag.to_string(), digest);
        self.fence_armed = true;
    }

    /// Appends a trace event, re-inserting any carried prefix `Error`
    /// events whose recorded position has been reached. A no-op unless
    /// merging is enabled.
    fn record_event(&mut self, event: TraceEvent) {
        if self.merge.is_none() {
            return;
        }
        while self
            .carried_events
            .front()
            .is_some_and(|(pos, _)| *pos <= self.trace_events.len())
        {
            let (_, carried) = self.carried_events.pop_front().expect("front checked");
            self.trace_events.push(carried);
        }
        self.trace_events.push(event);
    }

    /// Drains every remaining carried error event into the trace. All
    /// carried positions lie inside the rebuilt prefix, so once the path
    /// is live (fork, adoption, harvest) they all belong before the tail.
    fn flush_carried_all(&mut self) {
        while let Some((_, event)) = self.carried_events.pop_front() {
            self.trace_events.push(event);
        }
    }

    /// Records a pushed path constraint in the trace.
    fn record_constraint(&mut self, c: TermId) {
        if self.merge.is_some() {
            let fp = self.pool.fingerprint(c);
            self.trace_terms.push(c);
            self.record_event(TraceEvent::Constraint(fp));
        }
    }

    /// Records a pushed concretization pin in the trace.
    fn record_pin(&mut self, pin: TermId) {
        if self.merge.is_some() {
            let fp = self.pool.fingerprint(pin);
            self.trace_terms.push(pin);
            self.record_event(TraceEvent::Pin(fp));
        }
    }

    /// Records an error event. `neg` is the violated condition's negation
    /// when the error model was solved against `constraints ∪ {neg}`
    /// (check-style guards); `None` when it was solved against the bare
    /// path constraints (`fail_path`, model panics).
    fn record_error_event(&mut self, kind: ErrorKind, message: &str, neg: Option<TermId>) {
        if self.merge.is_none() {
            return;
        }
        let neg_fp = neg.map(|t| {
            self.trace_terms.push(t);
            self.pool.fingerprint(t)
        });
        let cons_hwm = self.constraints.len();
        self.record_event(TraceEvent::Error {
            kind,
            message: message.to_string(),
            cons_hwm,
            neg: neg_fp,
        });
    }

    /// Publishes the just-finished path's trace (and the terms behind its
    /// fingerprints) into the shared merge state. Drivers call this for
    /// every *non-adopted* path, before removing the path's work unit.
    pub(crate) fn publish_trace(&mut self) {
        let Some(shared) = self.merge.clone() else {
            return;
        };
        self.flush_carried_all();
        let mut ms = shared.lock();
        for &t in &self.trace_terms {
            ms.store.encode(&self.pool, t);
        }
        ms.traces.push(PathTrace {
            taken: self.taken.clone(),
            events: std::mem::take(&mut self.trace_events),
        });
    }

    /// Marks a coverage bin as hit on the current path.
    pub(crate) fn cover(&mut self, label: &str) {
        self.record_event(TraceEvent::Cover(label.to_string()));
        self.path_coverage.insert(label.to_string());
    }

    /// Folds the current path's bins into the exploration-level counts.
    pub(crate) fn end_path_coverage(&mut self) {
        for label in std::mem::take(&mut self.path_coverage) {
            *self.coverage.entry(label).or_insert(0) += 1;
        }
    }

    /// The decision directions taken on the current path so far.
    pub(crate) fn taken_so_far(&self) -> Vec<bool> {
        self.taken.clone()
    }

    /// Removes and returns the coverage bins hit on the current path.
    /// Parallel workers fold these into the merged report themselves
    /// instead of going through [`end_path_coverage`](Self::end_path_coverage).
    pub(crate) fn take_path_coverage(&mut self) -> std::collections::BTreeSet<String> {
        std::mem::take(&mut self.path_coverage)
    }

    /// Folds the current path's `(site, direction)` pairs into the
    /// exploration-level branch-coverage counts.
    pub(crate) fn end_path_branches(&mut self) {
        for (site, dir) in std::mem::take(&mut self.path_branches) {
            let entry = self.branches.entry(site).or_default();
            if dir {
                entry.taken += 1;
            } else {
                entry.not_taken += 1;
            }
        }
    }

    /// Removes and returns the `(site, direction)` pairs decided on the
    /// current path; the parallel merge counts them itself.
    pub(crate) fn take_path_branches(&mut self) -> std::collections::BTreeSet<(u128, bool)> {
        std::mem::take(&mut self.path_branches)
    }

    /// Evaluates a width-1 term under the cached model, if one is held.
    fn env_value(&self, cond: TermId) -> Option<bool> {
        self.cur_env
            .as_ref()
            .map(|env| symsc_smt::eval::evaluate(&self.pool, cond, env) == 1)
    }

    fn adopt_model(&mut self, model: &Model) {
        self.cur_env = Some(model.to_env());
    }

    fn check(&mut self, extra: Option<TermId>) -> SatResult {
        let start = Instant::now();
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.constraints);
        if let Some(e) = extra {
            self.scratch.push(e);
        }
        // The freshly-pushed constraint is the focus hint: the solver
        // solves its slice first so an infeasible branch short-circuits.
        let result = self
            .solver
            .check_with_focus(&self.pool, &self.scratch, extra);
        self.solver_time += start.elapsed();
        result
    }

    /// Verdict-only feasibility of `self.constraints ∪ {focus}`. The path
    /// constraints are kept satisfiable by construction, which lets the
    /// solver solve only the slice containing `focus` and answer SAT from
    /// cached witness models — much cheaper than a full [`check`], but it
    /// yields no model, so it is only used for fork-feasibility probes.
    fn check_feasible(&mut self, focus: TermId) -> bool {
        let start = Instant::now();
        let feasible = self
            .solver
            .check_feasible(&self.pool, &self.constraints, focus);
        self.solver_time += start.elapsed();
        feasible
    }

    fn record_error(&mut self, kind: ErrorKind, message: String, model: &Model) {
        let counterexample = if let Some(values) = &self.replay {
            Counterexample::from_values(values, &self.inputs)
        } else if let Some(values) = &self.trace {
            Counterexample::from_values(values, &self.inputs)
        } else {
            Counterexample::from_model(model, &self.inputs)
        };
        self.errors.push(SymError {
            kind,
            message,
            counterexample,
            path: self.path_index,
            found_at: self.started.elapsed(),
        });
    }

    /// Records an error against the current path's own feasibility model
    /// (used when the erring condition is already part of the path).
    ///
    /// The model always comes from a *canonical* solve of the path
    /// constraints — never from the cached feasibility witness — so the
    /// counterexample is a pure function of the structural constraint
    /// set. That is what makes a copy-on-write resume and a forced
    /// re-execution of the same path report byte-identical errors even
    /// though their cached-model histories differ.
    pub(crate) fn record_error_here(&mut self, kind: ErrorKind, message: String) {
        if self.replay.is_some() || self.trace.is_some() {
            // The concrete inputs are recorded directly ([`record_error`]
            // reads the replay/trace map); no solver call is needed, and
            // trace mode must stay solver-free.
            let unused = Model::new();
            self.record_error(kind, message, &unused);
            return;
        }
        match self.check(None) {
            SatResult::Sat(model) => {
                let model = model.clone();
                self.record_error_event(kind, &message, None);
                self.record_error(kind, message, &model);
            }
            SatResult::Unsat => {
                // The path constraints are kept feasible by construction;
                // reaching here would indicate an engine bug.
                debug_assert!(false, "erring path has infeasible constraints");
            }
        }
    }

    fn kill_path(&self) -> ! {
        std::panic::panic_any(PathTerm)
    }

    fn count_decision(&mut self) {
        if self.in_fast_forward() {
            self.ff_decisions += 1;
        }
        self.decisions += 1;
        self.path_decisions += 1;
        if self.path_decisions > self.max_path_decisions {
            // A runaway loop over symbolic state; truncate this path and
            // mark the exploration incomplete.
            self.budget_exhausted = true;
            self.kill_path();
        }
    }

    /// Captures the opposite fork of the current decision as a pending
    /// unit of work. Under the copy-on-write strategy this snapshots the
    /// live path state (journal, prefix errors) so the fork resumes
    /// without re-solving the prefix; under the re-execution oracle it
    /// records only the decision prefix, exactly as the original engine.
    fn push_fork(&mut self, site: u128) {
        let mut prefix = self.taken.clone();
        prefix.push(false);
        let trace_errors = if self.merge.is_some() && self.cow {
            // The fork inherits the prefix errors' trace events at their
            // recorded positions; everything else is rebuilt during
            // fast-forward. (Re-execution re-records errors live, so it
            // carries nothing.) All carried events precede the fork point.
            self.flush_carried_all();
            self.trace_events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, TraceEvent::Error { .. }))
                .map(|(i, e)| (i, e.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let snapshot = if self.cow {
            self.fork_snapshots += 1;
            PathSnapshot {
                prefix,
                journal: self.journal.clone(),
                errors: self.errors[self.path_error_base..].to_vec(),
                flip_site: Some(site),
                trace_errors,
            }
        } else {
            PathSnapshot {
                flip_site: Some(site),
                trace_errors,
                ..PathSnapshot::from_prefix(prefix)
            }
        };
        self.pending.push(snapshot);
    }

    /// Resolves a symbolic condition to a concrete branch direction,
    /// forking (enqueueing the opposite prefix) when both are feasible.
    pub(crate) fn decide(&mut self, cond: TermId) -> bool {
        if let Some(c) = self.pool.const_value(cond) {
            return c == 1;
        }
        self.count_decision();
        // The fork-site id: a structural fingerprint, so the same program
        // point yields the same id in every pool and on every worker.
        // Recorded for forced (replayed) and free decisions alike — a
        // path's covered set is independent of how it was reached.
        let site = self.pool.fingerprint(cond);

        if let Some(env) = &self.trace {
            let dir = symsc_smt::eval::evaluate(&self.pool, cond, env) == 1;
            self.taken.push(dir);
            self.path_branches.insert((site, dir));
            return dir;
        }

        if self.cursor < self.forced.len() {
            // A forced (replayed) decision consumes an armed fence without
            // registering a join: the owner of this site is the path that
            // decided it live, and it has already registered.
            self.fence_armed = false;
            let dir = self.forced[self.cursor];
            self.cursor += 1;
            let c = if dir { cond } else { self.pool.not(cond) };
            // Keep the cached model only if it satisfies the new constraint.
            if self.env_value(c) != Some(true) {
                self.cur_env = None;
            }
            self.constraints.push(c);
            self.taken.push(dir);
            self.path_branches.insert((site, dir));
            self.record_event(TraceEvent::Decide { site, dir });
            self.record_constraint(c);
            return dir;
        }

        if self.fence_armed {
            // A live symbolic decision right after the testbench published
            // its state: this is a join point. The first arrival registers
            // as the subtree owner; a later arrival from a different
            // subtree tries to adopt the owner's recorded suffixes instead
            // of re-executing them.
            self.fence_armed = false;
            if self.merge.is_some() && self.try_adopt(site) {
                self.kill_path();
            }
        }

        let not_cond = self.pool.not(cond);
        match self.env_value(cond) {
            Some(true) => {
                // True branch witnessed by the cached model: only the
                // forking check needs the solver, and only as a verdict.
                if self.check_feasible(not_cond) {
                    self.push_fork(site);
                }
                self.constraints.push(cond);
                self.taken.push(true);
                self.path_branches.insert((site, true));
                self.record_event(TraceEvent::Decide { site, dir: true });
                self.record_constraint(cond);
                true
            }
            Some(false) => {
                // False branch witnessed; prefer true if it is feasible.
                match self.check(Some(cond)) {
                    SatResult::Sat(model) => {
                        self.push_fork(site);
                        self.adopt_model(&model);
                        self.constraints.push(cond);
                        self.taken.push(true);
                        self.path_branches.insert((site, true));
                        self.record_event(TraceEvent::Decide { site, dir: true });
                        self.record_constraint(cond);
                        true
                    }
                    SatResult::Unsat => {
                        self.constraints.push(not_cond);
                        self.taken.push(false);
                        self.path_branches.insert((site, false));
                        self.record_event(TraceEvent::Decide { site, dir: false });
                        self.record_constraint(not_cond);
                        false
                    }
                }
            }
            None => match self.check(Some(cond)) {
                SatResult::Sat(model) => {
                    if self.check_feasible(not_cond) {
                        self.push_fork(site);
                    }
                    self.adopt_model(&model);
                    self.constraints.push(cond);
                    self.taken.push(true);
                    self.path_branches.insert((site, true));
                    self.record_event(TraceEvent::Decide { site, dir: true });
                    self.record_constraint(cond);
                    true
                }
                SatResult::Unsat => {
                    // The path itself is feasible, so the negation must be.
                    self.constraints.push(not_cond);
                    self.taken.push(false);
                    self.path_branches.insert((site, false));
                    self.record_event(TraceEvent::Decide { site, dir: false });
                    self.record_constraint(not_cond);
                    false
                }
            },
        }
    }

    /// Adds an assumption; kills the path if it becomes infeasible.
    pub(crate) fn assume(&mut self, cond: TermId) {
        if self.pool.is_true(cond) {
            return;
        }
        if self.pool.is_false(cond) {
            self.kill_path();
        }
        self.count_decision();
        if let Some(env) = &self.trace {
            if symsc_smt::eval::evaluate(&self.pool, cond, env) != 1 {
                self.kill_path();
            }
            return;
        }
        if self.in_fast_forward() {
            // The forking path already survived this assumption, so the
            // prefix stays feasible with `cond`: push it without solving.
            self.constraints.push(cond);
            self.record_constraint(cond);
            return;
        }
        if self.env_value(cond) != Some(true) {
            match self.check(Some(cond)) {
                SatResult::Sat(model) => self.adopt_model(&model),
                SatResult::Unsat => self.kill_path(),
            }
        }
        self.constraints.push(cond);
        self.record_constraint(cond);
    }

    /// Checks an assertion. If the negation is feasible, records an error
    /// with a counterexample; the path then continues under the asserted
    /// condition (KLEE terminates only the erring fork).
    pub(crate) fn check_assert(&mut self, cond: TermId, message: &str) {
        self.check_guard(cond, ErrorKind::AssertionFailed, message);
    }

    /// Guards a division: records a [`ErrorKind::DivisionByZero`] if the
    /// divisor can be zero, then continues under `divisor != 0`.
    pub(crate) fn check_div_guard(&mut self, nonzero: TermId) {
        self.check_guard(nonzero, ErrorKind::DivisionByZero, "divisor can be zero");
    }

    fn check_guard(&mut self, cond: TermId, kind: ErrorKind, message: &str) {
        if self.pool.is_true(cond) {
            return;
        }
        self.count_decision();
        if let Some(env) = &self.trace {
            // Concolic: the check either holds under the traced input or
            // it is a finding — there is no "other fork" to continue on,
            // exactly like replay mode.
            if symsc_smt::eval::evaluate(&self.pool, cond, env) != 1 {
                self.record_error_here(kind, message.to_string());
                self.kill_path();
            }
            return;
        }
        if self.in_fast_forward() {
            // The forking path already ran this guard: a violation it
            // found travels in the snapshot's restored errors (and its
            // trace event in the carried positions), and the path
            // continued under `cond` either way. Re-recording (or
            // re-solving) here would duplicate work the parent did.
            self.constraints.push(cond);
            self.record_constraint(cond);
            return;
        }
        let not_cond = self.pool.not(cond);
        // The cached model may witness the violation (skipping the
        // feasibility probe), but the recorded counterexample always
        // comes from the canonical full solve below: the cached model
        // depends on how the path was reached (resumed or re-executed),
        // the canonical model only on the structural constraint set —
        // which is what keeps COW and re-exec reports byte-identical.
        let violated = if self.env_value(not_cond) != Some(true)
            && self.solver.incremental_enabled()
            && !self.check_feasible(not_cond)
        {
            // Verdict-only fast path: a passing check is an UNSAT verdict
            // and needs no model, so the incremental per-path context can
            // answer it as an assumption solve on the retained prefix. A
            // feasible violation falls through to the full solve below,
            // which produces the canonical counterexample model — so the
            // report is byte-identical with the probe on or off.
            false
        } else if let SatResult::Sat(model) = self.check(Some(not_cond)) {
            self.record_error_event(kind, message, Some(not_cond));
            self.record_error(kind, message.to_string(), &model);
            true
        } else {
            false
        };
        if violated {
            // Continue only if the condition itself can still hold.
            if self.pool.is_false(cond) {
                self.kill_path();
            }
            if self.env_value(cond) != Some(true) {
                match self.check(Some(cond)) {
                    SatResult::Sat(model) => self.adopt_model(&model),
                    SatResult::Unsat => self.kill_path(),
                }
            }
        } else if self.env_value(cond) != Some(true) {
            // No violation exists, so `cond` is implied by the path; the
            // cached model (a path model) must satisfy it.
            debug_assert!(self.cur_env.is_none(), "path model violates implied cond");
            if let SatResult::Sat(model) = self.check(Some(cond)) {
                self.adopt_model(&model);
            }
        }
        self.constraints.push(cond);
        self.record_constraint(cond);
    }

    /// KLEE-style concretization: pick a satisfying value for `id`, pin the
    /// path to it, and return it.
    ///
    /// The value comes from a *canonical* solve of the path constraints
    /// (not the cached witness model), so it is a pure function of the
    /// structural constraint set — a resumed snapshot replays the same
    /// value from its journal that a forced re-execution would recompute.
    pub(crate) fn concretize(&mut self, id: TermId, width: Width) -> u64 {
        if let Some(env) = &self.trace {
            // Concolic: the traced assignment already fixes every input.
            return symsc_smt::eval::evaluate(&self.pool, id, env);
        }
        if let Some(value) = self.pool.const_value(id) {
            // Already concrete (always the case in replay mode, which
            // constant-folds the inputs): nothing to pin, nothing to solve.
            return value;
        }
        if self.in_fast_forward() {
            // The forking path already pinned this value; consume it from
            // the journal and rebuild the pin constraint solver-free.
            let value = *self
                .journal
                .get(self.journal_cursor)
                .expect("concretization journal underran the forced prefix");
            self.journal_cursor += 1;
            let k = self.pool.constant(value, width);
            let pin = self.pool.eq(id, k);
            self.constraints.push(pin);
            self.record_pin(pin);
            return value;
        }
        match self.check(None) {
            SatResult::Sat(model) => {
                self.adopt_model(&model);
                let env = self.cur_env.as_ref().expect("model adopted above");
                let value = symsc_smt::eval::evaluate(&self.pool, id, env);
                let k = self.pool.constant(value, width);
                let pin = self.pool.eq(id, k);
                self.constraints.push(pin);
                self.record_pin(pin);
                if self.cow {
                    debug_assert_eq!(
                        self.journal_cursor,
                        self.journal.len(),
                        "free-region journal appends follow the replayed entries"
                    );
                    self.journal.push(value);
                    self.journal_cursor += 1;
                }
                value
            }
            SatResult::Unsat => {
                debug_assert!(false, "concretize on infeasible path");
                self.kill_path()
            }
        }
    }

    /// The join-point protocol (see the [`crate::merge`] module docs),
    /// run at a live symbolic decision that consumed an armed fence.
    ///
    /// Returns `true` when this path adopted the join owner's suffixes:
    /// `adopted_records` then holds one synthesized represented path per
    /// suffix and the caller terminates the path. Returns `false` when
    /// the path registered as the owner, is inside the owner's subtree,
    /// or a soundness check failed — execution then continues normally.
    fn try_adopt(&mut self, site: u128) -> bool {
        let Some(shared) = self.merge.clone() else {
            return false;
        };
        self.flush_carried_all();
        let key = join_key(site, hash_marks(&self.state_marks));

        /// Per-suffix adoption plan: the suffix plus the decoded terms
        /// its error re-solves need (empty for error-free suffixes).
        struct Plan {
            suffix: Suffix,
            cons_terms: Vec<TermId>,
            neg_terms: HashMap<u128, TermId>,
        }

        let mut plans: Vec<Plan> = Vec::new();
        // Subsumption obligations (filled only when implication is
        // needed): prove `self.constraints ⊢ t` for each of the owner's
        // extra constraints, and `owner_terms ⊢ t` for each of ours.
        let mut theirs_only: Vec<TermId> = Vec::new();
        let mut mine_only: Vec<TermId> = Vec::new();
        let mut owner_terms: Vec<TermId> = Vec::new();
        let mut need_implication = false;

        {
            let mut ms = shared.lock();
            // Make every term this path's trace references decodable by
            // later adopters, and fingerprint this prefix's constraints.
            for &t in &self.trace_terms {
                ms.store.encode(&self.pool, t);
            }
            let mut fp_of: HashMap<u128, TermId> = HashMap::new();
            let mut my_fps: Vec<u128> = Vec::with_capacity(self.constraints.len());
            for &c in &self.constraints {
                let fp = ms.store.encode(&self.pool, c);
                fp_of.insert(fp, c);
                my_fps.push(fp);
            }
            let owner = if let Some(owner) = ms.owners.get(&key) {
                owner.clone()
            } else {
                // First arrival: own the subtree and explore it normally.
                ms.owners.insert(
                    key,
                    OwnerEntry {
                        prefix: self.taken.clone(),
                        fps: my_fps,
                    },
                );
                ms.counters.join_sites += 1;
                return false;
            };
            let depth = owner.prefix.len();
            if depth <= self.taken.len() && self.taken[..depth] == owner.prefix[..] {
                // Inside the owner's own subtree: this is the owner (or
                // one of its forks) exploring it — nothing to adopt.
                return false;
            }
            if depth > self.taken.len() {
                // An owner below this path's depth cannot arise from the
                // fork discipline; refuse rather than reason about it.
                ms.counters.merge_rejects += 1;
                return false;
            }
            if ms.subtree_active(&owner.prefix) {
                // The owner's subtree is still being explored (parallel
                // workers): adopting now would miss its pending paths.
                ms.counters.merge_rejects += 1;
                return false;
            }
            for trace in &ms.traces {
                if trace.taken.len() > depth && trace.taken[..depth] == owner.prefix[..] {
                    if let Some(suffix) = split_suffix(trace, depth) {
                        plans.push(Plan {
                            suffix,
                            cons_terms: Vec::new(),
                            neg_terms: HashMap::new(),
                        });
                    }
                }
            }
            if plans.is_empty() {
                ms.counters.merge_rejects += 1;
                return false;
            }
            // Soundness: equal prefix constraint sets, support-disjoint
            // diffs, or (for model-free suffixes) mutual SMT implication.
            let owner_set: BTreeSet<u128> = owner.fps.iter().copied().collect();
            let my_set: BTreeSet<u128> = my_fps.iter().copied().collect();
            let diff_theirs: BTreeSet<u128> = owner_set.difference(&my_set).copied().collect();
            let diff_mine: BTreeSet<u128> = my_set.difference(&owner_set).copied().collect();
            if !(diff_theirs.is_empty() && diff_mine.is_empty()) {
                let mut suffix_fps: BTreeSet<u128> = BTreeSet::new();
                for plan in &plans {
                    for event in &plan.suffix.events {
                        match event {
                            TraceEvent::Constraint(fp) | TraceEvent::Pin(fp) => {
                                suffix_fps.insert(*fp);
                            }
                            TraceEvent::Error { neg: Some(fp), .. } => {
                                suffix_fps.insert(*fp);
                            }
                            _ => {}
                        }
                    }
                }
                let prefix_fps: BTreeSet<u128> = owner_set.union(&my_set).copied().collect();
                let closure = suffix_closure(&mut ms.store, &suffix_fps, &prefix_fps);
                let harmful_theirs: Vec<u128> = diff_theirs
                    .iter()
                    .copied()
                    .filter(|&fp| touches_closure(&mut ms.store, &closure, fp))
                    .collect();
                let harmful_mine: Vec<u128> = diff_mine
                    .iter()
                    .copied()
                    .filter(|&fp| touches_closure(&mut ms.store, &closure, fp))
                    .collect();
                if !harmful_theirs.is_empty() || !harmful_mine.is_empty() {
                    // The suffix can observe these diffs; closure-disjoint
                    // ones stay harmless either way (independence slices).
                    // Observable diffs need the mutual implication proof —
                    // which preserves verdicts, not models, so pins and
                    // error counterexamples in the suffix force execution.
                    if plans.iter().any(|p| p.suffix.has_models()) {
                        ms.counters.merge_rejects += 1;
                        return false;
                    }
                    need_implication = true;
                    let mut memo: HashMap<u128, TermId> = HashMap::new();
                    theirs_only = harmful_theirs
                        .iter()
                        .map(|&fp| ms.store.decode(&mut self.pool, fp, &mut memo))
                        .collect();
                    mine_only = harmful_mine.iter().map(|&fp| fp_of[&fp]).collect();
                    owner_terms = owner
                        .fps
                        .iter()
                        .map(|&fp| ms.store.decode(&mut self.pool, fp, &mut memo))
                        .collect();
                }
            }
            // Decode the terms the error re-solves will need, while the
            // store is at hand (only suffixes that recorded errors).
            let mut memo: HashMap<u128, TermId> = HashMap::new();
            for plan in &mut plans {
                let has_errors = plan
                    .suffix
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Error { .. }));
                if !has_errors {
                    continue;
                }
                for event in &plan.suffix.events {
                    match event {
                        TraceEvent::Constraint(fp) | TraceEvent::Pin(fp) => {
                            plan.cons_terms
                                .push(ms.store.decode(&mut self.pool, *fp, &mut memo));
                        }
                        TraceEvent::Error { neg: Some(fp), .. } => {
                            let t = ms.store.decode(&mut self.pool, *fp, &mut memo);
                            plan.neg_terms.insert(*fp, t);
                        }
                        _ => {}
                    }
                }
            }
        }

        if need_implication {
            // Subsumption: mutually implying prefixes have equal feasible
            // sets, so every suffix *verdict* is identical under either.
            // Solver work happens outside the merge lock.
            let start = Instant::now();
            let equivalent = theirs_only.iter().all(|&t| {
                self.solver
                    .check_implied(&mut self.pool, &self.constraints, t)
            }) && mine_only
                .iter()
                .all(|&t| self.solver.check_implied(&mut self.pool, &owner_terms, t));
            self.solver_time += start.elapsed();
            if !equivalent {
                shared.lock().counters.merge_rejects += 1;
                return false;
            }
        }

        // Synthesize one represented path per suffix: this path's prefix
        // (decisions, coverage, branches, errors, inputs) composed with
        // the owner's recorded continuation. Errors are re-solved
        // canonically under *this* prefix — the same structural solve the
        // exhaustive oracle would run on the represented path.
        let base_cons = self.constraints.len();
        let own_errors: Vec<SymError> = self.errors[self.path_error_base..].to_vec();
        let mut records: Vec<PathRecord> = Vec::with_capacity(plans.len());
        let mut syn_traces: Vec<PathTrace> = Vec::with_capacity(plans.len());
        for plan in &plans {
            let suffix = &plan.suffix;
            let mut taken = self.taken.clone();
            taken.extend_from_slice(&suffix.taken_tail);
            let mut coverage = self.path_coverage.clone();
            let mut branches = self.path_branches.clone();
            let mut errors = own_errors.clone();
            let mut inputs = self.inputs.clone();
            let mut events = self.trace_events.clone();
            let mut cons_seen = 0usize;
            for event in &suffix.events {
                match event {
                    TraceEvent::Decide { site, dir } => {
                        branches.insert((*site, *dir));
                        events.push(event.clone());
                    }
                    TraceEvent::Constraint(_) | TraceEvent::Pin(_) => {
                        cons_seen += 1;
                        events.push(event.clone());
                    }
                    TraceEvent::Cover(label) => {
                        coverage.insert(label.clone());
                        events.push(event.clone());
                    }
                    TraceEvent::Input(name) => {
                        if !inputs.iter().any(|n| n == name) {
                            inputs.push(name.clone());
                        }
                        events.push(event.clone());
                    }
                    TraceEvent::Error {
                        kind,
                        message,
                        cons_hwm,
                        neg,
                    } => {
                        debug_assert_eq!(cons_seen, *cons_hwm - suffix.pre_cons);
                        let focus =
                            neg.map(|fp| *plan.neg_terms.get(&fp).expect("neg term decoded"));
                        let mut terms: Vec<TermId> = Vec::with_capacity(base_cons + cons_seen + 1);
                        terms.extend_from_slice(&self.constraints);
                        terms.extend_from_slice(&plan.cons_terms[..cons_seen]);
                        if let Some(f) = focus {
                            terms.push(f);
                        }
                        let start = Instant::now();
                        let result = self.solver.check_with_focus(&self.pool, &terms, focus);
                        self.solver_time += start.elapsed();
                        if let SatResult::Sat(model) = result {
                            errors.push(SymError {
                                kind: *kind,
                                message: message.clone(),
                                counterexample: Counterexample::from_model(&model, &inputs),
                                path: 0,
                                found_at: self.started.elapsed(),
                            });
                        } else {
                            debug_assert!(false, "adopted error re-solve is infeasible");
                        }
                        events.push(TraceEvent::Error {
                            kind: *kind,
                            message: message.clone(),
                            cons_hwm: base_cons + (*cons_hwm - suffix.pre_cons),
                            neg: *neg,
                        });
                    }
                }
            }
            syn_traces.push(PathTrace {
                taken: taken.clone(),
                events,
            });
            records.push(PathRecord {
                taken,
                errors,
                coverage,
                branches,
            });
        }

        {
            // Publish the synthetic traces *before* the driver removes
            // this path's work unit, so an enclosing join never sees its
            // subtree complete without them.
            let mut ms = shared.lock();
            ms.traces.extend(syn_traces);
            let n = records.len() as u64;
            if need_implication {
                ms.counters.subsumed_paths += n;
            } else {
                ms.counters.merged_paths += n;
            }
        }
        self.adopted = true;
        self.adopted_records = records;
        true
    }

    /// Records a non-assertion error (out-of-bounds, division by zero, …)
    /// on the current path and terminates the path, mirroring how KLEE
    /// terminates a path at a memory error.
    pub(crate) fn fail_path(&mut self, kind: ErrorKind, message: String) -> ! {
        self.record_error_here(kind, message);
        self.kill_path()
    }
}

/// Handle to the running symbolic execution, passed to testbenches.
///
/// Cloning is cheap (reference-counted); [`SymWord`]s hold their own clone
/// so model code can operate on symbolic values without carrying the
/// context around explicitly.
#[derive(Clone)]
pub struct SymCtx {
    pub(crate) inner: Arc<Mutex<EngineState>>,
}

impl std::fmt::Debug for SymCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.engine();
        f.debug_struct("SymCtx")
            .field("path", &st.path_index)
            .field("constraints", &st.constraints.len())
            .field("errors", &st.errors.len())
            .finish()
    }
}

impl SymCtx {
    pub(crate) fn new(inner: Arc<Mutex<EngineState>>) -> SymCtx {
        SymCtx { inner }
    }

    /// Locks the engine state. Path termination unwinds a
    /// [`PathTerm`] panic *through* held guards, which poisons the mutex;
    /// that poisoning is benign (`kill_path` only fires at points where the
    /// state is consistent), so the poison flag is deliberately cleared.
    pub(crate) fn engine(&self) -> MutexGuard<'_, EngineState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Declares a fresh symbolic input of the given width — the analogue
    /// of `klee_int("name")`.
    ///
    /// Re-declaring the same name on a later path returns the same
    /// variable, which is what re-execution requires.
    pub fn symbolic(&self, name: &str, width: Width) -> SymWord {
        let id = {
            let mut st = self.engine();
            if !st.inputs.iter().any(|n| n == name) {
                st.inputs.push(name.to_string());
                st.record_event(TraceEvent::Input(name.to_string()));
            }
            match &st.replay {
                // Concrete replay: the "symbolic" input is the recorded
                // counterexample value.
                Some(values) => {
                    let value = values.get(name).copied().unwrap_or(0);
                    st.pool.constant(value, width)
                }
                None => st.pool.var(name, width),
            }
        };
        SymWord::from_raw(self.clone(), id, width)
    }

    /// A concrete word of the given width.
    pub fn word(&self, value: u64, width: Width) -> SymWord {
        let id = self.engine().pool.constant(value, width);
        SymWord::from_raw(self.clone(), id, width)
    }

    /// A concrete 32-bit word (the natural TLM register width).
    pub fn word32(&self, value: u32) -> SymWord {
        self.word(u64::from(value), Width::W32)
    }

    /// A concrete boolean.
    pub fn lit(&self, value: bool) -> SymBool {
        let id = {
            let mut st = self.engine();
            if value {
                st.pool.tru()
            } else {
                st.pool.fls()
            }
        };
        SymBool::from_raw(self.clone(), id)
    }

    /// Constrains the path with `cond` — the analogue of `klee_assume`.
    /// If the assumption is infeasible the current path terminates
    /// silently.
    pub fn assume(&self, cond: &SymBool) {
        let id = cond.id();
        self.engine().assume(id);
    }

    /// Asserts `cond`; any feasible violation is recorded as an
    /// [`ErrorKind::AssertionFailed`] with a counterexample. Execution
    /// continues on the non-violating fork, like KLEE terminating only the
    /// erring path.
    pub fn check(&self, cond: &SymBool, message: &str) {
        let id = cond.id();
        self.engine().check_assert(id, message);
    }

    /// Asserts an already-concrete condition (e.g. a counter in the mock
    /// HART). A violation is recorded as an [`ErrorKind::AssertionFailed`]
    /// with the current path's counterexample and terminates the path.
    pub fn check_concrete(&self, cond: bool, message: &str) {
        let b = self.lit(cond);
        self.check(&b, message);
    }

    /// Resolves a symbolic condition to a concrete `bool`, forking the
    /// exploration if both directions are feasible. Model code uses this
    /// for every control-flow decision over symbolic data.
    pub fn decide(&self, cond: &SymBool) -> bool {
        let id = cond.id();
        self.engine().decide(id)
    }

    /// Records a non-assertion error (memory fault, trap, protocol
    /// violation) and terminates the current path.
    pub fn fail(&self, kind: ErrorKind, message: impl Into<String>) -> ! {
        self.engine().fail_path(kind, message.into())
    }

    /// Marks a functional-coverage bin as hit on the current path. The
    /// report counts, per bin, how many explored paths reached it —
    /// verification-closure data for testbench review (which scenarios
    /// the symbolic exploration actually drove).
    pub fn cover(&self, label: &str) {
        self.engine().cover(label);
    }

    /// Publishes a digest of the testbench's live state under `tag` and
    /// marks the next symbolic decision as a potential *join point* for
    /// [`ExploreOrder::MergeEager`](crate::ExploreOrder): two paths
    /// arriving at the same decision site with identical published
    /// digests share their continuation, and the explorer may merge or
    /// subsume one into the other's already-explored subtree. Publish
    /// every piece of state the continuation depends on (peripheral
    /// snapshot hashes, kernel state) — unpublished state that differs
    /// between the paths would make the merge unsound. A no-op under the
    /// other exploration orders.
    pub fn note_state(&self, tag: &str, digest: u64) {
        self.engine().note_state(tag, digest);
    }

    /// Number of errors recorded so far in this exploration.
    pub fn error_count(&self) -> usize {
        self.engine().errors.len()
    }

    /// The current path's index (0-based).
    pub fn path_index(&self) -> u64 {
        self.engine().path_index
    }

    pub(crate) fn with_pool<R>(&self, f: impl FnOnce(&mut TermPool) -> R) -> R {
        f(&mut self.engine().pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn concrete_conditions_do_not_fork() {
        let report = Explorer::new().explore(|ctx| {
            let t = ctx.lit(true);
            assert!(ctx.decide(&t));
            let f = ctx.lit(false);
            assert!(!ctx.decide(&f));
        });
        assert_eq!(report.stats.paths, 1);
        assert_eq!(report.stats.decisions, 0);
    }

    #[test]
    fn symbolic_condition_forks_two_paths() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            let c = x.eq(&zero);
            let _ = ctx.decide(&c);
        });
        assert_eq!(report.stats.paths, 2);
        assert!(report.completed);
    }

    #[test]
    fn assume_prunes_infeasible_branches() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let five = ctx.word(5, Width::W8);
            ctx.assume(&x.eq(&five));
            // x == 5 is now forced; this branch cannot fork.
            let c = x.eq(&five);
            assert!(ctx.decide(&c));
        });
        assert_eq!(report.stats.paths, 1);
        assert!(report.passed());
    }

    #[test]
    fn failing_assert_produces_counterexample() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let ten = ctx.word(10, Width::W8);
            ctx.check(&x.ult(&ten), "x must be below 10");
        });
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.kind, ErrorKind::AssertionFailed);
        assert!(e.counterexample.value("x") >= 10);
    }

    #[test]
    fn passing_assert_is_silent() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let big = ctx.word(255, Width::W8);
            ctx.check(&x.ule(&big), "trivially true");
        });
        assert!(report.passed());
    }

    #[test]
    fn fail_terminates_path_but_not_exploration() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            if ctx.decide(&x.eq(&zero)) {
                ctx.fail(ErrorKind::OutOfBounds, "zero is out of bounds");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::OutOfBounds);
        assert_eq!(report.errors[0].counterexample.value("x"), 0);
    }
}

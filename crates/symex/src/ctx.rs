//! The symbolic execution context: path constraints, branch decisions,
//! assumptions, assertions and error recording.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use symsc_smt::{Model, SatResult, Solver, TermId, TermPool, Width};

use crate::cow::CowVec;
use crate::error::{Counterexample, ErrorKind, SymError};
use crate::snapshot::PathSnapshot;
use crate::value::{SymBool, SymWord};

/// Internal marker unwound through the testbench to terminate a path.
/// Callers never see it: the explorer catches and interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PathTerm;

/// Engine state shared between the explorer and every [`SymCtx`] /
/// [`SymWord`] handle of one exploration.
///
/// Pool and solver live for the *whole* exploration (all paths); the
/// remaining fields are reset per path by
/// [`begin_path`](EngineState::begin_path).
pub(crate) struct EngineState {
    pub(crate) pool: TermPool,
    pub(crate) solver: Solver,
    /// Exploration-level accumulators.
    pub(crate) errors: Vec<SymError>,
    pub(crate) decisions: u64,
    pub(crate) path_index: u64,
    pub(crate) solver_time: Duration,
    pub(crate) started: Instant,
    /// Per-path state.
    pub(crate) constraints: Vec<TermId>,
    forced: Vec<bool>,
    cursor: usize,
    taken: Vec<bool>,
    pub(crate) pending: Vec<PathSnapshot>,
    pub(crate) inputs: Vec<String>,
    /// Copy-on-write fork strategy: a fork captures a [`PathSnapshot`] of
    /// the live path state, and resuming one *fast-forwards* through the
    /// forced prefix without any solver work. When `false`, forks record
    /// a bare decision prefix that is re-solved from scratch — the
    /// original engine, kept as the differential oracle.
    cow: bool,
    /// Values pinned by `concretize` on the current path, in call order.
    /// Restored from the resumed snapshot; consumed during fast-forward,
    /// appended to in the free region.
    journal: CowVec<u64>,
    journal_cursor: usize,
    /// `errors.len()` at path start: errors at or past this index belong
    /// to the current path and travel with snapshots forked from it.
    path_error_base: usize,
    /// Snapshots captured across the whole exploration (stats).
    pub(crate) fork_snapshots: u64,
    /// Decisions replayed solver-free during fast-forward (stats).
    pub(crate) ff_decisions: u64,
    /// Reusable constraint buffer for [`check`](Self::check); avoids a
    /// per-query allocation on the hot path.
    scratch: Vec<TermId>,
    path_decisions: u64,
    max_path_decisions: u64,
    pub(crate) budget_exhausted: bool,
    /// Concrete replay mode: symbolic inputs resolve to these values.
    pub(crate) replay: Option<std::collections::HashMap<String, u64>>,
    /// Concolic trace mode: inputs stay symbolic (so fork-site
    /// fingerprints are the ones exploration would see) but every
    /// decision is *evaluated* under this assignment instead of solved —
    /// a single concrete path with real branch coverage and no solver
    /// work. This is the fuzzer's execution mode.
    pub(crate) trace: Option<std::collections::HashMap<String, u64>>,
    /// Functional-coverage bins: label -> number of paths that hit it.
    pub(crate) coverage: std::collections::BTreeMap<String, u64>,
    /// Bins hit on the current path (merged into `coverage` per path).
    path_coverage: std::collections::BTreeSet<String>,
    /// Symbolic branch coverage: fork-site fingerprint -> per-direction
    /// path counts (merged from `path_branches` per path).
    pub(crate) branches: std::collections::BTreeMap<u128, crate::stats::BranchCoverage>,
    /// `(site, direction)` pairs decided on the current path. Sites are
    /// structural fingerprints, so they agree across pools and workers.
    path_branches: std::collections::BTreeSet<(u128, bool)>,
    /// A cached satisfying assignment for the current path constraints
    /// (KLEE's "eager evaluation" trick): branch feasibility can often be
    /// answered by evaluating the condition under this model instead of
    /// calling the solver.
    cur_env: Option<std::collections::HashMap<String, u64>>,
}

impl EngineState {
    /// A fresh engine state around a pre-configured `solver`. Parallel
    /// workers receive solvers built over clones of one shared cache
    /// stack, so a query or slice solved on any worker is a hit on every
    /// other.
    pub(crate) fn new(max_path_decisions: u64, solver: Solver, cow: bool) -> EngineState {
        EngineState {
            pool: TermPool::new(),
            solver,
            errors: Vec::new(),
            decisions: 0,
            path_index: 0,
            solver_time: Duration::ZERO,
            started: Instant::now(),
            constraints: Vec::new(),
            forced: Vec::new(),
            cursor: 0,
            taken: Vec::new(),
            pending: Vec::new(),
            inputs: Vec::new(),
            cow,
            journal: CowVec::new(),
            journal_cursor: 0,
            path_error_base: 0,
            fork_snapshots: 0,
            ff_decisions: 0,
            scratch: Vec::new(),
            path_decisions: 0,
            max_path_decisions,
            budget_exhausted: false,
            replay: None,
            trace: None,
            coverage: std::collections::BTreeMap::new(),
            path_coverage: std::collections::BTreeSet::new(),
            branches: std::collections::BTreeMap::new(),
            path_branches: std::collections::BTreeSet::new(),
            cur_env: None,
        }
    }

    pub(crate) fn begin_path(&mut self, snapshot: PathSnapshot) {
        // Replay and trace execute exactly one path on a fresh engine;
        // resuming a forked snapshot in those modes would silently replay
        // stale state, so it is a hard error. Callers holding a snapshot
        // must explore it, not replay it.
        assert!(
            (self.replay.is_none() && self.trace.is_none()) || snapshot.is_root(),
            "replay/trace require a fresh engine per path: \
             cannot resume a forked snapshot"
        );
        // A new path invalidates the solver's per-path incremental
        // context: its asserted prefix belongs to the path just ended.
        self.solver.begin_path();
        self.constraints.clear();
        self.forced = snapshot.prefix;
        self.cursor = 0;
        self.taken.clear();
        self.inputs.clear();
        self.path_decisions = 0;
        self.path_coverage.clear();
        self.path_branches.clear();
        self.journal = snapshot.journal;
        self.journal_cursor = 0;
        // Errors already recorded on the shared prefix resume with this
        // path, re-indexed to it. (Only check-style guards record and
        // continue; killing errors never precede a fork.)
        self.path_error_base = self.errors.len();
        for mut error in snapshot.errors {
            error.path = self.path_index;
            self.errors.push(error);
        }
        if self.cow && !self.forced.is_empty() {
            // Fast-forward holds no cached model: the prefix needs no
            // feasibility answers (the parent already solved them), and
            // the free region re-establishes a model on first use.
            self.cur_env = None;
        } else {
            // The empty assignment satisfies the (empty) constraint set.
            self.cur_env = Some(std::collections::HashMap::new());
        }
    }

    /// Whether the engine is solver-free fast-forwarding a resumed
    /// snapshot's forced prefix (copy-on-write strategy only).
    fn in_fast_forward(&self) -> bool {
        self.cow && self.cursor < self.forced.len()
    }

    /// Marks a coverage bin as hit on the current path.
    pub(crate) fn cover(&mut self, label: &str) {
        self.path_coverage.insert(label.to_string());
    }

    /// Folds the current path's bins into the exploration-level counts.
    pub(crate) fn end_path_coverage(&mut self) {
        for label in std::mem::take(&mut self.path_coverage) {
            *self.coverage.entry(label).or_insert(0) += 1;
        }
    }

    /// The decision directions taken on the current path so far.
    pub(crate) fn taken_so_far(&self) -> Vec<bool> {
        self.taken.clone()
    }

    /// Removes and returns the coverage bins hit on the current path.
    /// Parallel workers fold these into the merged report themselves
    /// instead of going through [`end_path_coverage`](Self::end_path_coverage).
    pub(crate) fn take_path_coverage(&mut self) -> std::collections::BTreeSet<String> {
        std::mem::take(&mut self.path_coverage)
    }

    /// Folds the current path's `(site, direction)` pairs into the
    /// exploration-level branch-coverage counts.
    pub(crate) fn end_path_branches(&mut self) {
        for (site, dir) in std::mem::take(&mut self.path_branches) {
            let entry = self.branches.entry(site).or_default();
            if dir {
                entry.taken += 1;
            } else {
                entry.not_taken += 1;
            }
        }
    }

    /// Removes and returns the `(site, direction)` pairs decided on the
    /// current path; the parallel merge counts them itself.
    pub(crate) fn take_path_branches(&mut self) -> std::collections::BTreeSet<(u128, bool)> {
        std::mem::take(&mut self.path_branches)
    }

    /// Evaluates a width-1 term under the cached model, if one is held.
    fn env_value(&self, cond: TermId) -> Option<bool> {
        self.cur_env
            .as_ref()
            .map(|env| symsc_smt::eval::evaluate(&self.pool, cond, env) == 1)
    }

    fn adopt_model(&mut self, model: &Model) {
        self.cur_env = Some(model.to_env());
    }

    fn check(&mut self, extra: Option<TermId>) -> SatResult {
        let start = Instant::now();
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.constraints);
        if let Some(e) = extra {
            self.scratch.push(e);
        }
        // The freshly-pushed constraint is the focus hint: the solver
        // solves its slice first so an infeasible branch short-circuits.
        let result = self
            .solver
            .check_with_focus(&self.pool, &self.scratch, extra);
        self.solver_time += start.elapsed();
        result
    }

    /// Verdict-only feasibility of `self.constraints ∪ {focus}`. The path
    /// constraints are kept satisfiable by construction, which lets the
    /// solver solve only the slice containing `focus` and answer SAT from
    /// cached witness models — much cheaper than a full [`check`], but it
    /// yields no model, so it is only used for fork-feasibility probes.
    fn check_feasible(&mut self, focus: TermId) -> bool {
        let start = Instant::now();
        let feasible = self
            .solver
            .check_feasible(&self.pool, &self.constraints, focus);
        self.solver_time += start.elapsed();
        feasible
    }

    fn record_error(&mut self, kind: ErrorKind, message: String, model: &Model) {
        let counterexample = if let Some(values) = &self.replay {
            Counterexample::from_values(values, &self.inputs)
        } else if let Some(values) = &self.trace {
            Counterexample::from_values(values, &self.inputs)
        } else {
            Counterexample::from_model(model, &self.inputs)
        };
        self.errors.push(SymError {
            kind,
            message,
            counterexample,
            path: self.path_index,
            found_at: self.started.elapsed(),
        });
    }

    /// Records an error against the current path's own feasibility model
    /// (used when the erring condition is already part of the path).
    ///
    /// The model always comes from a *canonical* solve of the path
    /// constraints — never from the cached feasibility witness — so the
    /// counterexample is a pure function of the structural constraint
    /// set. That is what makes a copy-on-write resume and a forced
    /// re-execution of the same path report byte-identical errors even
    /// though their cached-model histories differ.
    pub(crate) fn record_error_here(&mut self, kind: ErrorKind, message: String) {
        if self.replay.is_some() || self.trace.is_some() {
            // The concrete inputs are recorded directly ([`record_error`]
            // reads the replay/trace map); no solver call is needed, and
            // trace mode must stay solver-free.
            let unused = Model::new();
            self.record_error(kind, message, &unused);
            return;
        }
        match self.check(None) {
            SatResult::Sat(model) => {
                let model = model.clone();
                self.record_error(kind, message, &model);
            }
            SatResult::Unsat => {
                // The path constraints are kept feasible by construction;
                // reaching here would indicate an engine bug.
                debug_assert!(false, "erring path has infeasible constraints");
            }
        }
    }

    fn kill_path(&self) -> ! {
        std::panic::panic_any(PathTerm)
    }

    fn count_decision(&mut self) {
        if self.in_fast_forward() {
            self.ff_decisions += 1;
        }
        self.decisions += 1;
        self.path_decisions += 1;
        if self.path_decisions > self.max_path_decisions {
            // A runaway loop over symbolic state; truncate this path and
            // mark the exploration incomplete.
            self.budget_exhausted = true;
            self.kill_path();
        }
    }

    /// Captures the opposite fork of the current decision as a pending
    /// unit of work. Under the copy-on-write strategy this snapshots the
    /// live path state (journal, prefix errors) so the fork resumes
    /// without re-solving the prefix; under the re-execution oracle it
    /// records only the decision prefix, exactly as the original engine.
    fn push_fork(&mut self) {
        let mut prefix = self.taken.clone();
        prefix.push(false);
        let snapshot = if self.cow {
            self.fork_snapshots += 1;
            PathSnapshot {
                prefix,
                journal: self.journal.clone(),
                errors: self.errors[self.path_error_base..].to_vec(),
            }
        } else {
            PathSnapshot::from_prefix(prefix)
        };
        self.pending.push(snapshot);
    }

    /// Resolves a symbolic condition to a concrete branch direction,
    /// forking (enqueueing the opposite prefix) when both are feasible.
    pub(crate) fn decide(&mut self, cond: TermId) -> bool {
        if let Some(c) = self.pool.const_value(cond) {
            return c == 1;
        }
        self.count_decision();
        // The fork-site id: a structural fingerprint, so the same program
        // point yields the same id in every pool and on every worker.
        // Recorded for forced (replayed) and free decisions alike — a
        // path's covered set is independent of how it was reached.
        let site = self.pool.fingerprint(cond);

        if let Some(env) = &self.trace {
            let dir = symsc_smt::eval::evaluate(&self.pool, cond, env) == 1;
            self.taken.push(dir);
            self.path_branches.insert((site, dir));
            return dir;
        }

        if self.cursor < self.forced.len() {
            let dir = self.forced[self.cursor];
            self.cursor += 1;
            let c = if dir { cond } else { self.pool.not(cond) };
            // Keep the cached model only if it satisfies the new constraint.
            if self.env_value(c) != Some(true) {
                self.cur_env = None;
            }
            self.constraints.push(c);
            self.taken.push(dir);
            self.path_branches.insert((site, dir));
            return dir;
        }

        let not_cond = self.pool.not(cond);
        match self.env_value(cond) {
            Some(true) => {
                // True branch witnessed by the cached model: only the
                // forking check needs the solver, and only as a verdict.
                if self.check_feasible(not_cond) {
                    self.push_fork();
                }
                self.constraints.push(cond);
                self.taken.push(true);
                self.path_branches.insert((site, true));
                true
            }
            Some(false) => {
                // False branch witnessed; prefer true if it is feasible.
                match self.check(Some(cond)) {
                    SatResult::Sat(model) => {
                        self.push_fork();
                        self.adopt_model(&model);
                        self.constraints.push(cond);
                        self.taken.push(true);
                        self.path_branches.insert((site, true));
                        true
                    }
                    SatResult::Unsat => {
                        self.constraints.push(not_cond);
                        self.taken.push(false);
                        self.path_branches.insert((site, false));
                        false
                    }
                }
            }
            None => match self.check(Some(cond)) {
                SatResult::Sat(model) => {
                    if self.check_feasible(not_cond) {
                        self.push_fork();
                    }
                    self.adopt_model(&model);
                    self.constraints.push(cond);
                    self.taken.push(true);
                    self.path_branches.insert((site, true));
                    true
                }
                SatResult::Unsat => {
                    // The path itself is feasible, so the negation must be.
                    self.constraints.push(not_cond);
                    self.taken.push(false);
                    self.path_branches.insert((site, false));
                    false
                }
            },
        }
    }

    /// Adds an assumption; kills the path if it becomes infeasible.
    pub(crate) fn assume(&mut self, cond: TermId) {
        if self.pool.is_true(cond) {
            return;
        }
        if self.pool.is_false(cond) {
            self.kill_path();
        }
        self.count_decision();
        if let Some(env) = &self.trace {
            if symsc_smt::eval::evaluate(&self.pool, cond, env) != 1 {
                self.kill_path();
            }
            return;
        }
        if self.in_fast_forward() {
            // The forking path already survived this assumption, so the
            // prefix stays feasible with `cond`: push it without solving.
            self.constraints.push(cond);
            return;
        }
        if self.env_value(cond) != Some(true) {
            match self.check(Some(cond)) {
                SatResult::Sat(model) => self.adopt_model(&model),
                SatResult::Unsat => self.kill_path(),
            }
        }
        self.constraints.push(cond);
    }

    /// Checks an assertion. If the negation is feasible, records an error
    /// with a counterexample; the path then continues under the asserted
    /// condition (KLEE terminates only the erring fork).
    pub(crate) fn check_assert(&mut self, cond: TermId, message: &str) {
        self.check_guard(cond, ErrorKind::AssertionFailed, message);
    }

    /// Guards a division: records a [`ErrorKind::DivisionByZero`] if the
    /// divisor can be zero, then continues under `divisor != 0`.
    pub(crate) fn check_div_guard(&mut self, nonzero: TermId) {
        self.check_guard(nonzero, ErrorKind::DivisionByZero, "divisor can be zero");
    }

    fn check_guard(&mut self, cond: TermId, kind: ErrorKind, message: &str) {
        if self.pool.is_true(cond) {
            return;
        }
        self.count_decision();
        if let Some(env) = &self.trace {
            // Concolic: the check either holds under the traced input or
            // it is a finding — there is no "other fork" to continue on,
            // exactly like replay mode.
            if symsc_smt::eval::evaluate(&self.pool, cond, env) != 1 {
                self.record_error_here(kind, message.to_string());
                self.kill_path();
            }
            return;
        }
        if self.in_fast_forward() {
            // The forking path already ran this guard: a violation it
            // found travels in the snapshot's restored errors, and the
            // path continued under `cond` either way. Re-recording (or
            // re-solving) here would duplicate work the parent did.
            self.constraints.push(cond);
            return;
        }
        let not_cond = self.pool.not(cond);
        // The cached model may witness the violation (skipping the
        // feasibility probe), but the recorded counterexample always
        // comes from the canonical full solve below: the cached model
        // depends on how the path was reached (resumed or re-executed),
        // the canonical model only on the structural constraint set —
        // which is what keeps COW and re-exec reports byte-identical.
        let violated = if self.env_value(not_cond) != Some(true)
            && self.solver.incremental_enabled()
            && !self.check_feasible(not_cond)
        {
            // Verdict-only fast path: a passing check is an UNSAT verdict
            // and needs no model, so the incremental per-path context can
            // answer it as an assumption solve on the retained prefix. A
            // feasible violation falls through to the full solve below,
            // which produces the canonical counterexample model — so the
            // report is byte-identical with the probe on or off.
            false
        } else if let SatResult::Sat(model) = self.check(Some(not_cond)) {
            self.record_error(kind, message.to_string(), &model);
            true
        } else {
            false
        };
        if violated {
            // Continue only if the condition itself can still hold.
            if self.pool.is_false(cond) {
                self.kill_path();
            }
            if self.env_value(cond) != Some(true) {
                match self.check(Some(cond)) {
                    SatResult::Sat(model) => self.adopt_model(&model),
                    SatResult::Unsat => self.kill_path(),
                }
            }
        } else if self.env_value(cond) != Some(true) {
            // No violation exists, so `cond` is implied by the path; the
            // cached model (a path model) must satisfy it.
            debug_assert!(self.cur_env.is_none(), "path model violates implied cond");
            if let SatResult::Sat(model) = self.check(Some(cond)) {
                self.adopt_model(&model);
            }
        }
        self.constraints.push(cond);
    }

    /// KLEE-style concretization: pick a satisfying value for `id`, pin the
    /// path to it, and return it.
    ///
    /// The value comes from a *canonical* solve of the path constraints
    /// (not the cached witness model), so it is a pure function of the
    /// structural constraint set — a resumed snapshot replays the same
    /// value from its journal that a forced re-execution would recompute.
    pub(crate) fn concretize(&mut self, id: TermId, width: Width) -> u64 {
        if let Some(env) = &self.trace {
            // Concolic: the traced assignment already fixes every input.
            return symsc_smt::eval::evaluate(&self.pool, id, env);
        }
        if let Some(value) = self.pool.const_value(id) {
            // Already concrete (always the case in replay mode, which
            // constant-folds the inputs): nothing to pin, nothing to solve.
            return value;
        }
        if self.in_fast_forward() {
            // The forking path already pinned this value; consume it from
            // the journal and rebuild the pin constraint solver-free.
            let value = *self
                .journal
                .get(self.journal_cursor)
                .expect("concretization journal underran the forced prefix");
            self.journal_cursor += 1;
            let k = self.pool.constant(value, width);
            let pin = self.pool.eq(id, k);
            self.constraints.push(pin);
            return value;
        }
        match self.check(None) {
            SatResult::Sat(model) => {
                self.adopt_model(&model);
                let env = self.cur_env.as_ref().expect("model adopted above");
                let value = symsc_smt::eval::evaluate(&self.pool, id, env);
                let k = self.pool.constant(value, width);
                let pin = self.pool.eq(id, k);
                self.constraints.push(pin);
                if self.cow {
                    debug_assert_eq!(
                        self.journal_cursor,
                        self.journal.len(),
                        "free-region journal appends follow the replayed entries"
                    );
                    self.journal.push(value);
                    self.journal_cursor += 1;
                }
                value
            }
            SatResult::Unsat => {
                debug_assert!(false, "concretize on infeasible path");
                self.kill_path()
            }
        }
    }

    /// Records a non-assertion error (out-of-bounds, division by zero, …)
    /// on the current path and terminates the path, mirroring how KLEE
    /// terminates a path at a memory error.
    pub(crate) fn fail_path(&mut self, kind: ErrorKind, message: String) -> ! {
        self.record_error_here(kind, message);
        self.kill_path()
    }
}

/// Handle to the running symbolic execution, passed to testbenches.
///
/// Cloning is cheap (reference-counted); [`SymWord`]s hold their own clone
/// so model code can operate on symbolic values without carrying the
/// context around explicitly.
#[derive(Clone)]
pub struct SymCtx {
    pub(crate) inner: Arc<Mutex<EngineState>>,
}

impl std::fmt::Debug for SymCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.engine();
        f.debug_struct("SymCtx")
            .field("path", &st.path_index)
            .field("constraints", &st.constraints.len())
            .field("errors", &st.errors.len())
            .finish()
    }
}

impl SymCtx {
    pub(crate) fn new(inner: Arc<Mutex<EngineState>>) -> SymCtx {
        SymCtx { inner }
    }

    /// Locks the engine state. Path termination unwinds a
    /// [`PathTerm`] panic *through* held guards, which poisons the mutex;
    /// that poisoning is benign (`kill_path` only fires at points where the
    /// state is consistent), so the poison flag is deliberately cleared.
    pub(crate) fn engine(&self) -> MutexGuard<'_, EngineState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Declares a fresh symbolic input of the given width — the analogue
    /// of `klee_int("name")`.
    ///
    /// Re-declaring the same name on a later path returns the same
    /// variable, which is what re-execution requires.
    pub fn symbolic(&self, name: &str, width: Width) -> SymWord {
        let id = {
            let mut st = self.engine();
            if !st.inputs.iter().any(|n| n == name) {
                st.inputs.push(name.to_string());
            }
            match &st.replay {
                // Concrete replay: the "symbolic" input is the recorded
                // counterexample value.
                Some(values) => {
                    let value = values.get(name).copied().unwrap_or(0);
                    st.pool.constant(value, width)
                }
                None => st.pool.var(name, width),
            }
        };
        SymWord::from_raw(self.clone(), id, width)
    }

    /// A concrete word of the given width.
    pub fn word(&self, value: u64, width: Width) -> SymWord {
        let id = self.engine().pool.constant(value, width);
        SymWord::from_raw(self.clone(), id, width)
    }

    /// A concrete 32-bit word (the natural TLM register width).
    pub fn word32(&self, value: u32) -> SymWord {
        self.word(u64::from(value), Width::W32)
    }

    /// A concrete boolean.
    pub fn lit(&self, value: bool) -> SymBool {
        let id = {
            let mut st = self.engine();
            if value {
                st.pool.tru()
            } else {
                st.pool.fls()
            }
        };
        SymBool::from_raw(self.clone(), id)
    }

    /// Constrains the path with `cond` — the analogue of `klee_assume`.
    /// If the assumption is infeasible the current path terminates
    /// silently.
    pub fn assume(&self, cond: &SymBool) {
        let id = cond.id();
        self.engine().assume(id);
    }

    /// Asserts `cond`; any feasible violation is recorded as an
    /// [`ErrorKind::AssertionFailed`] with a counterexample. Execution
    /// continues on the non-violating fork, like KLEE terminating only the
    /// erring path.
    pub fn check(&self, cond: &SymBool, message: &str) {
        let id = cond.id();
        self.engine().check_assert(id, message);
    }

    /// Asserts an already-concrete condition (e.g. a counter in the mock
    /// HART). A violation is recorded as an [`ErrorKind::AssertionFailed`]
    /// with the current path's counterexample and terminates the path.
    pub fn check_concrete(&self, cond: bool, message: &str) {
        let b = self.lit(cond);
        self.check(&b, message);
    }

    /// Resolves a symbolic condition to a concrete `bool`, forking the
    /// exploration if both directions are feasible. Model code uses this
    /// for every control-flow decision over symbolic data.
    pub fn decide(&self, cond: &SymBool) -> bool {
        let id = cond.id();
        self.engine().decide(id)
    }

    /// Records a non-assertion error (memory fault, trap, protocol
    /// violation) and terminates the current path.
    pub fn fail(&self, kind: ErrorKind, message: impl Into<String>) -> ! {
        self.engine().fail_path(kind, message.into())
    }

    /// Marks a functional-coverage bin as hit on the current path. The
    /// report counts, per bin, how many explored paths reached it —
    /// verification-closure data for testbench review (which scenarios
    /// the symbolic exploration actually drove).
    pub fn cover(&self, label: &str) {
        self.engine().cover(label);
    }

    /// Number of errors recorded so far in this exploration.
    pub fn error_count(&self) -> usize {
        self.engine().errors.len()
    }

    /// The current path's index (0-based).
    pub fn path_index(&self) -> u64 {
        self.engine().path_index
    }

    pub(crate) fn with_pool<R>(&self, f: impl FnOnce(&mut TermPool) -> R) -> R {
        f(&mut self.engine().pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn concrete_conditions_do_not_fork() {
        let report = Explorer::new().explore(|ctx| {
            let t = ctx.lit(true);
            assert!(ctx.decide(&t));
            let f = ctx.lit(false);
            assert!(!ctx.decide(&f));
        });
        assert_eq!(report.stats.paths, 1);
        assert_eq!(report.stats.decisions, 0);
    }

    #[test]
    fn symbolic_condition_forks_two_paths() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            let c = x.eq(&zero);
            let _ = ctx.decide(&c);
        });
        assert_eq!(report.stats.paths, 2);
        assert!(report.completed);
    }

    #[test]
    fn assume_prunes_infeasible_branches() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let five = ctx.word(5, Width::W8);
            ctx.assume(&x.eq(&five));
            // x == 5 is now forced; this branch cannot fork.
            let c = x.eq(&five);
            assert!(ctx.decide(&c));
        });
        assert_eq!(report.stats.paths, 1);
        assert!(report.passed());
    }

    #[test]
    fn failing_assert_produces_counterexample() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let ten = ctx.word(10, Width::W8);
            ctx.check(&x.ult(&ten), "x must be below 10");
        });
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.kind, ErrorKind::AssertionFailed);
        assert!(e.counterexample.value("x") >= 10);
    }

    #[test]
    fn passing_assert_is_silent() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let big = ctx.word(255, Width::W8);
            ctx.check(&x.ule(&big), "trivially true");
        });
        assert!(report.passed());
    }

    #[test]
    fn fail_terminates_path_but_not_exploration() {
        let report = Explorer::new().explore(|ctx| {
            let x = ctx.symbolic("x", Width::W8);
            let zero = ctx.word(0, Width::W8);
            if ctx.decide(&x.eq(&zero)) {
                ctx.fail(ErrorKind::OutOfBounds, "zero is out of bounds");
            }
        });
        assert_eq!(report.stats.paths, 2);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].kind, ErrorKind::OutOfBounds);
        assert_eq!(report.errors[0].counterexample.value("x"), 0);
    }
}

//! Exploration statistics, matching the columns of the paper's Table 1.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use symsc_smt::SolverStats;

/// Per-direction hit counts of one symbolic fork site.
///
/// A *site* is identified by the structural fingerprint of the branch
/// condition (see [`TermPool::fingerprint`](symsc_smt::TermPool)): two
/// decisions over structurally identical conditions are the same site, on
/// any worker and in any pool. The counts are *paths*, not executions — a
/// path that decides the same site twice in one direction counts once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchCoverage {
    /// Paths on which the site was decided `true`.
    pub taken: u64,
    /// Paths on which the site was decided `false`.
    pub not_taken: u64,
}

impl BranchCoverage {
    /// Whether both directions of the site were exercised.
    pub fn both_directions(&self) -> bool {
        self.taken > 0 && self.not_taken > 0
    }

    /// Directions exercised at this site (0, 1 or 2).
    pub fn directions(&self) -> u64 {
        u64::from(self.taken > 0) + u64::from(self.not_taken > 0)
    }
}

/// Aggregate counters for one exploration.
///
/// The paper reports, per test: result, executed LLVM instructions, wall
/// time, explored paths, and the share of time spent in the SMT solver.
/// Our engine has no LLVM bytecode; `instructions` counts *engine
/// operations* instead (term constructions plus branch decisions), which is
/// the closest native analogue of interpreted instruction count.
#[derive(Clone, Debug, Default)]
pub struct ExplorationStats {
    /// Completed execution paths.
    pub paths: u64,
    /// Engine operations executed (term constructions + branch decisions).
    pub instructions: u64,
    /// Branch decisions taken (included in `instructions`).
    pub decisions: u64,
    /// Total wall-clock exploration time.
    pub time: Duration,
    /// Wall-clock time spent inside the SMT solver.
    pub solver_time: Duration,
    /// Raw statistics from the SMT layer.
    pub solver: SolverStats,
    /// Copy-on-write path snapshots captured at fork sites (zero under
    /// the re-execution strategy). Scheduling-independent: a snapshot is
    /// captured per feasible fork, a pure function of the path set.
    pub fork_snapshots: u64,
    /// Decisions replayed solver-free while fast-forwarding resumed
    /// snapshots' forced prefixes (included in `decisions`; zero under
    /// the re-execution strategy, which re-solves its prefixes).
    pub fast_forward_decisions: u64,
    /// Symbolic branch coverage: fork-site fingerprint -> per-direction
    /// path counts. Deterministic across worker counts — the map is a pure
    /// function of the explored path set.
    pub branches: BTreeMap<u128, BranchCoverage>,
    /// Paths physically executed by the engine, including partial runs
    /// aborted by a join-point adoption. Equals `paths` under
    /// `ExploreOrder::Exhaustive`; the merge benchmark's reduction
    /// factor is `paths / executed_paths`.
    pub executed_paths: u64,
    /// Represented paths synthesized by structural state merging (equal
    /// or support-disjoint prefix constraint sets at a join point).
    pub merged_paths: u64,
    /// Represented paths synthesized by subsumption — an incremental-SAT
    /// implication query proved the prefixes mutually equivalent.
    pub subsumed_paths: u64,
    /// Join points registered (first arrivals that became subtree owners).
    pub join_sites: u64,
    /// Join-point arrivals that failed the soundness checks and fell
    /// back to normal execution.
    pub merge_rejects: u64,
    /// Pending snapshots promoted out of depth-first order by the
    /// coverage-guided scheduler (sequential runs only).
    pub sched_promotions: u64,
}

impl ExplorationStats {
    /// Fraction of total time spent in the solver, in percent — the
    /// paper's "Solver" column. Zero when no time was recorded.
    pub fn solver_share(&self) -> f64 {
        if self.time.is_zero() {
            return 0.0;
        }
        100.0 * self.solver_time.as_secs_f64() / self.time.as_secs_f64()
    }

    /// Executed engine operations per second of wall time.
    pub fn instructions_per_second(&self) -> f64 {
        if self.time.is_zero() {
            return 0.0;
        }
        self.instructions as f64 / self.time.as_secs_f64()
    }

    /// Distinct symbolic fork sites decided during the exploration.
    pub fn branch_sites(&self) -> u64 {
        self.branches.len() as u64
    }

    /// Exercised branch directions, counting each site's `true` and
    /// `false` outcomes separately (at most `2 * branch_sites()`).
    pub fn branches_covered(&self) -> u64 {
        self.branches.values().map(BranchCoverage::directions).sum()
    }

    /// Exercised directions over possible directions, in percent — the
    /// symbolic analogue of branch coverage. Zero when nothing forked.
    pub fn branch_coverage(&self) -> f64 {
        if self.branches.is_empty() {
            return 0.0;
        }
        100.0 * self.branches_covered() as f64 / (2 * self.branch_sites()) as f64
    }
}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "paths: {} | instr: {} | time: {:.3}s | solver: {:.2}% \
             ({} queries, {} cache hits, {} cache misses) | \
             stack: {} slices, {} slice hits, {} subset-unsat, \
             {} model reuse, {} focus skips, {} core calls, {} evictions | \
             incremental: {} contexts, {} assumption solves, \
             {} clauses retained, {} restarts | \
             cow: {} snapshots, {} fast-forward decisions | \
             merge: {} executed, {} merged, {} subsumed, {} joins, \
             {} rejects, {} promotions | \
             branch sites: {} ({}/{} directions)",
            self.paths,
            self.instructions,
            self.time.as_secs_f64(),
            self.solver_share(),
            self.solver.queries,
            self.solver.cache_hits,
            self.solver.cache_misses,
            self.solver.slices,
            self.solver.slice_hits,
            self.solver.cex_subset_hits,
            self.solver.model_reuse_hits,
            self.solver.focus_skips,
            self.solver.sat_core_calls,
            self.solver.evictions,
            self.solver.incremental.contexts,
            self.solver.incremental.assumption_solves,
            self.solver.incremental.clauses_retained,
            self.solver.incremental.restarts,
            self.fork_snapshots,
            self.fast_forward_decisions,
            self.executed_paths,
            self.merged_paths,
            self.subsumed_paths,
            self.join_sites,
            self.merge_rejects,
            self.sched_promotions,
            self.branch_sites(),
            self.branches_covered(),
            2 * self.branch_sites(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_share_handles_zero_time() {
        let s = ExplorationStats::default();
        assert_eq!(s.solver_share(), 0.0);
        assert_eq!(s.instructions_per_second(), 0.0);
    }

    #[test]
    fn solver_share_is_a_percentage() {
        let s = ExplorationStats {
            time: Duration::from_secs(10),
            solver_time: Duration::from_secs(4),
            ..ExplorationStats::default()
        };
        assert!((s.solver_share() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn branch_coverage_counts_directions() {
        let mut s = ExplorationStats::default();
        assert_eq!(s.branch_sites(), 0);
        assert_eq!(s.branch_coverage(), 0.0);
        s.branches.insert(
            1,
            BranchCoverage {
                taken: 3,
                not_taken: 1,
            },
        );
        s.branches.insert(
            2,
            BranchCoverage {
                taken: 2,
                not_taken: 0,
            },
        );
        assert_eq!(s.branch_sites(), 2);
        assert_eq!(s.branches_covered(), 3);
        assert!((s.branch_coverage() - 75.0).abs() < 1e-9);
        assert!(s.branches[&1].both_directions());
        assert!(!s.branches[&2].both_directions());
    }

    #[test]
    fn display_mentions_paths_and_solver() {
        let s = ExplorationStats {
            paths: 7,
            ..ExplorationStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("paths: 7"));
        assert!(text.contains("solver"));
    }
}

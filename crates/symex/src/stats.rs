//! Exploration statistics, matching the columns of the paper's Table 1.

use std::fmt;
use std::time::Duration;

use symsc_smt::SolverStats;

/// Aggregate counters for one exploration.
///
/// The paper reports, per test: result, executed LLVM instructions, wall
/// time, explored paths, and the share of time spent in the SMT solver.
/// Our engine has no LLVM bytecode; `instructions` counts *engine
/// operations* instead (term constructions plus branch decisions), which is
/// the closest native analogue of interpreted instruction count.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplorationStats {
    /// Completed execution paths.
    pub paths: u64,
    /// Engine operations executed (term constructions + branch decisions).
    pub instructions: u64,
    /// Branch decisions taken (included in `instructions`).
    pub decisions: u64,
    /// Total wall-clock exploration time.
    pub time: Duration,
    /// Wall-clock time spent inside the SMT solver.
    pub solver_time: Duration,
    /// Raw statistics from the SMT layer.
    pub solver: SolverStats,
}

impl ExplorationStats {
    /// Fraction of total time spent in the solver, in percent — the
    /// paper's "Solver" column. Zero when no time was recorded.
    pub fn solver_share(&self) -> f64 {
        if self.time.is_zero() {
            return 0.0;
        }
        100.0 * self.solver_time.as_secs_f64() / self.time.as_secs_f64()
    }

    /// Executed engine operations per second of wall time.
    pub fn instructions_per_second(&self) -> f64 {
        if self.time.is_zero() {
            return 0.0;
        }
        self.instructions as f64 / self.time.as_secs_f64()
    }
}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "paths: {} | instr: {} | time: {:.3}s | solver: {:.2}% \
             ({} queries, {} cache hits, {} cache misses) | \
             stack: {} slices, {} slice hits, {} subset-unsat, \
             {} model reuse, {} focus skips, {} core calls, {} evictions",
            self.paths,
            self.instructions,
            self.time.as_secs_f64(),
            self.solver_share(),
            self.solver.queries,
            self.solver.cache_hits,
            self.solver.cache_misses,
            self.solver.slices,
            self.solver.slice_hits,
            self.solver.cex_subset_hits,
            self.solver.model_reuse_hits,
            self.solver.focus_skips,
            self.solver.sat_core_calls,
            self.solver.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_share_handles_zero_time() {
        let s = ExplorationStats::default();
        assert_eq!(s.solver_share(), 0.0);
        assert_eq!(s.instructions_per_second(), 0.0);
    }

    #[test]
    fn solver_share_is_a_percentage() {
        let s = ExplorationStats {
            time: Duration::from_secs(10),
            solver_time: Duration::from_secs(4),
            ..ExplorationStats::default()
        };
        assert!((s.solver_share() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_paths_and_solver() {
        let s = ExplorationStats {
            paths: 7,
            ..ExplorationStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("paths: 7"));
        assert!(text.contains("solver"));
    }
}

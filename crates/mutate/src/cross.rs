//! The cross-level kill matrix: every mutant injected into the
//! cycle-level model and checked by equivalence against the fixed TLM
//! model — and injected into the TLM model and checked against the
//! fixed cycle model.
//!
//! The T-suite matrix ([`crate::run_kill_matrix`]) judges mutants
//! against *encoded expectations* (latency bounds, claim-order
//! formulas); this matrix judges them against the *other abstraction
//! level*, with no expectations in the testbench at all. Mutants that
//! survive the T suite because no test encodes the affected behavior
//! (the canonical example: `stuck_enable_1`, invisible behind the
//! enable-all idiom) are killed here by X3's symbolic enable word — the
//! headline unique kill `BENCH_cross_check.json` records and the bench
//! gate enforces.

use symsc_plic::{Mutation, PlicConfig};
use symsc_testbench::{run_cross_test, CrossId};
use symsysc_core::Verifier;

use crate::{CellResult, Mutant};

/// The cross-level suite's result on the both-fixed baseline for one
/// test (it must pass for kills to be meaningful).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossBaselineRow {
    /// Which cross-level test.
    pub test: CrossId,
    /// Whether the both-fixed baseline passes.
    pub passed: bool,
    /// Paths explored.
    pub paths: u64,
    /// Distinct symbolic fork sites decided.
    pub branch_sites: u64,
    /// Branch directions exercised.
    pub branches_covered: u64,
}

/// One mutant's cross-level row: its verdict under every test, for both
/// injection directions.
#[derive(Clone, Debug)]
pub struct CrossMutantRow {
    /// The mutant's name.
    pub name: String,
    /// One-line description of the seeded defect.
    pub description: String,
    /// Whether this row is one of the paper's IF presets.
    pub preset: bool,
    /// Per-test results with the mutant injected into the *cycle-level*
    /// model (fixed TLM as oracle), parallel to
    /// [`CrossKillMatrix::tests`].
    pub cycle_cells: Vec<CellResult>,
    /// Per-test results with the mutant injected into the *TLM* model
    /// (fixed cycle model as oracle), parallel to
    /// [`CrossKillMatrix::tests`].
    pub tlm_cells: Vec<CellResult>,
}

impl CrossMutantRow {
    /// Whether any test killed this mutant in either direction.
    pub fn killed(&self) -> bool {
        self.killed_in_cycle() || self.killed_in_tlm()
    }

    /// Whether the cycle-injected mutant was caught by the TLM oracle.
    pub fn killed_in_cycle(&self) -> bool {
        self.cycle_cells.iter().any(|c| c.killed)
    }

    /// Whether the TLM-injected mutant was caught by the cycle oracle.
    pub fn killed_in_tlm(&self) -> bool {
        self.tlm_cells.iter().any(|c| c.killed)
    }
}

/// The full cross-level kill matrix: tests × mutants × two injection
/// directions, plus the both-fixed baseline row.
#[derive(Clone, Debug)]
pub struct CrossKillMatrix {
    /// The (unmutated, fixed) configuration every run derives from.
    pub config: PlicConfig,
    /// The cross-level tests that ran (columns).
    pub tests: Vec<CrossId>,
    /// Baseline results (both levels fixed).
    pub baseline: Vec<CrossBaselineRow>,
    /// One row per mutant.
    pub mutants: Vec<CrossMutantRow>,
}

impl CrossKillMatrix {
    /// Killed mutants over total mutants, in percent.
    pub fn kill_rate(&self) -> f64 {
        if self.mutants.is_empty() {
            return 0.0;
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        100.0 * killed as f64 / self.mutants.len() as f64
    }

    /// The mutants neither direction killed.
    pub fn survivors(&self) -> Vec<&CrossMutantRow> {
        self.mutants.iter().filter(|m| !m.killed()).collect()
    }

    /// Whether the named mutant was killed (in either direction).
    pub fn killed_mutant(&self, name: &str) -> bool {
        self.mutants.iter().any(|m| m.name == name && m.killed())
    }

    /// A deterministic rendering of the whole matrix: no timing, no
    /// worker-dependent data — byte-identical across worker counts, fork
    /// strategies and exploration orders.
    pub fn stable_view(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cross-kill-matrix sources={} maxp={} variant={:?}",
            self.config.sources, self.config.max_priority, self.config.variant
        );
        for b in &self.baseline {
            let _ = writeln!(
                s,
                "baseline {}: {} paths={} sites={} covered={}",
                b.test,
                if b.passed { "pass" } else { "FAIL" },
                b.paths,
                b.branch_sites,
                b.branches_covered
            );
        }
        for m in &self.mutants {
            let _ = write!(
                s,
                "mutant {}{}:",
                m.name,
                if m.preset { " [preset]" } else { "" }
            );
            for (side, cells) in [("cycle", &m.cycle_cells), ("tlm", &m.tlm_cells)] {
                for (t, cell) in self.tests.iter().zip(cells) {
                    let verdict = if cell.killed {
                        format!("kill({})", cell.distinct_errors)
                    } else {
                        "pass".to_string()
                    };
                    let _ = write!(
                        s,
                        " {t}@{side}={verdict} paths={} sites={} covered={}",
                        cell.paths, cell.branch_sites, cell.branches_covered
                    );
                }
            }
            let _ = writeln!(s, " => {}", if m.killed() { "killed" } else { "SURVIVED" });
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        let _ = writeln!(s, "killed {}/{}", killed, self.mutants.len());
        s
    }
}

/// Runs the cross-level suite on the both-fixed baseline and against
/// every mutant, injected into each level in turn.
///
/// `config` should be the *fixed* variant; the mutant side is
/// `config.mutate(op)` and the oracle side stays `config`.
pub fn run_cross_kill_matrix(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[CrossId],
    workers: usize,
) -> CrossKillMatrix {
    run_cross_kill_matrix_with(config, mutants, tests, |name| {
        Verifier::new(name).workers(workers)
    })
}

/// Like [`run_cross_kill_matrix`], but with full control over the
/// verifier each exploration uses; `verifier` receives
/// `"{test}/{mutant}/cycle"` or `"{test}/{mutant}/tlm"` per cell. Every
/// verifier configuration explores the same path set, so the matrix is
/// identical for any choice — the determinism tests pin this.
pub fn run_cross_kill_matrix_with<F: Fn(&str) -> Verifier>(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[CrossId],
    verifier: F,
) -> CrossKillMatrix {
    let baseline: Vec<CrossBaselineRow> = tests
        .iter()
        .map(|&test| {
            let o = run_cross_test(test, config, config, &verifier(test.name()));
            CrossBaselineRow {
                test,
                passed: o.passed(),
                paths: o.report.stats.paths,
                branch_sites: o.report.stats.branch_sites(),
                branches_covered: o.report.stats.branches_covered(),
            }
        })
        .collect();

    let cell = |o: symsysc_core::TestOutcome, base: &CrossBaselineRow| CellResult {
        killed: base.passed && !o.passed(),
        distinct_errors: o.report.distinct_errors().len(),
        paths: o.report.stats.paths,
        branch_sites: o.report.stats.branch_sites(),
        branches_covered: o.report.stats.branches_covered(),
    };

    let rows: Vec<CrossMutantRow> = mutants
        .iter()
        .map(|mutant| {
            let mutated = config.mutate(mutant.op());
            let cycle_cells: Vec<CellResult> = tests
                .iter()
                .zip(&baseline)
                .map(|(&test, base)| {
                    let name = format!("{}/{}/cycle", test.name(), Mutation::name(mutant));
                    cell(
                        run_cross_test(test, config, mutated, &verifier(&name)),
                        base,
                    )
                })
                .collect();
            let tlm_cells: Vec<CellResult> = tests
                .iter()
                .zip(&baseline)
                .map(|(&test, base)| {
                    let name = format!("{}/{}/tlm", test.name(), Mutation::name(mutant));
                    cell(
                        run_cross_test(test, mutated, config, &verifier(&name)),
                        base,
                    )
                })
                .collect();
            CrossMutantRow {
                name: Mutation::name(mutant),
                description: mutant.description(),
                preset: mutant.preset().is_some(),
                cycle_cells,
                tlm_cells,
            }
        })
        .collect();

    CrossKillMatrix {
        config,
        tests: tests.to_vec(),
        baseline,
        mutants: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::{MutationOp, PlicVariant, ThresholdCmp};

    #[test]
    fn cross_matrix_kills_symmetrically_and_spares_equivalents() {
        let config = PlicConfig::fe310_scaled().variant(PlicVariant::Fixed);
        let mutants = vec![
            Mutant::new(
                "cmp_never",
                "delivery dead",
                MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
            ),
            Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
            Mutant::new(
                "stuck_enable_1",
                "enable bit 1 stuck high",
                MutationOp::StuckEnableForId(1),
            ),
        ];
        let matrix = run_cross_kill_matrix(config, &mutants, &[CrossId::X1, CrossId::X3], 1);
        assert!(
            matrix.baseline.iter().all(|b| b.passed),
            "baseline must pass"
        );
        let dead = &matrix.mutants[0];
        assert!(
            dead.killed_in_cycle() && dead.killed_in_tlm(),
            "dead delivery diverges whichever level carries it"
        );
        assert!(
            !matrix.mutants[1].killed(),
            "duplicate notify is equivalent at both levels"
        );
        // The headline: the T-suite survivor falls to X3's symbolic
        // enable word, in both directions.
        assert!(matrix.killed_mutant("stuck_enable_1"));
        let view = matrix.stable_view();
        assert!(view.contains("cross-kill-matrix"));
        assert!(view.contains("X3@cycle"));
        assert!(view.contains("X1@tlm"));
        assert!(view.contains("killed 2/3"));
    }
}

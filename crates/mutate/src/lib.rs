//! # symsc-mutate — mutation testing for the T1–T5 oracle
//!
//! The paper validates its test suite against six hand-picked injected
//! faults (IF1–IF6, Table 2). This crate turns that spot check into a
//! *mutation-testing* harness: it derives dozens of first-order mutants of
//! the PLIC by sweeping the parameters of the open mutation registry
//! ([`MutationOp`]), runs the symbolic suite against every mutant, and
//! reports the **kill matrix** — which test kills which mutant, the
//! overall kill rate, and the mutants that survive all five tests.
//!
//! A mutant is *killed* when at least one test that passes on the fixed
//! PLIC fails on the mutated one. Surviving mutants are either genuine
//! oracle gaps (behavior no test observes) or *equivalent mutants* whose
//! change is semantically invisible (e.g. a duplicated notification that
//! the kernel's override rules absorb).
//!
//! The matrix also records each exploration's **symbolic branch coverage**
//! (fork sites and directions, see
//! [`ExplorationStats::branches`](symsc_symex::ExplorationStats)); the
//! [`KillMatrix::coverage_kill_correlation`] column quantifies how well a
//! test's branch coverage predicts its kill count. On this suite the
//! correlation is *negative*: the decode-interface tests T4/T5 fork the
//! most but kill nothing, because every mutant lives in the delivery
//! logic their coverage never touches — raw coverage is a poor oracle
//! proxy, which is the point of measuring kills directly. Everything in
//! [`KillMatrix::stable_view`] is a pure function of the explored path
//! sets, so the rendered matrix is byte-identical across worker counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cross;

pub use cross::{
    run_cross_kill_matrix, run_cross_kill_matrix_with, CrossBaselineRow, CrossKillMatrix,
    CrossMutantRow,
};

use symsc_plic::{InjectedFault, Mutation, MutationOp, PlicConfig, ThresholdCmp};
use symsc_testbench::{run_test, SuiteParams, TestId};
use symsysc_core::Verifier;

/// A generated (or preset) mutant: a named [`MutationOp`] instance.
#[derive(Clone, Debug)]
pub struct Mutant {
    name: String,
    description: String,
    op: MutationOp,
    preset: Option<InjectedFault>,
}

impl Mutant {
    /// A mutant with an explicit name and description.
    pub fn new(name: &str, description: &str, op: MutationOp) -> Mutant {
        Mutant {
            name: name.to_string(),
            description: description.to_string(),
            op,
            preset: None,
        }
    }

    /// The mutant for one of the paper's named fault presets.
    pub fn from_preset(fault: InjectedFault) -> Mutant {
        Mutant {
            name: Mutation::name(&fault),
            description: fault.description(),
            op: fault.op(),
            preset: Some(fault),
        }
    }

    /// The preset this mutant corresponds to, if any.
    pub fn preset(&self) -> Option<InjectedFault> {
        self.preset
    }
}

impl Mutation for Mutant {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn description(&self) -> String {
        self.description.clone()
    }

    fn op(&self) -> MutationOp {
        self.op
    }
}

/// The paper's six injected faults as mutants (IF1–IF6, in order).
pub fn presets() -> Vec<Mutant> {
    InjectedFault::ALL
        .iter()
        .copied()
        .map(Mutant::from_preset)
        .collect()
}

/// Generates the first-order mutant sweep for `config`.
///
/// Parameters are derived from the configuration (source count, priority
/// width), so the same sweep adapts to the full FE310 and the scaled test
/// configurations. The sweep deliberately includes mutants expected to be
/// *equivalent* (e.g. [`MutationOp::DuplicateNotify`]) — finding them
/// alive is part of validating the harness. Presets are not repeated;
/// duplicate operators (possible on very small configurations) are pruned.
pub fn generate(config: &PlicConfig) -> Vec<Mutant> {
    let s = config.sources;
    let mut out: Vec<Mutant> = Vec::new();

    // Gateway bound off-by-N (the +1 case is preset IF1).
    for delta in [2i32, -1, -2] {
        let sign = if delta >= 0 { "p" } else { "m" };
        out.push(Mutant::new(
            &format!("gateway_bound_{sign}{}", delta.unsigned_abs()),
            &format!("gateway accepts ids 1..=sources{delta:+}"),
            MutationOp::GatewayBoundOffset(delta),
        ));
    }

    // Dropped notifications across the id range; `s + 1` is rejected by
    // the gateway before the hook and must survive (equivalent mutant).
    for id in [1, 2, s / 2 - 1, s / 2, s, s + 1] {
        out.push(Mutant::new(
            &format!("drop_notify_{id}"),
            &format!("e_run notification dropped for interrupt id {id}"),
            MutationOp::DropNotifyForId(id),
        ));
    }

    out.push(Mutant::new(
        "dup_notify",
        "gateway notifies e_run twice (absorbed by override rules)",
        MutationOp::DuplicateNotify,
    ));

    // Sticky pending bits at several ids (id 7 is preset IF5).
    for id in [1, 3, s - 3, s] {
        out.push(Mutant::new(
            &format!("early_clear_{id}"),
            &format!("clear_pending returns early for id {id}"),
            MutationOp::EarlyClearReturnForId(id),
        ));
    }

    // Boundary/factor sweep of the late-notify timing fault; a boundary
    // of `s` leaves no valid id above it and must survive.
    for (boundary, factor) in [(0, 10), (s / 4, 10), (s / 2, 2), (s, 10)] {
        out.push(Mutant::new(
            &format!("late_notify_a{boundary}_x{factor}"),
            &format!("{factor}x delivery latency for ids above {boundary}"),
            MutationOp::LateNotifyAboveBoundary {
                boundary: Some(boundary),
                factor,
            },
        ));
    }

    // Threshold comparison flavors (>= is preset IF6).
    out.push(Mutant::new(
        "cmp_always",
        "threshold ignored: every enabled pending interrupt is eligible",
        MutationOp::ThresholdCompare(ThresholdCmp::AlwaysPass),
    ));
    out.push(Mutant::new(
        "cmp_never",
        "threshold comparison never passes: delivery is dead",
        MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
    ));

    out.push(Mutant::new(
        "tiebreak_highest",
        "priority ties select the highest id instead of the lowest",
        MutationOp::TieBreakHighestId,
    ));

    // Stuck-at-0 priority datapath bits.
    for bit in [0u8, 1, 2] {
        out.push(Mutant::new(
            &format!("stuck_prio_bit_{bit}"),
            &format!("bit {bit} of every priority register reads as zero"),
            MutationOp::StuckPriorityBit(bit),
        ));
    }

    // No test disables a source, so a stuck-at-1 enable bit must survive.
    out.push(Mutant::new(
        "stuck_enable_1",
        "enable bit of source 1 reads as always set",
        MutationOp::StuckEnableForId(1),
    ));

    out.push(Mutant::new(
        "claim_skips_clear",
        "claim returns the interrupt but leaves its pending bit set",
        MutationOp::ClaimSkipsClear,
    ));
    out.push(Mutant::new(
        "complete_keeps_eip",
        "completion leaves hart_eip set, blocking further interrupts",
        MutationOp::CompleteKeepsEip,
    ));

    // Prune operators that collide with each other (tiny configurations)
    // or with a preset: the presets run as their own matrix rows.
    let preset_ops: Vec<MutationOp> = InjectedFault::ALL.iter().map(|f| f.op()).collect();
    let mut seen: Vec<MutationOp> = Vec::new();
    out.retain(|m| {
        let op = m.op();
        if preset_ops.contains(&op) || seen.contains(&op) {
            return false;
        }
        seen.push(op);
        true
    });
    out
}

/// The complete mutant registry for `config`: the six IF presets followed
/// by the generated first-order sweep, in stable registry order. This is
/// the population every matrix harness and the campaign orchestrator
/// iterate over.
pub fn registry(config: &PlicConfig) -> Vec<Mutant> {
    let mut out = presets();
    out.extend(generate(config));
    out
}

/// Resolves one mutant of the registry by name. Campaign journals persist
/// mutant selections as names; resume reconstructs the operators through
/// this lookup, so a name that no longer resolves is a spec mismatch.
pub fn by_name(config: &PlicConfig, name: &str) -> Option<Mutant> {
    registry(config).into_iter().find(|m| m.name == name)
}

/// One (mutant, test) cell of the kill matrix. Every field is a pure
/// function of the explored path set — deterministic across worker counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellResult {
    /// The test failed on the mutant (and passes on the baseline).
    pub killed: bool,
    /// Distinct errors the test reported on the mutant.
    pub distinct_errors: usize,
    /// Paths explored.
    pub paths: u64,
    /// Distinct symbolic fork sites decided.
    pub branch_sites: u64,
    /// Branch directions exercised (at most `2 * branch_sites`).
    pub branches_covered: u64,
}

/// The suite's result on the unmutated baseline configuration for one test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineRow {
    /// Which test.
    pub test: TestId,
    /// Whether the baseline passes (it must, for kills to be meaningful).
    pub passed: bool,
    /// Paths explored.
    pub paths: u64,
    /// Distinct symbolic fork sites decided.
    pub branch_sites: u64,
    /// Branch directions exercised.
    pub branches_covered: u64,
}

/// One mutant's row: its verdict under every test.
#[derive(Clone, Debug)]
pub struct MutantRow {
    /// The mutant's name.
    pub name: String,
    /// One-line description of the seeded defect.
    pub description: String,
    /// The operator that was injected.
    pub op: MutationOp,
    /// Whether this row is one of the paper's IF presets.
    pub preset: bool,
    /// Per-test results, parallel to [`KillMatrix::tests`].
    pub cells: Vec<CellResult>,
}

impl MutantRow {
    /// Whether any test killed this mutant.
    pub fn killed(&self) -> bool {
        self.cells.iter().any(|c| c.killed)
    }
}

/// The full kill matrix: tests × mutants, plus the baseline row.
#[derive(Clone, Debug)]
pub struct KillMatrix {
    /// The (unmutated) configuration every run derives from.
    pub config: PlicConfig,
    /// The tests that ran (columns).
    pub tests: Vec<TestId>,
    /// Baseline results (the suite on the unmutated configuration).
    pub baseline: Vec<BaselineRow>,
    /// One row per mutant.
    pub mutants: Vec<MutantRow>,
}

impl KillMatrix {
    /// Killed mutants over total mutants, in percent.
    pub fn kill_rate(&self) -> f64 {
        if self.mutants.is_empty() {
            return 0.0;
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        100.0 * killed as f64 / self.mutants.len() as f64
    }

    /// The mutants no test killed.
    pub fn survivors(&self) -> Vec<&MutantRow> {
        self.mutants.iter().filter(|m| !m.killed()).collect()
    }

    /// Kills per test, parallel to [`tests`](Self::tests).
    pub fn kills_per_test(&self) -> Vec<usize> {
        (0..self.tests.len())
            .map(|t| self.mutants.iter().filter(|m| m.cells[t].killed).count())
            .collect()
    }

    /// Pearson correlation between a test's baseline branch coverage
    /// (directions exercised) and its kill count. Zero when degenerate
    /// (fewer than two tests, or no variance on either axis).
    pub fn coverage_kill_correlation(&self) -> f64 {
        let xs: Vec<f64> = self
            .baseline
            .iter()
            .map(|b| b.branches_covered as f64)
            .collect();
        let ys: Vec<f64> = self.kills_per_test().iter().map(|&k| k as f64).collect();
        pearson(&xs, &ys)
    }

    /// A deterministic rendering of the whole matrix. Contains no timing
    /// and no worker-dependent data, so two runs of the same matrix — at
    /// any worker counts — produce byte-identical strings.
    pub fn stable_view(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "kill-matrix sources={} maxp={} variant={:?}",
            self.config.sources, self.config.max_priority, self.config.variant
        );
        for b in &self.baseline {
            let _ = writeln!(
                s,
                "baseline {}: {} paths={} sites={} covered={}",
                b.test,
                if b.passed { "pass" } else { "FAIL" },
                b.paths,
                b.branch_sites,
                b.branches_covered
            );
        }
        for m in &self.mutants {
            let _ = write!(
                s,
                "mutant {}{}:",
                m.name,
                if m.preset { " [preset]" } else { "" }
            );
            for (t, cell) in self.tests.iter().zip(&m.cells) {
                let verdict = if cell.killed {
                    format!("kill({})", cell.distinct_errors)
                } else {
                    "pass".to_string()
                };
                let _ = write!(
                    s,
                    " {t}={verdict} paths={} sites={} covered={}",
                    cell.paths, cell.branch_sites, cell.branches_covered
                );
            }
            let _ = writeln!(s, " => {}", if m.killed() { "killed" } else { "SURVIVED" });
        }
        let killed = self.mutants.iter().filter(|m| m.killed()).count();
        let _ = writeln!(s, "killed {}/{}", killed, self.mutants.len());
        s
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 || n != ys.len() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Runs `tests` against the unmutated `config` and against every mutant.
///
/// `config` should be the *fixed* variant (mutants are judged against a
/// passing baseline, the usual mutation-testing setup); a failing baseline
/// test is recorded as such and kills nothing. `workers` is forwarded to
/// the explorer — the matrix content is identical for any value.
pub fn run_kill_matrix(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[TestId],
    workers: usize,
) -> KillMatrix {
    run_kill_matrix_with(config, mutants, tests, |name| {
        Verifier::new(name).workers(workers)
    })
}

/// Like [`run_kill_matrix`], but with full control over the verifier each
/// exploration uses (exploration order, fork strategy, budgets): `verifier`
/// receives the cell's test name. Every verifier configuration is a pure
/// optimization of the same exhaustive exploration, so the matrix content
/// must be identical for any choice — the regression tests pin this.
pub fn run_kill_matrix_with<F: Fn(&str) -> Verifier>(
    config: PlicConfig,
    mutants: &[Mutant],
    tests: &[TestId],
    verifier: F,
) -> KillMatrix {
    let params = SuiteParams::default();

    let baseline: Vec<BaselineRow> = tests
        .iter()
        .map(|&test| {
            let o = run_test(test, config, &params, &verifier(test.name()));
            BaselineRow {
                test,
                passed: o.passed(),
                paths: o.report.stats.paths,
                branch_sites: o.report.stats.branch_sites(),
                branches_covered: o.report.stats.branches_covered(),
            }
        })
        .collect();

    let rows: Vec<MutantRow> = mutants
        .iter()
        .map(|mutant| {
            let cells: Vec<CellResult> = tests
                .iter()
                .zip(&baseline)
                .map(|(&test, base)| {
                    let name = format!("{}/{}", test.name(), Mutation::name(mutant));
                    let o = run_test(test, config.mutate(mutant.op()), &params, &verifier(&name));
                    CellResult {
                        killed: base.passed && !o.passed(),
                        distinct_errors: o.report.distinct_errors().len(),
                        paths: o.report.stats.paths,
                        branch_sites: o.report.stats.branch_sites(),
                        branches_covered: o.report.stats.branches_covered(),
                    }
                })
                .collect();
            MutantRow {
                name: Mutation::name(mutant),
                description: mutant.description(),
                op: mutant.op(),
                preset: mutant.preset.is_some(),
                cells,
            }
        })
        .collect();

    KillMatrix {
        config,
        tests: tests.to_vec(),
        baseline,
        mutants: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsc_plic::PlicVariant;

    #[test]
    fn presets_are_the_six_paper_faults() {
        let p = presets();
        let names: Vec<String> = p.iter().map(|m| m.name.clone()).collect();
        assert_eq!(names, ["IF1", "IF2", "IF3", "IF4", "IF5", "IF6"]);
        assert!(p.iter().all(|m| m.preset().is_some()));
    }

    #[test]
    fn generated_sweep_is_large_and_disjoint_from_presets() {
        let mutants = generate(&PlicConfig::fe310_scaled());
        assert!(mutants.len() >= 20, "only {} mutants", mutants.len());
        let preset_ops: Vec<MutationOp> = InjectedFault::ALL.iter().map(|f| f.op()).collect();
        for (i, a) in mutants.iter().enumerate() {
            assert!(!preset_ops.contains(&a.op()), "{} is a preset", a.name);
            for b in &mutants[i + 1..] {
                assert_ne!(a.op(), b.op(), "{} and {} collide", a.name, b.name);
            }
        }
    }

    #[test]
    fn generated_sweep_adapts_to_tiny_configs() {
        let mut tiny = PlicConfig::small();
        tiny.sources = 4;
        let mutants = generate(&tiny);
        // Ids collapse onto each other but the sweep stays duplicate-free.
        for (i, a) in mutants.iter().enumerate() {
            for b in &mutants[i + 1..] {
                assert_ne!(a.op(), b.op());
            }
        }
    }

    #[test]
    fn kill_matrix_kills_and_spares_as_expected() {
        let config = PlicConfig::small().variant(PlicVariant::Fixed);
        let mutants = vec![
            Mutant::new(
                "cmp_never",
                "delivery dead",
                MutationOp::ThresholdCompare(ThresholdCmp::NeverPass),
            ),
            Mutant::new("dup_notify", "double notify", MutationOp::DuplicateNotify),
        ];
        let matrix = run_kill_matrix(config, &mutants, &[TestId::T1], 1);
        assert!(matrix.baseline[0].passed, "baseline T1 must pass");
        assert!(matrix.baseline[0].branch_sites > 0, "T1 forks symbolically");
        assert!(matrix.mutants[0].killed(), "dead delivery must be caught");
        assert!(
            !matrix.mutants[1].killed(),
            "duplicate notify is equivalent"
        );
        assert!((matrix.kill_rate() - 50.0).abs() < 1e-9);
        assert_eq!(matrix.survivors().len(), 1);
        assert_eq!(matrix.kills_per_test(), vec![1]);
        let view = matrix.stable_view();
        assert!(view.contains("mutant cmp_never"));
        assert!(view.contains("SURVIVED"));
        assert!(view.contains("killed 1/2"));
    }

    #[test]
    fn pearson_handles_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        assert!((r - 1.0).abs() < 1e-9);
        let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]);
        assert!((r + 1.0).abs() < 1e-9);
    }
}

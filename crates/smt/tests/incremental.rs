//! Property: assumption-based incremental verdicts equal fresh-solve
//! verdicts on random monotone query chains.
//!
//! The symbolic engine's query stream along one path is a monotone chain:
//! the base constraint set only grows, stays feasible by construction,
//! and every probe asks `check_feasible(base, focus)` for some fresh
//! boolean `focus`. The incremental solver answers those probes from a
//! retained assumption-solving context; this suite drives randomly
//! generated chains through both an incremental solver and a flat
//! cache-less fresh-solve reference and requires verdict equality at
//! every single step.

use symsc_smt::{Solver, TermId, TermPool, Width};

/// Deterministic xorshift64* generator — no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random boolean term over a small set of 8-bit variables: comparisons
/// over random arithmetic combinations, occasionally conjoined or negated
/// so multi-level AIG cones appear.
fn random_bool(pool: &mut TermPool, vars: &[TermId], rng: &mut Rng, depth: u32) -> TermId {
    if depth > 0 && rng.below(4) == 0 {
        let a = random_bool(pool, vars, rng, depth - 1);
        let b = random_bool(pool, vars, rng, depth - 1);
        return match rng.below(3) {
            0 => pool.and(a, b),
            1 => pool.or(a, b),
            _ => pool.not(a),
        };
    }
    let x = vars[rng.below(vars.len() as u64) as usize];
    let lhs = match rng.below(3) {
        0 => x,
        1 => {
            let y = vars[rng.below(vars.len() as u64) as usize];
            pool.add(x, y)
        }
        _ => {
            let k = pool.constant(rng.below(256), Width::W8);
            pool.xor(x, k)
        }
    };
    let k = pool.constant(rng.below(256), Width::W8);
    match rng.below(4) {
        0 => pool.eq(lhs, k),
        1 => pool.ne(lhs, k),
        2 => pool.ult(lhs, k),
        _ => pool.ugt(lhs, k),
    }
}

/// Runs one chain: probe random focuses against a growing feasible base,
/// comparing the incremental solver against fresh flat solves throughout.
fn run_chain(seed: u64, steps: u32) {
    let mut rng = Rng(seed | 1);
    let mut pool = TermPool::new();
    let vars: Vec<TermId> = (0..4)
        .map(|i| pool.var(&format!("v{i}"), Width::W8))
        .collect();

    // The solver under test: full stack + incremental context, exactly
    // the engine's configuration.
    let mut incremental = Solver::new();
    assert!(incremental.incremental_enabled());
    incremental.begin_path();

    let mut base: Vec<TermId> = Vec::new();
    for _ in 0..steps {
        let focus = random_bool(&mut pool, &vars, &mut rng, 2);
        let verdict = incremental.check_feasible(&pool, &base, focus);

        // Reference: a cache-less, non-incremental solver deciding the
        // whole conjunction from scratch.
        let mut whole = base.clone();
        whole.push(focus);
        let mut fresh = Solver::without_cache().with_incremental(false);
        let expected = fresh.check(&pool, &whole).is_sat();
        assert_eq!(
            verdict,
            expected,
            "seed {seed}: incremental verdict diverged from fresh solve \
             at base length {}",
            base.len()
        );

        // Keep the base feasible by construction, like the engine does:
        // only a focus that was just proved feasible may be pushed.
        if verdict && rng.below(3) != 0 {
            base.push(focus);
        }
    }
}

#[test]
fn incremental_verdicts_match_fresh_solves_on_random_chains() {
    for seed in [
        0x1234_5678,
        0x9e37_79b9,
        0xdead_beef,
        0x0bad_cafe,
        0x5555_aaaa,
        0x0f0f_0f0f,
    ] {
        run_chain(seed, 40);
    }
}

#[test]
fn incremental_chain_reuses_contexts_and_counts_solves() {
    // A hand-built monotone chain where every probe reaches the core:
    // the retained context must serve the whole path (one context, many
    // assumption solves).
    let mut pool = TermPool::new();
    let x = pool.var("x", Width::W8);
    let mut solver = Solver::without_cache().with_incremental(true);
    solver.begin_path();

    let mut base: Vec<TermId> = Vec::new();
    let mut bound = 200u64;
    for _ in 0..6 {
        let k = pool.constant(bound, Width::W8);
        let focus = pool.ult(x, k);
        assert!(solver.check_feasible(&pool, &base, focus));
        base.push(focus);
        bound -= 30;
    }
    let stats = solver.stats();
    assert_eq!(stats.incremental.contexts, 1, "one path, one context");
    assert_eq!(stats.incremental.assumption_solves, 6);
    assert_eq!(
        stats.sat_core_calls, stats.incremental.assumption_solves,
        "every core call on this chain was an assumption solve"
    );

    // A new path drops the context; the next probe builds a fresh one.
    solver.begin_path();
    let k = pool.constant(7, Width::W8);
    let focus = pool.eq(x, k);
    assert!(solver.check_feasible(&pool, &[], focus));
    assert_eq!(solver.stats().incremental.contexts, 2);
}

#[test]
fn infeasible_probe_does_not_poison_the_path() {
    // decide() probes both polarities: an UNSAT probe on ¬c must leave
    // the context fully usable for the path that takes c.
    let mut pool = TermPool::new();
    let x = pool.var("x", Width::W8);
    let ten = pool.constant(10, Width::W8);
    let lt = pool.ult(x, ten);
    let mut solver = Solver::without_cache().with_incremental(true);
    solver.begin_path();

    let base = vec![lt];
    let twenty = pool.constant(20, Width::W8);
    let impossible = pool.ugt(x, twenty); // x < 10 ∧ x > 20
    assert!(!solver.check_feasible(&pool, &base, impossible));
    let five = pool.constant(5, Width::W8);
    let fine = pool.eq(x, five);
    assert!(solver.check_feasible(&pool, &base, fine));
    assert_eq!(solver.stats().incremental.contexts, 1);
}

//! Property suite for the layered solver stack (independence slicing +
//! counterexample cache + model reuse).
//!
//! A seeded in-tree PRNG generates constraint sets over *six* variables,
//! with each constraint touching a small random subset of them — so the
//! sets decompose into several independence slices, which is the regime
//! the stack optimizes. The properties, mirroring the determinism contract
//! in `solver.rs`:
//!
//! 1. The full stack and the flat (cache-free) path agree on every verdict
//!    *and* every model, bit for bit.
//! 2. Several solvers sharing one cache stack — each replaying the corpus
//!    in a different order, like parallel workers racing — still agree
//!    with the flat baseline exactly.
//! 3. `check_feasible` (the verdict-only fast path with subset-model
//!    reuse) agrees with a flat full check of base ∪ {focus} whenever its
//!    precondition (feasible base) holds.

use std::collections::HashMap;
use std::sync::Arc;

use symsc_rng::Rng;
use symsc_smt::eval::evaluate;
use symsc_smt::{CexCache, QueryCache, SatResult, Solver, TermId, TermPool, Width};

const W: Width = Width::W8;
const SEED: u64 = 0x51_1CE5;
const CORPUS: usize = 64;
const VARS: usize = 6;

/// One constraint: a random binary-op tree over 1–2 of the six variables,
/// compared against a random bound. Pool-independent by construction.
#[derive(Clone, Debug)]
struct Constraint {
    vars: [usize; 2],
    ops: Vec<u32>,
    cmp: u32,
    bound: u8,
}

fn build(pool: &mut TermPool, c: &Constraint) -> TermId {
    let mut stack: Vec<TermId> = vec![
        pool.var(&format!("v{}", c.vars[0]), W),
        pool.var(&format!("v{}", c.vars[1]), W),
        pool.constant(u64::from(c.bound).rotate_left(3) & 0xff, W),
    ];
    for op in &c.ops {
        let a = stack[(op >> 8) as usize % stack.len()];
        let b = stack[(op >> 16) as usize % stack.len()];
        let t = match op % 5 {
            0 => pool.add(a, b),
            1 => pool.sub(a, b),
            2 => pool.and(a, b),
            3 => pool.xor(a, b),
            _ => pool.mul(a, b),
        };
        stack.push(t);
    }
    let lhs = *stack.last().unwrap();
    let rhs = pool.constant(u64::from(c.bound), W);
    match c.cmp % 3 {
        0 => pool.eq(lhs, rhs),
        1 => pool.ult(lhs, rhs),
        _ => pool.ult(rhs, lhs),
    }
}

/// Each corpus entry: 2–5 constraints over random variable pairs, plus one
/// extra constraint reserved as a `check_feasible` focus. Constraints are
/// drawn from a small shared pool, so the *same* constraint (and hence the
/// same independence slice) recurs across many entries — the overlap
/// profile of real path-exploration queries, and what the slice-granular
/// cache layers exist to exploit.
fn corpus() -> Vec<(Vec<Constraint>, Constraint)> {
    let mut rng = Rng::seed_from_u64(SEED);
    let gen_constraint = |rng: &mut Rng| {
        let a = rng.gen_range_inclusive(0, VARS as u64 - 1) as usize;
        // Half the constraints are single-variable (vars[0] == vars[1]).
        let b = if rng.gen_range_inclusive(0, 1) == 0 {
            a
        } else {
            rng.gen_range_inclusive(0, VARS as u64 - 1) as usize
        };
        Constraint {
            vars: [a, b],
            ops: (0..rng.gen_range_inclusive(1, 3))
                .map(|_| rng.next_u32())
                .collect(),
            cmp: rng.next_u32(),
            bound: rng.next_u32() as u8,
        }
    };
    let shared: Vec<Constraint> = (0..20).map(|_| gen_constraint(&mut rng)).collect();
    (0..CORPUS)
        .map(|_| {
            let n = rng.gen_range_inclusive(2, 5) as usize;
            let set = (0..n)
                .map(|_| {
                    let i = rng.gen_range_inclusive(0, shared.len() as u64 - 1) as usize;
                    shared[i].clone()
                })
                .collect();
            let focus =
                shared[rng.gen_range_inclusive(0, shared.len() as u64 - 1) as usize].clone();
            (set, focus)
        })
        .collect()
}

type EntryResult = (bool, Option<Vec<(String, u64)>>);

fn solve_entry(pool: &mut TermPool, solver: &mut Solver, entry: &[Constraint]) -> EntryResult {
    let terms: Vec<TermId> = entry.iter().map(|c| build(pool, c)).collect();
    match solver.check(pool, &terms) {
        SatResult::Sat(model) => {
            let env: HashMap<String, u64> = model.to_env();
            for (term, c) in terms.iter().zip(entry) {
                assert_eq!(evaluate(pool, *term, &env), 1, "model must satisfy {c:?}");
            }
            let mut pairs: Vec<(String, u64)> =
                model.iter().map(|(k, v)| (k.to_string(), v)).collect();
            pairs.sort();
            (true, Some(pairs))
        }
        SatResult::Unsat => (false, None),
    }
}

fn replay_in_order(solver: &mut Solver, order: &[usize]) -> Vec<(usize, EntryResult)> {
    let mut pool = TermPool::new();
    let sets = corpus();
    order
        .iter()
        .map(|&i| (i, solve_entry(&mut pool, solver, &sets[i].0)))
        .collect()
}

#[test]
fn layered_and_flat_agree_on_verdicts_and_models() {
    let mut flat_pool = TermPool::new();
    let mut flat = Solver::without_cache();
    let sets = corpus();
    let baseline: Vec<EntryResult> = sets
        .iter()
        .map(|(set, _)| solve_entry(&mut flat_pool, &mut flat, set))
        .collect();
    assert!(baseline.iter().any(|(sat, _)| *sat), "corpus has sat sets");
    assert!(
        baseline.iter().any(|(sat, _)| !*sat),
        "corpus has unsat sets"
    );

    let mut pool = TermPool::new();
    let mut layered = Solver::new();
    let first: Vec<EntryResult> = sets
        .iter()
        .map(|(set, _)| solve_entry(&mut pool, &mut layered, set))
        .collect();
    assert_eq!(baseline, first, "stack on vs off: identical results");
    // The multi-variable corpus must actually exercise the slice layers:
    // only cache-missed queries are partitioned (one slice minimum each),
    // so more slices than misses means some set split into several.
    let stats = layered.stats();
    assert!(stats.slices > stats.cache_misses, "sets split into slices");
    assert!(
        stats.slice_hits + stats.cex_subset_hits > 0,
        "slice-level reuse occurred: {stats:?}"
    );

    // A second replay answers everything from the caches — and still
    // returns the same models.
    let core_before = layered.stats().sat_core_calls;
    let second: Vec<EntryResult> = sets
        .iter()
        .map(|(set, _)| solve_entry(&mut pool, &mut layered, set))
        .collect();
    assert_eq!(baseline, second);
    assert_eq!(layered.stats().sat_core_calls, core_before);
}

#[test]
fn shared_stack_is_order_independent_across_solvers() {
    // Eight "workers": solvers sharing one query cache + one cex cache,
    // each replaying the corpus in a different seeded permutation. Every
    // result must equal the flat baseline regardless of who populated
    // which cache entry first.
    let mut flat_pool = TermPool::new();
    let mut flat = Solver::without_cache();
    let sets = corpus();
    let baseline: Vec<EntryResult> = sets
        .iter()
        .map(|(set, _)| solve_entry(&mut flat_pool, &mut flat, set))
        .collect();

    let query = Arc::new(QueryCache::new());
    let cex = Arc::new(CexCache::new());
    let mut rng = Rng::seed_from_u64(SEED ^ 0xFF);
    for worker in 0..8 {
        let mut order: Vec<usize> = (0..sets.len()).collect();
        // Fisher–Yates with the seeded generator.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range_inclusive(0, i as u64) as usize;
            order.swap(i, j);
        }
        let mut solver = Solver::with_stack(Some(Arc::clone(&query)), Some(Arc::clone(&cex)), true);
        for (i, result) in replay_in_order(&mut solver, &order) {
            assert_eq!(
                baseline[i], result,
                "worker {worker} disagrees with the flat baseline on set {i}"
            );
        }
    }
}

#[test]
fn check_feasible_matches_flat_full_check() {
    let sets = corpus();
    let mut flat_pool = TermPool::new();
    let mut flat = Solver::without_cache();
    let mut layered_pool = TermPool::new();
    let mut layered = Solver::new();
    let mut feasible_cases = 0;

    for (set, focus) in &sets {
        // Precondition of check_feasible: the base must be satisfiable.
        let base_flat: Vec<TermId> = set.iter().map(|c| build(&mut flat_pool, c)).collect();
        if !flat.check(&flat_pool, &base_flat).is_sat() {
            continue;
        }
        feasible_cases += 1;

        let focus_flat = build(&mut flat_pool, focus);
        let mut full = base_flat.clone();
        full.push(focus_flat);
        let expected = flat.check(&flat_pool, &full).is_sat();

        let base: Vec<TermId> = set.iter().map(|c| build(&mut layered_pool, c)).collect();
        // Warm the path the engine takes: the base set has been checked
        // (and its slice models cached) before any branch probe on it.
        assert!(layered.check(&layered_pool, &base).is_sat());
        let focus_id = build(&mut layered_pool, focus);
        let got = layered.check_feasible(&layered_pool, &base, focus_id);
        assert_eq!(expected, got, "feasibility mismatch on {set:?} + {focus:?}");
    }
    assert!(feasible_cases > 10, "corpus exercises the feasibility path");
    let stats = layered.stats();
    assert!(
        stats.focus_skips > 0,
        "multi-slice bases produce focus skips: {stats:?}"
    );
}

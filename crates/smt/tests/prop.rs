//! Property-based tests for the SMT stack.
//!
//! Strategy: generate random term trees from a seeded in-tree PRNG (the
//! workspace builds offline, so `proptest` is unavailable — each property
//! is a deterministic loop over `symsc_rng` with a fixed seed, which also
//! makes every failure immediately reproducible), then check three
//! invariants.
//!
//! 1. *Folding soundness* — the pool's construction-time simplifications
//!    never change semantics: `evaluate(build(ops), env)` equals a shadow
//!    interpretation of the same ops directly on `u64`.
//! 2. *Planted satisfiability* — for a random term `t` and random
//!    environment `env`, the constraint `t == eval(t, env)` is satisfiable
//!    and the returned model really satisfies it (checked through the
//!    independent evaluator).
//! 3. *Planted unsatisfiability* — `x == c1 && x == c2` with `c1 != c2`
//!    is reported unsatisfiable.

use std::collections::HashMap;

use symsc_rng::Rng;
use symsc_smt::eval::evaluate;
use symsc_smt::{SatResult, Solver, TermId, TermPool, Width};

const W: Width = Width::W8;

/// A tiny op language mirrored both into the pool and a shadow interpreter.
#[derive(Clone, Debug)]
enum Node {
    Var(u8),
    Const(u8),
    Not(Box<Node>),
    Neg(Box<Node>),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Xor(Box<Node>, Box<Node>),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Udiv(Box<Node>, Box<Node>),
    Urem(Box<Node>, Box<Node>),
    Shl(Box<Node>, Box<Node>),
    Lshr(Box<Node>, Box<Node>),
    IteUlt(Box<Node>, Box<Node>, Box<Node>, Box<Node>),
}

/// Samples a random term tree of height at most `depth`.
fn gen_node(rng: &mut Rng, depth: u32) -> Node {
    // At depth 0 always emit a leaf; otherwise emit one ~1/4 of the time
    // so trees stay varied in shape.
    if depth == 0 || rng.gen_range_inclusive(0, 3) == 0 {
        return if rng.gen_bool() {
            Node::Var(rng.gen_range_inclusive(0, 2) as u8)
        } else {
            Node::Const(rng.next_u32() as u8)
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_node(rng, depth - 1));
    match rng.gen_range_inclusive(0, 12) {
        0 => Node::Not(sub(rng)),
        1 => Node::Neg(sub(rng)),
        2 => Node::And(sub(rng), sub(rng)),
        3 => Node::Or(sub(rng), sub(rng)),
        4 => Node::Xor(sub(rng), sub(rng)),
        5 => Node::Add(sub(rng), sub(rng)),
        6 => Node::Sub(sub(rng), sub(rng)),
        7 => Node::Mul(sub(rng), sub(rng)),
        8 => Node::Udiv(sub(rng), sub(rng)),
        9 => Node::Urem(sub(rng), sub(rng)),
        10 => Node::Shl(sub(rng), sub(rng)),
        11 => Node::Lshr(sub(rng), sub(rng)),
        _ => Node::IteUlt(sub(rng), sub(rng), sub(rng), sub(rng)),
    }
}

fn gen_env(rng: &mut Rng) -> [u8; 3] {
    [
        rng.next_u32() as u8,
        rng.next_u32() as u8,
        rng.next_u32() as u8,
    ]
}

fn build(pool: &mut TermPool, node: &Node) -> TermId {
    match node {
        Node::Var(i) => pool.var(&format!("v{i}"), W),
        Node::Const(c) => pool.constant(u64::from(*c), W),
        Node::Not(a) => {
            let a = build(pool, a);
            pool.not(a)
        }
        Node::Neg(a) => {
            let a = build(pool, a);
            pool.neg(a)
        }
        Node::And(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.and(a, b)
        }
        Node::Or(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.or(a, b)
        }
        Node::Xor(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.xor(a, b)
        }
        Node::Add(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.add(a, b)
        }
        Node::Sub(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.sub(a, b)
        }
        Node::Mul(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.mul(a, b)
        }
        Node::Udiv(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.udiv(a, b)
        }
        Node::Urem(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.urem(a, b)
        }
        Node::Shl(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.shl(a, b)
        }
        Node::Lshr(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.lshr(a, b)
        }
        Node::IteUlt(c1, c2, t, e) => {
            let (c1, c2) = (build(pool, c1), build(pool, c2));
            let cond = pool.ult(c1, c2);
            let (t, e) = (build(pool, t), build(pool, e));
            pool.ite(cond, t, e)
        }
    }
}

/// Ground-truth interpreter over `u8` semantics, written independently of
/// the pool's folding rules.
fn shadow(node: &Node, env: &[u8; 3]) -> u8 {
    match node {
        Node::Var(i) => env[*i as usize],
        Node::Const(c) => *c,
        Node::Not(a) => !shadow(a, env),
        Node::Neg(a) => shadow(a, env).wrapping_neg(),
        Node::And(a, b) => shadow(a, env) & shadow(b, env),
        Node::Or(a, b) => shadow(a, env) | shadow(b, env),
        Node::Xor(a, b) => shadow(a, env) ^ shadow(b, env),
        Node::Add(a, b) => shadow(a, env).wrapping_add(shadow(b, env)),
        Node::Sub(a, b) => shadow(a, env).wrapping_sub(shadow(b, env)),
        Node::Mul(a, b) => shadow(a, env).wrapping_mul(shadow(b, env)),
        Node::Udiv(a, b) => shadow(a, env).checked_div(shadow(b, env)).unwrap_or(0xFF),
        Node::Urem(a, b) => {
            let a = shadow(a, env);
            a.checked_rem(shadow(b, env)).unwrap_or(a)
        }
        Node::Shl(a, b) => {
            let s = shadow(b, env);
            if s >= 8 {
                0
            } else {
                shadow(a, env) << s
            }
        }
        Node::Lshr(a, b) => {
            let s = shadow(b, env);
            if s >= 8 {
                0
            } else {
                shadow(a, env) >> s
            }
        }
        Node::IteUlt(c1, c2, t, e) => {
            if shadow(c1, env) < shadow(c2, env) {
                shadow(t, env)
            } else {
                shadow(e, env)
            }
        }
    }
}

fn env_map(env: &[u8; 3]) -> HashMap<String, u64> {
    (0..3)
        .map(|i| (format!("v{i}"), u64::from(env[i])))
        .collect()
}

#[test]
fn folding_preserves_semantics() {
    let mut rng = Rng::seed_from_u64(0x5EED_0001);
    for case in 0..256 {
        let node = gen_node(&mut rng, 4);
        let env = gen_env(&mut rng);
        let mut pool = TermPool::new();
        let t = build(&mut pool, &node);
        let via_pool = evaluate(&pool, t, &env_map(&env));
        let via_shadow = u64::from(shadow(&node, &env));
        assert_eq!(
            via_pool,
            via_shadow,
            "case {case}: term {} under {env:?}",
            pool.display(t)
        );
    }
}

#[test]
fn planted_constraint_is_sat() {
    let mut rng = Rng::seed_from_u64(0x5EED_0002);
    for case in 0..256 {
        let node = gen_node(&mut rng, 4);
        let env = gen_env(&mut rng);
        let mut pool = TermPool::new();
        let t = build(&mut pool, &node);
        let planted = evaluate(&pool, t, &env_map(&env));
        let c = pool.constant(planted, W);
        let constraint = pool.eq(t, c);
        let mut solver = Solver::new();
        match solver.check(&pool, &[constraint]) {
            SatResult::Sat(model) => {
                let value = evaluate(&pool, constraint, &model.to_env());
                assert_eq!(value, 1, "case {case}: model {model} violates constraint");
            }
            SatResult::Unsat => {
                panic!("case {case}: planted constraint reported unsat");
            }
        }
    }
}

#[test]
fn contradictory_equalities_are_unsat() {
    let mut rng = Rng::seed_from_u64(0x5EED_0003);
    for _ in 0..256 {
        let c1 = rng.next_u32() as u8;
        let c2 = rng.next_u32() as u8;
        if c1 == c2 {
            continue;
        }
        let mut pool = TermPool::new();
        let x = pool.var("x", W);
        let k1 = pool.constant(u64::from(c1), W);
        let k2 = pool.constant(u64::from(c2), W);
        let e1 = pool.eq(x, k1);
        let e2 = pool.eq(x, k2);
        let mut solver = Solver::new();
        assert_eq!(solver.check(&pool, &[e1, e2]), SatResult::Unsat);
    }
}

#[test]
fn model_round_trips_through_eval() {
    // x + a == b always has the unique solution x = b - a.
    let mut rng = Rng::seed_from_u64(0x5EED_0004);
    for _ in 0..256 {
        let a = rng.next_u32() as u8;
        let b = rng.next_u32() as u8;
        let mut pool = TermPool::new();
        let x = pool.var("x", W);
        let ka = pool.constant(u64::from(a), W);
        let kb = pool.constant(u64::from(b), W);
        let sum = pool.add(x, ka);
        let c = pool.eq(sum, kb);
        let mut solver = Solver::new();
        match solver.check(&pool, &[c]) {
            SatResult::Sat(m) => {
                assert_eq!(m.value_or_zero("x") as u8, b.wrapping_sub(a));
            }
            SatResult::Unsat => panic!("always satisfiable"),
        }
    }
}

// ----- width-parametric properties (the shapes above, at 16/32/64 bits) -----

macro_rules! width_props {
    ($modname:ident, $width:expr, $mask:expr) => {
        mod $modname {
            use super::*;

            /// Unique-solution equation: x + a == b over the width.
            #[test]
            fn addition_inverts() {
                let mut rng = Rng::seed_from_u64(0x5EED_0010);
                for _ in 0..64 {
                    let a = rng.next_u64() & $mask;
                    let b = rng.next_u64() & $mask;
                    let mut pool = TermPool::new();
                    let x = pool.var("x", $width);
                    let ka = pool.constant(a, $width);
                    let kb = pool.constant(b, $width);
                    let sum = pool.add(x, ka);
                    let c = pool.eq(sum, kb);
                    match Solver::new().check(&pool, &[c]) {
                        SatResult::Sat(m) => {
                            let got = m.value_or_zero("x");
                            assert_eq!(got, b.wrapping_sub(a) & $mask);
                        }
                        SatResult::Unsat => panic!("always satisfiable"),
                    }
                }
            }

            /// Signed comparison agrees with two's-complement host math.
            #[test]
            fn signed_less_than_matches_host() {
                let mut rng = Rng::seed_from_u64(0x5EED_0011);
                for _ in 0..64 {
                    let a = rng.next_u64() & $mask;
                    let b = rng.next_u64() & $mask;
                    let mut pool = TermPool::new();
                    let ka = pool.constant(a, $width);
                    let kb = pool.constant(b, $width);
                    let lt = pool.slt(ka, kb);
                    let sa = $width.sign_extend_to_64(a) as i64;
                    let sb = $width.sign_extend_to_64(b) as i64;
                    assert_eq!(pool.is_true(lt), sa < sb);
                }
            }

            /// Shift round trip: (x << k) >> k recovers the low bits.
            #[test]
            fn shift_round_trip() {
                let mut rng = Rng::seed_from_u64(0x5EED_0012);
                for _ in 0..64 {
                    let x = rng.next_u64() & $mask;
                    let k = rng.gen_range_inclusive(0, 7) as u32;
                    let mut pool = TermPool::new();
                    let kx = pool.constant(x, $width);
                    let kk = pool.constant(u64::from(k), $width);
                    let left = pool.shl(kx, kk);
                    let back = pool.lshr(left, kk);
                    let expected = ((x << k) & $mask) >> k;
                    assert_eq!(pool.const_value(back), Some(expected));
                }
            }

            /// The solver can invert a multiplication by an odd constant
            /// (odd constants are units modulo 2^n, so a solution exists).
            #[test]
            fn odd_multiplier_inverts() {
                let mut rng = Rng::seed_from_u64(0x5EED_0013);
                for _ in 0..64 {
                    let m = (rng.next_u64() & $mask) | 1; // force odd
                    let target = rng.next_u64() & $mask;
                    let mut pool = TermPool::new();
                    let x = pool.var("x", $width);
                    let km = pool.constant(m, $width);
                    let kt = pool.constant(target, $width);
                    let prod = pool.mul(x, km);
                    let c = pool.eq(prod, kt);
                    match Solver::new().check(&pool, &[c]) {
                        SatResult::Sat(model) => {
                            let got = model.value_or_zero("x");
                            assert_eq!(got.wrapping_mul(m) & $mask, target);
                        }
                        SatResult::Unsat => {
                            panic!("odd multiplier must be invertible");
                        }
                    }
                }
            }
        }
    };
}

width_props!(w16, Width::W16, 0xFFFFu64);
width_props!(w32, Width::W32, 0xFFFF_FFFFu64);
width_props!(w64, Width::W64, u64::MAX);

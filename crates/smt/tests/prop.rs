//! Property-based tests for the SMT stack.
//!
//! Strategy: generate random term trees, then check three invariants.
//!
//! 1. *Folding soundness* — the pool's construction-time simplifications
//!    never change semantics: `evaluate(build(ops), env)` equals a shadow
//!    interpretation of the same ops directly on `u64`.
//! 2. *Planted satisfiability* — for a random term `t` and random
//!    environment `env`, the constraint `t == eval(t, env)` is satisfiable
//!    and the returned model really satisfies it (checked through the
//!    independent evaluator).
//! 3. *Planted unsatisfiability* — `x == c1 && x == c2` with `c1 != c2`
//!    is reported unsatisfiable.

use std::collections::HashMap;

use proptest::prelude::*;
use symsc_smt::eval::evaluate;
use symsc_smt::{SatResult, Solver, TermId, TermPool, Width};

const W: Width = Width::W8;

/// A tiny op language mirrored both into the pool and a shadow interpreter.
#[derive(Clone, Debug)]
enum Node {
    Var(u8),
    Const(u8),
    Not(Box<Node>),
    Neg(Box<Node>),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Xor(Box<Node>, Box<Node>),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Udiv(Box<Node>, Box<Node>),
    Urem(Box<Node>, Box<Node>),
    Shl(Box<Node>, Box<Node>),
    Lshr(Box<Node>, Box<Node>),
    IteUlt(Box<Node>, Box<Node>, Box<Node>, Box<Node>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Node::Var),
        any::<u8>().prop_map(Node::Const),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Node::Not(Box::new(a))),
            inner.clone().prop_map(|a| Node::Neg(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Udiv(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Urem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Lshr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(c1, c2, t, e)| Node::IteUlt(
                    Box::new(c1),
                    Box::new(c2),
                    Box::new(t),
                    Box::new(e)
                )),
        ]
    })
}

fn build(pool: &mut TermPool, node: &Node) -> TermId {
    match node {
        Node::Var(i) => pool.var(&format!("v{i}"), W),
        Node::Const(c) => pool.constant(u64::from(*c), W),
        Node::Not(a) => {
            let a = build(pool, a);
            pool.not(a)
        }
        Node::Neg(a) => {
            let a = build(pool, a);
            pool.neg(a)
        }
        Node::And(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.and(a, b)
        }
        Node::Or(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.or(a, b)
        }
        Node::Xor(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.xor(a, b)
        }
        Node::Add(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.add(a, b)
        }
        Node::Sub(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.sub(a, b)
        }
        Node::Mul(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.mul(a, b)
        }
        Node::Udiv(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.udiv(a, b)
        }
        Node::Urem(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.urem(a, b)
        }
        Node::Shl(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.shl(a, b)
        }
        Node::Lshr(a, b) => {
            let (a, b) = (build(pool, a), build(pool, b));
            pool.lshr(a, b)
        }
        Node::IteUlt(c1, c2, t, e) => {
            let (c1, c2) = (build(pool, c1), build(pool, c2));
            let cond = pool.ult(c1, c2);
            let (t, e) = (build(pool, t), build(pool, e));
            pool.ite(cond, t, e)
        }
    }
}

/// Ground-truth interpreter over `u8` semantics, written independently of
/// the pool's folding rules.
fn shadow(node: &Node, env: &[u8; 3]) -> u8 {
    match node {
        Node::Var(i) => env[*i as usize],
        Node::Const(c) => *c,
        Node::Not(a) => !shadow(a, env),
        Node::Neg(a) => shadow(a, env).wrapping_neg(),
        Node::And(a, b) => shadow(a, env) & shadow(b, env),
        Node::Or(a, b) => shadow(a, env) | shadow(b, env),
        Node::Xor(a, b) => shadow(a, env) ^ shadow(b, env),
        Node::Add(a, b) => shadow(a, env).wrapping_add(shadow(b, env)),
        Node::Sub(a, b) => shadow(a, env).wrapping_sub(shadow(b, env)),
        Node::Mul(a, b) => shadow(a, env).wrapping_mul(shadow(b, env)),
        Node::Udiv(a, b) => {
            let d = shadow(b, env);
            if d == 0 {
                0xFF
            } else {
                shadow(a, env) / d
            }
        }
        Node::Urem(a, b) => {
            let d = shadow(b, env);
            if d == 0 {
                shadow(a, env)
            } else {
                shadow(a, env) % d
            }
        }
        Node::Shl(a, b) => {
            let s = shadow(b, env);
            if s >= 8 {
                0
            } else {
                shadow(a, env) << s
            }
        }
        Node::Lshr(a, b) => {
            let s = shadow(b, env);
            if s >= 8 {
                0
            } else {
                shadow(a, env) >> s
            }
        }
        Node::IteUlt(c1, c2, t, e) => {
            if shadow(c1, env) < shadow(c2, env) {
                shadow(t, env)
            } else {
                shadow(e, env)
            }
        }
    }
}

fn env_map(env: &[u8; 3]) -> HashMap<String, u64> {
    (0..3)
        .map(|i| (format!("v{i}"), u64::from(env[i])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn folding_preserves_semantics(node in node_strategy(), env in any::<[u8; 3]>()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &node);
        let via_pool = evaluate(&pool, t, &env_map(&env));
        let via_shadow = u64::from(shadow(&node, &env));
        prop_assert_eq!(via_pool, via_shadow, "term: {}", pool.display(t));
    }

    #[test]
    fn planted_constraint_is_sat(node in node_strategy(), env in any::<[u8; 3]>()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &node);
        let planted = evaluate(&pool, t, &env_map(&env));
        let c = pool.constant(planted, W);
        let constraint = pool.eq(t, c);
        let mut solver = Solver::new();
        match solver.check(&pool, &[constraint]) {
            SatResult::Sat(model) => {
                let value = evaluate(&pool, constraint, &model.to_env());
                prop_assert_eq!(value, 1, "model {} violates constraint", model);
            }
            SatResult::Unsat => {
                prop_assert!(false, "planted constraint reported unsat");
            }
        }
    }

    #[test]
    fn contradictory_equalities_are_unsat(c1 in any::<u8>(), c2 in any::<u8>()) {
        prop_assume!(c1 != c2);
        let mut pool = TermPool::new();
        let x = pool.var("x", W);
        let k1 = pool.constant(u64::from(c1), W);
        let k2 = pool.constant(u64::from(c2), W);
        let e1 = pool.eq(x, k1);
        let e2 = pool.eq(x, k2);
        let mut solver = Solver::new();
        prop_assert_eq!(solver.check(&pool, &[e1, e2]), SatResult::Unsat);
    }

    #[test]
    fn model_round_trips_through_eval(a in any::<u8>(), b in any::<u8>()) {
        // x + a == b always has the unique solution x = b - a.
        let mut pool = TermPool::new();
        let x = pool.var("x", W);
        let ka = pool.constant(u64::from(a), W);
        let kb = pool.constant(u64::from(b), W);
        let sum = pool.add(x, ka);
        let c = pool.eq(sum, kb);
        let mut solver = Solver::new();
        match solver.check(&pool, &[c]) {
            SatResult::Sat(m) => {
                prop_assert_eq!(m.value_or_zero("x") as u8, b.wrapping_sub(a));
            }
            SatResult::Unsat => prop_assert!(false, "always satisfiable"),
        }
    }
}

// ----- width-parametric properties (the shapes above, at 16/32/64 bits) -----

macro_rules! width_props {
    ($modname:ident, $width:expr, $mask:expr) => {
        mod $modname {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                /// Unique-solution equation: x + a == b over the width.
                #[test]
                fn addition_inverts(a in any::<u64>(), b in any::<u64>()) {
                    let (a, b) = (a & $mask, b & $mask);
                    let mut pool = TermPool::new();
                    let x = pool.var("x", $width);
                    let ka = pool.constant(a, $width);
                    let kb = pool.constant(b, $width);
                    let sum = pool.add(x, ka);
                    let c = pool.eq(sum, kb);
                    match Solver::new().check(&pool, &[c]) {
                        SatResult::Sat(m) => {
                            let got = m.value_or_zero("x");
                            prop_assert_eq!(got, b.wrapping_sub(a) & $mask);
                        }
                        SatResult::Unsat => prop_assert!(false, "always satisfiable"),
                    }
                }

                /// Signed comparison agrees with two's-complement host math.
                #[test]
                fn signed_less_than_matches_host(a in any::<u64>(), b in any::<u64>()) {
                    let (a, b) = (a & $mask, b & $mask);
                    let mut pool = TermPool::new();
                    let ka = pool.constant(a, $width);
                    let kb = pool.constant(b, $width);
                    let lt = pool.slt(ka, kb);
                    let sa = $width.sign_extend_to_64(a) as i64;
                    let sb = $width.sign_extend_to_64(b) as i64;
                    prop_assert_eq!(pool.is_true(lt), sa < sb);
                }

                /// Shift round trip: (x << k) >> k recovers the low bits.
                #[test]
                fn shift_round_trip(x in any::<u64>(), k in 0u32..8) {
                    let bits = $width.bits();
                    prop_assume!(k < bits);
                    let x = x & $mask;
                    let mut pool = TermPool::new();
                    let kx = pool.constant(x, $width);
                    let kk = pool.constant(u64::from(k), $width);
                    let left = pool.shl(kx, kk);
                    let back = pool.lshr(left, kk);
                    let expected = ((x << k) & $mask) >> k;
                    prop_assert_eq!(pool.const_value(back), Some(expected));
                }

                /// The solver can invert a multiplication by an odd constant
                /// (odd constants are units modulo 2^n, so a solution exists).
                #[test]
                fn odd_multiplier_inverts(m in any::<u64>(), target in any::<u64>()) {
                    let m = (m & $mask) | 1; // force odd
                    let target = target & $mask;
                    let mut pool = TermPool::new();
                    let x = pool.var("x", $width);
                    let km = pool.constant(m, $width);
                    let kt = pool.constant(target, $width);
                    let prod = pool.mul(x, km);
                    let c = pool.eq(prod, kt);
                    match Solver::new().check(&pool, &[c]) {
                        SatResult::Sat(model) => {
                            let got = model.value_or_zero("x");
                            prop_assert_eq!(got.wrapping_mul(m) & $mask, target);
                        }
                        SatResult::Unsat => {
                            prop_assert!(false, "odd multiplier must be invertible");
                        }
                    }
                }
            }
        }
    };
}

width_props!(w16, Width::W16, 0xFFFFu64);
width_props!(w32, Width::W32, 0xFFFF_FFFFu64);
width_props!(w64, Width::W64, u64::MAX);

//! Corpus-replay correctness suite for the solver's query cache.
//!
//! A seeded in-tree PRNG generates a corpus of constraint sets (random
//! term trees compared against random bounds, so the corpus mixes sat and
//! unsat queries). The same corpus is then solved with the cache off, with
//! a private cache, and through a shared cache from a second term pool.
//! The cache must be semantically invisible: identical verdicts, models
//! that really satisfy the constraints (checked through the independent
//! evaluator), and hit/miss counters that account for every lookup.

use std::collections::HashMap;
use std::sync::Arc;

use symsc_rng::Rng;
use symsc_smt::eval::evaluate;
use symsc_smt::{QueryCache, SatResult, Solver, TermId, TermPool, Width};

const W: Width = Width::W8;
const SEED: u64 = 0x5EED_CAC4E;
const CORPUS: usize = 48;

/// One constraint: a random binary-op tree compared against a bound.
#[derive(Clone, Debug)]
enum Cmp {
    Eq,
    Ult,
    Ugt,
}

#[derive(Clone, Debug)]
struct Constraint {
    ops: Vec<u32>,
    cmp: Cmp,
    bound: u8,
}

/// Builds the constraint's term in `pool`. The op stream drives a tiny
/// stack machine over vars/constants so the same `Constraint` rebuilds
/// the structurally identical term in any pool.
fn build(pool: &mut TermPool, c: &Constraint) -> TermId {
    let mut stack: Vec<TermId> = vec![
        pool.var("v0", W),
        pool.var("v1", W),
        pool.constant(u64::from(c.bound).rotate_left(3) & 0xff, W),
    ];
    for op in &c.ops {
        let a = stack[(op >> 8) as usize % stack.len()];
        let b = stack[(op >> 16) as usize % stack.len()];
        let t = match op % 5 {
            0 => pool.add(a, b),
            1 => pool.sub(a, b),
            2 => pool.and(a, b),
            3 => pool.xor(a, b),
            _ => pool.mul(a, b),
        };
        stack.push(t);
    }
    let lhs = *stack.last().unwrap();
    let rhs = pool.constant(u64::from(c.bound), W);
    match c.cmp {
        Cmp::Eq => pool.eq(lhs, rhs),
        Cmp::Ult => pool.ult(lhs, rhs),
        Cmp::Ugt => pool.ult(rhs, lhs),
    }
}

/// Generates the corpus: each entry is a set of 1–3 constraints.
fn corpus() -> Vec<Vec<Constraint>> {
    let mut rng = Rng::seed_from_u64(SEED);
    (0..CORPUS)
        .map(|_| {
            let n = rng.gen_range_inclusive(1, 3) as usize;
            (0..n)
                .map(|_| Constraint {
                    ops: (0..rng.gen_range_inclusive(1, 4))
                        .map(|_| rng.next_u32())
                        .collect(),
                    cmp: match rng.gen_range_inclusive(0, 2) {
                        0 => Cmp::Eq,
                        1 => Cmp::Ult,
                        _ => Cmp::Ugt,
                    },
                    bound: rng.next_u32() as u8,
                })
                .collect()
        })
        .collect()
}

/// A sat flag plus the model's sorted `(name, value)` pairs, if any.
type EntryResult = (bool, Option<Vec<(String, u64)>>);

/// Solves every corpus entry with `solver` over `pool`, returning per-entry
/// `(is_sat, model)` pairs and checking each sat model against the
/// independent evaluator.
fn replay(pool: &mut TermPool, solver: &mut Solver) -> Vec<EntryResult> {
    corpus()
        .iter()
        .map(|entry| {
            let terms: Vec<TermId> = entry.iter().map(|c| build(pool, c)).collect();
            let result = solver.check(pool, &terms);
            match result {
                SatResult::Sat(model) => {
                    let env: HashMap<String, u64> = model.to_env();
                    for (term, c) in terms.iter().zip(entry) {
                        assert_eq!(evaluate(pool, *term, &env), 1, "model must satisfy {c:?}");
                    }
                    let mut pairs: Vec<(String, u64)> =
                        model.iter().map(|(k, v)| (k.to_string(), v)).collect();
                    pairs.sort();
                    (true, Some(pairs))
                }
                SatResult::Unsat => (false, None),
            }
        })
        .collect()
}

#[test]
fn cache_on_and_off_agree_on_verdicts_and_models() {
    let mut pool_off = TermPool::new();
    let mut uncached = Solver::without_cache();
    let baseline = replay(&mut pool_off, &mut uncached);
    assert!(
        baseline.iter().any(|(sat, _)| *sat),
        "corpus has sat entries"
    );
    assert!(
        baseline.iter().any(|(sat, _)| !*sat),
        "corpus has unsat entries"
    );

    let mut pool_on = TermPool::new();
    let mut cached = Solver::new();
    let first = replay(&mut pool_on, &mut cached);
    // Thanks to fingerprint-canonical models, cached and uncached runs
    // agree not just on verdicts but on the exact models.
    assert_eq!(baseline, first);

    // Replaying the same corpus through the same solver hits for every
    // query and changes nothing.
    let second = replay(&mut pool_on, &mut cached);
    assert_eq!(baseline, second);
}

#[test]
fn hit_and_miss_counters_account_for_every_lookup() {
    // Constant-folded (trivial) queries are answered before the cache, so
    // the accounting identity is hits + misses + trivial = queries.
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    replay(&mut pool, &mut solver);
    let after_first = solver.stats();
    assert!(after_first.cache_misses > 0, "corpus reaches the cache");
    assert_eq!(
        after_first.cache_hits + after_first.cache_misses + after_first.trivial,
        after_first.queries
    );

    replay(&mut pool, &mut solver);
    let after_second = solver.stats();
    assert_eq!(
        after_second.cache_hits + after_second.cache_misses + after_second.trivial,
        after_second.queries
    );
    // Every second-pass query repeats a first-pass one: all cache lookups
    // hit, and the miss counter does not move.
    assert_eq!(
        after_second.cache_hits - after_first.cache_hits,
        after_first.cache_misses
    );
    assert_eq!(after_second.cache_misses, after_first.cache_misses);

    let mut uncached = Solver::without_cache();
    replay(&mut pool, &mut uncached);
    let stats = uncached.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0);
}

#[test]
fn shared_cache_replays_across_term_pools() {
    // A second solver with a *different* pool but the same shared cache
    // must hit on every query: cache keys are structural fingerprints,
    // not pool-local term ids.
    let cache = Arc::new(QueryCache::new());
    let mut pool_a = TermPool::new();
    let mut solver_a = Solver::with_shared_cache(Arc::clone(&cache));
    let results_a = replay(&mut pool_a, &mut solver_a);
    let stats_a = solver_a.stats();
    assert_eq!(stats_a.cache_hits, 0);
    assert_eq!(stats_a.cache_misses, stats_a.queries - stats_a.trivial);

    let mut pool_b = TermPool::new();
    let mut solver_b = Solver::with_shared_cache(cache);
    let results_b = replay(&mut pool_b, &mut solver_b);
    let stats_b = solver_b.stats();
    assert_eq!(results_a, results_b);
    assert_eq!(stats_b.cache_misses, 0);
    assert_eq!(stats_b.cache_hits, stats_b.queries - stats_b.trivial);
}

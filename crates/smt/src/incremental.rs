//! Per-path incremental solving: a retained bit-blast + CDCL context.
//!
//! Along one exploration path the constraint set only grows: every
//! `decide()` pushes a conjunct, and every fork probe asks about the same
//! prefix plus one fresh condition. The layered solver answers most of
//! those probes above the SAT core; this module makes the ones that *do*
//! reach the core cheap as well. A [`SolverCtx`] keeps the path prefix
//! bit-blasted, Tseitin-encoded and asserted in a single [`SatSolver`]
//! whose learned clauses, variable activities and saved phases persist,
//! and decides each probe as one assumption solve on top
//! ([`SatSolver::solve_with_assumptions`]). New conjuncts append — the
//! AIG, the node→variable map and the clause database never rebuild.
//!
//! # Determinism
//!
//! An assumption solve's model depends on the solver's accumulated
//! history (activities, phases, learned clauses), so it is *not* the
//! canonical model the deterministic one-shot core would produce. The
//! context is therefore only ever used for verdicts
//! ([`Solver::check_feasible`](crate::Solver::check_feasible)), where
//! SAT/UNSAT is unique and hence history-independent; nothing a context
//! computes is written to any cache except UNSAT verdicts, which are
//! canonical facts. Model-producing queries keep using the fresh
//! deterministic core, so reports stay byte-identical whether the
//! incremental layer is on or off.

use std::collections::HashMap;

use crate::aig::AigLit;
use crate::blast::Blaster;
use crate::cnf;
use crate::sat::{SatSolver, SatStats, Var};
use crate::term::{TermId, TermPool};

/// Counters for the incremental per-path solving layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Fresh per-path solver contexts created.
    pub contexts: u64,
    /// Probes decided by an assumption solve in a retained context.
    pub assumption_solves: u64,
    /// Learnt clauses alive at the start of each assumption solve, summed
    /// across solves — a proxy for how much learned work carried over.
    pub clauses_retained: u64,
    /// CDCL restarts performed inside retained contexts.
    pub restarts: u64,
}

impl IncrementalStats {
    /// Merges `other` into `self` (summing all counters).
    pub fn merge(&mut self, other: &IncrementalStats) {
        self.contexts += other.contexts;
        self.assumption_solves += other.assumption_solves;
        self.clauses_retained += other.clauses_retained;
        self.restarts += other.restarts;
    }
}

/// A retained incremental solving context for one path's constraint
/// prefix.
///
/// The context is append-only: [`extend_prefix`](SolverCtx::extend_prefix)
/// asserts newly pushed conjuncts on top of everything already loaded, and
/// [`solve_assuming`](SolverCtx::solve_assuming) decides the prefix plus
/// one focus condition without asserting the focus — so a probe on `¬c`
/// never poisons the context for a later prefix that contains `c`.
///
/// A context is bound to the [`TermPool`] it was created against
/// ([`TermPool::pool_id`]): [`TermId`]s are dense indices with no pool tag,
/// and the blaster memoizes per id, so ids minted by another pool must be
/// rejected rather than silently resolved to the wrong term.
#[derive(Debug)]
pub struct SolverCtx {
    blaster: Blaster,
    sat: SatSolver,
    node_var: HashMap<u32, Var>,
    /// Sorted fingerprints of the conjuncts asserted so far.
    loaded: Vec<u128>,
    pool_id: u64,
    /// Set when asserting the prefix itself conflicted at the root level;
    /// the caller falls back to the fresh deterministic core.
    failed: bool,
}

impl SolverCtx {
    /// Creates an empty context bound to `pool`.
    pub fn new(pool: &TermPool) -> SolverCtx {
        SolverCtx {
            blaster: Blaster::new(),
            sat: SatSolver::new(),
            node_var: HashMap::new(),
            loaded: Vec::new(),
            pool_id: pool.pool_id(),
            failed: false,
        }
    }

    /// Whether this context can serve a probe whose base prefix has the
    /// given sorted fingerprints: same pool, not failed, and everything
    /// already asserted is still part of the prefix (constraint sets only
    /// grow along a path; anything else needs a fresh context).
    pub fn compatible(&self, pool: &TermPool, base_fps: &[u128]) -> bool {
        !self.failed && self.pool_id == pool.pool_id() && is_sorted_subset(&self.loaded, base_fps)
    }

    /// Asserts every not-yet-loaded conjunct of `base` (canonicalized
    /// `(fingerprint, id)` entries, sorted by fingerprint) as a unit on
    /// top of the retained clause database.
    ///
    /// Only call when [`compatible`](SolverCtx::compatible) holds for the
    /// base's fingerprints.
    pub fn extend_prefix(&mut self, pool: &TermPool, base: &[(u128, TermId)]) {
        debug_assert!(self.compatible(pool, &base.iter().map(|&(fp, _)| fp).collect::<Vec<_>>()));
        for &(fp, id) in base {
            if self.loaded.binary_search(&fp).is_ok() {
                continue;
            }
            let bits = self.blaster.blast(pool, id);
            debug_assert_eq!(bits.len(), 1, "prefix conjuncts are boolean");
            if !cnf::assert_roots(
                self.blaster.aig(),
                &[bits[0]],
                &mut self.sat,
                &mut self.node_var,
            ) {
                // A feasible-by-construction prefix cannot conflict; if it
                // somehow does, poison the context instead of guessing.
                self.failed = true;
                return;
            }
        }
        self.loaded = base.iter().map(|&(fp, _)| fp).collect();
    }

    /// Decides `prefix ∪ {focus}` with the focus posted as an assumption.
    /// Returns `None` when the context cannot answer (poisoned prefix or
    /// an inconsistent clause database) and the caller should fall back to
    /// a fresh solve.
    pub fn solve_assuming(&mut self, pool: &TermPool, focus: TermId) -> Option<bool> {
        if self.failed || !self.sat.is_ok() {
            return None;
        }
        let bits = self.blaster.blast(pool, focus);
        debug_assert_eq!(bits.len(), 1, "focus must be boolean");
        let root = bits[0];
        if root == AigLit::TRUE {
            // AIG simplification proved the focus; the prefix is feasible
            // by the caller's precondition.
            return Some(true);
        }
        if root == AigLit::FALSE {
            return Some(false);
        }
        let lit = cnf::encode_lit(self.blaster.aig(), root, &mut self.sat, &mut self.node_var);
        Some(self.sat.solve_with_assumptions(&[lit]))
    }

    /// Number of learnt clauses currently alive in the retained database.
    pub fn learnt_alive(&self) -> usize {
        self.sat.num_learnt()
    }

    /// The retained SAT core's cumulative counters.
    pub fn sat_stats(&self) -> SatStats {
        self.sat.stats()
    }
}

/// Whether sorted `a` is a subset of sorted `b` (two-pointer merge walk).
fn is_sorted_subset(a: &[u128], b: &[u128]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Width;

    fn canon(pool: &TermPool, cs: &[TermId]) -> Vec<(u128, TermId)> {
        let mut entries: Vec<(u128, TermId)> =
            cs.iter().map(|&c| (pool.fingerprint(c), c)).collect();
        entries.sort_unstable_by_key(|&(fp, _)| fp);
        entries.dedup_by_key(|&mut (fp, _)| fp);
        entries
    }

    #[test]
    fn sorted_subset_walk() {
        assert!(is_sorted_subset(&[], &[]));
        assert!(is_sorted_subset(&[], &[1]));
        assert!(is_sorted_subset(&[2], &[1, 2, 3]));
        assert!(is_sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[4], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[1, 2], &[2, 3]));
        assert!(!is_sorted_subset(&[1], &[]));
    }

    #[test]
    fn growing_prefix_reuses_the_context() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Width::W8);
        let ten = pool.constant(10, Width::W8);
        let five = pool.constant(5, Width::W8);
        let three = pool.constant(3, Width::W8);
        let seven = pool.constant(7, Width::W8);
        let c1 = pool.ult(x, ten);
        let c2 = pool.ult(x, five);
        let eq3 = pool.eq(x, three);
        let eq7 = pool.eq(x, seven);

        let mut ctx = SolverCtx::new(&pool);
        let base1 = canon(&pool, &[c1]);
        ctx.extend_prefix(&pool, &base1);
        assert_eq!(ctx.solve_assuming(&pool, eq3), Some(true));
        assert_eq!(ctx.solve_assuming(&pool, eq7), Some(true));

        // Grow the prefix: x < 5 joins. The old load stays valid.
        let base2 = canon(&pool, &[c1, c2]);
        assert!(ctx.compatible(&pool, &base2.iter().map(|&(fp, _)| fp).collect::<Vec<_>>()));
        ctx.extend_prefix(&pool, &base2);
        assert_eq!(ctx.solve_assuming(&pool, eq3), Some(true));
        assert_eq!(ctx.solve_assuming(&pool, eq7), Some(false), "x < 5 now");
        // And a failed assumption must not poison later probes.
        assert_eq!(ctx.solve_assuming(&pool, eq3), Some(true));
    }

    #[test]
    fn shrunk_prefix_is_incompatible() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Width::W8);
        let k = pool.constant(9, Width::W8);
        let c = pool.ult(x, k);
        let mut ctx = SolverCtx::new(&pool);
        ctx.extend_prefix(&pool, &canon(&pool, &[c]));
        assert!(!ctx.compatible(&pool, &[]), "loaded ⊄ empty prefix");
    }

    #[test]
    fn foreign_pool_is_rejected() {
        let mut pool_a = TermPool::new();
        let x = pool_a.var("x", Width::W8);
        let k = pool_a.constant(3, Width::W8);
        let c = pool_a.ult(x, k);
        let entries = canon(&pool_a, &[c]);
        let fps: Vec<u128> = entries.iter().map(|&(fp, _)| fp).collect();

        let ctx = SolverCtx::new(&pool_a);
        assert!(ctx.compatible(&pool_a, &fps));
        let pool_b = pool_a.clone(); // fresh identity by design
        assert!(!ctx.compatible(&pool_b, &fps));
    }
}

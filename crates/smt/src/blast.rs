//! Bit-blasting: lowering bitvector terms to an [`Aig`].
//!
//! Every term becomes a vector of AIG literals, least-significant bit first.
//! The blaster memoizes per [`TermId`], so shared subterms (guaranteed by the
//! pool's hash-consing) become shared subcircuits.

use std::collections::HashMap;

use crate::aig::{Aig, AigLit};
use crate::term::{Term, TermId, TermPool};

/// Lowers terms into an AIG, tracking which AIG inputs belong to which
/// bitvector variable so models can be read back.
#[derive(Debug, Default)]
pub struct Blaster {
    aig: Aig,
    bits: HashMap<TermId, Vec<AigLit>>,
    var_bits: HashMap<String, Vec<AigLit>>,
    next_tag: u32,
}

impl Blaster {
    /// Creates an empty blaster.
    pub fn new() -> Blaster {
        Blaster::default()
    }

    /// The underlying AIG.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the underlying AIG (used by the CNF stage).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// The input literals allocated for each variable (LSB first).
    pub fn var_bits(&self) -> &HashMap<String, Vec<AigLit>> {
        &self.var_bits
    }

    /// Blasts `id`, returning its bits (LSB first). Results are memoized.
    pub fn blast(&mut self, pool: &TermPool, id: TermId) -> Vec<AigLit> {
        // Iterative post-order so deep constraint chains cannot overflow the
        // call stack. The visited set is essential: terms are DAGs with
        // heavy sharing, and re-expanding shared nodes is exponential.
        let mut order: Vec<TermId> = Vec::new();
        let mut visited: std::collections::HashSet<TermId> = std::collections::HashSet::new();
        let mut stack: Vec<(TermId, bool)> = vec![(id, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.bits.contains_key(&t) {
                continue;
            }
            if expanded {
                order.push(t);
                continue;
            }
            if !visited.insert(t) {
                continue;
            }
            stack.push((t, true));
            for child in children(pool.term(t)) {
                stack.push((child, false));
            }
        }
        for t in order {
            if !self.bits.contains_key(&t) {
                let bits = self.blast_node(pool, t);
                debug_assert_eq!(bits.len(), pool.width(t).bits() as usize);
                self.bits.insert(t, bits);
            }
        }
        self.bits[&id].clone()
    }

    fn get(&self, t: TermId) -> &[AigLit] {
        &self.bits[&t]
    }

    fn blast_node(&mut self, pool: &TermPool, id: TermId) -> Vec<AigLit> {
        let width = pool.width(id).bits() as usize;
        match pool.term(id).clone() {
            Term::Const { value, .. } => (0..width)
                .map(|i| self.aig.constant(value >> i & 1 == 1))
                .collect(),
            Term::Var { name, .. } => {
                let bits: Vec<AigLit> = (0..width)
                    .map(|_| {
                        let tag = self.next_tag;
                        self.next_tag += 1;
                        self.aig.input(tag)
                    })
                    .collect();
                self.var_bits.insert(name.to_string(), bits.clone());
                bits
            }
            Term::Not(a) => self.get(a).iter().map(|l| l.not()).collect(),
            Term::Neg(a) => {
                let inv: Vec<AigLit> = self.get(a).iter().map(|l| l.not()).collect();
                let one = self.const_bits(1, width);
                self.adder(&inv, &one, AigLit::FALSE)
            }
            Term::And(a, b) => self.zip_with(a, b, |g, x, y| g.and(x, y)),
            Term::Or(a, b) => self.zip_with(a, b, |g, x, y| g.or(x, y)),
            Term::Xor(a, b) => self.zip_with(a, b, |g, x, y| g.xor(x, y)),
            Term::Add(a, b) => {
                let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
                self.adder(&x, &y, AigLit::FALSE)
            }
            Term::Sub(a, b) => {
                let x = self.get(a).to_vec();
                let y: Vec<AigLit> = self.get(b).iter().map(|l| l.not()).collect();
                self.adder(&x, &y, AigLit::TRUE)
            }
            Term::Mul(a, b) => {
                let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
                self.multiplier(&x, &y)
            }
            Term::Udiv(a, b) => {
                let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
                let (q, _r) = self.divider(&x, &y);
                // bvudiv x 0 = ones
                let zero = self.is_zero(&y);
                q.iter()
                    .map(|&l| self.aig.mux(zero, AigLit::TRUE, l))
                    .collect()
            }
            Term::Urem(a, b) => {
                let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
                let (_q, r) = self.divider(&x, &y);
                // bvurem x 0 = x
                let zero = self.is_zero(&y);
                r.iter()
                    .zip(x.iter())
                    .map(|(&rl, &xl)| self.aig.mux(zero, xl, rl))
                    .collect()
            }
            Term::Shl(a, b) => self.shifter(a, b, ShiftKind::Left),
            Term::Lshr(a, b) => self.shifter(a, b, ShiftKind::LogicalRight),
            Term::Ashr(a, b) => self.shifter(a, b, ShiftKind::ArithmeticRight),
            Term::Eq(a, b) => {
                let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
                let eq_bits: Vec<AigLit> = x
                    .iter()
                    .zip(y.iter())
                    .map(|(&p, &q)| self.aig.xnor(p, q))
                    .collect();
                vec![self.aig.and_many(eq_bits)]
            }
            Term::Ult(a, b) => {
                let lt = self.unsigned_less(a, b, false);
                vec![lt]
            }
            Term::Ule(a, b) => {
                let le = self.unsigned_less(a, b, true);
                vec![le]
            }
            Term::Slt(a, b) => {
                let lt = self.signed_less(a, b, false);
                vec![lt]
            }
            Term::Sle(a, b) => {
                let le = self.signed_less(a, b, true);
                vec![le]
            }
            Term::Ite(c, t, e) => {
                let sel = self.get(c)[0];
                let (tv, ev) = (self.get(t).to_vec(), self.get(e).to_vec());
                tv.iter()
                    .zip(ev.iter())
                    .map(|(&x, &y)| self.aig.mux(sel, x, y))
                    .collect()
            }
            Term::ZeroExt { arg, .. } => {
                let mut bits = self.get(arg).to_vec();
                bits.resize(width, AigLit::FALSE);
                bits
            }
            Term::SignExt { arg, .. } => {
                let mut bits = self.get(arg).to_vec();
                let sign = *bits.last().expect("non-empty");
                bits.resize(width, sign);
                bits
            }
            Term::Extract { arg, hi, lo } => self.get(arg)[lo as usize..=hi as usize].to_vec(),
            Term::Concat(hi, lo) => {
                let mut bits = self.get(lo).to_vec();
                bits.extend_from_slice(self.get(hi));
                bits
            }
        }
    }

    fn const_bits(&self, value: u64, width: usize) -> Vec<AigLit> {
        (0..width)
            .map(|i| self.aig.constant(value >> i & 1 == 1))
            .collect()
    }

    fn zip_with(
        &mut self,
        a: TermId,
        b: TermId,
        mut f: impl FnMut(&mut Aig, AigLit, AigLit) -> AigLit,
    ) -> Vec<AigLit> {
        let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
        x.iter()
            .zip(y.iter())
            .map(|(&p, &q)| f(&mut self.aig, p, q))
            .collect()
    }

    /// Ripple-carry adder. Returns `width` sum bits (carry-out discarded).
    fn adder(&mut self, a: &[AigLit], b: &[AigLit], carry_in: AigLit) -> Vec<AigLit> {
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b.iter()) {
            let xy = self.aig.xor(x, y);
            let sum = self.aig.xor(xy, carry);
            let c1 = self.aig.and(x, y);
            let c2 = self.aig.and(xy, carry);
            carry = self.aig.or(c1, c2);
            out.push(sum);
        }
        out
    }

    /// Shift-and-add multiplier (modulo 2^width).
    fn multiplier(&mut self, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
        let width = a.len();
        let mut acc = vec![AigLit::FALSE; width];
        for (i, &bi) in b.iter().enumerate() {
            // partial = (a << i) & replicate(bi)
            let mut partial = vec![AigLit::FALSE; width];
            for j in i..width {
                partial[j] = self.aig.and(a[j - i], bi);
            }
            acc = self.adder(&acc, &partial, AigLit::FALSE);
        }
        acc
    }

    /// Restoring long division. Returns `(quotient, remainder)`.
    ///
    /// The divide-by-zero case is patched by the caller; the raw circuit
    /// yields `q = ones, r = a` for `b = 0` by construction anyway, but we
    /// do not rely on that.
    fn divider(&mut self, a: &[AigLit], b: &[AigLit]) -> (Vec<AigLit>, Vec<AigLit>) {
        let width = a.len();
        let mut rem = vec![AigLit::FALSE; width];
        let mut quot = vec![AigLit::FALSE; width];
        for i in (0..width).rev() {
            // rem = (rem << 1) | a[i]
            rem.rotate_right(1);
            rem[0] = a[i];
            // ge = rem >= b  (unsigned)
            let ge = self.bits_ge(&rem, b);
            // if ge { rem -= b }
            let nb: Vec<AigLit> = b.iter().map(|l| l.not()).collect();
            let diff = self.adder(&rem, &nb, AigLit::TRUE);
            rem = rem
                .iter()
                .zip(diff.iter())
                .map(|(&keep, &sub)| self.aig.mux(ge, sub, keep))
                .collect();
            quot[i] = ge;
        }
        (quot, rem)
    }

    fn is_zero(&mut self, bits: &[AigLit]) -> AigLit {
        let any = self.aig.or_many(bits.iter().copied());
        any.not()
    }

    /// `a >= b` over raw bit slices (unsigned).
    fn bits_ge(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        // a >= b  <=>  !(a < b)
        let lt = self.bits_ult(a, b);
        lt.not()
    }

    /// `a < b` over raw bit slices (unsigned). Ripple from MSB.
    fn bits_ult(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        let mut lt = AigLit::FALSE;
        let mut eq = AigLit::TRUE;
        for i in (0..a.len()).rev() {
            let a_lt_b = self.aig.and(a[i].not(), b[i]);
            let here = self.aig.and(eq, a_lt_b);
            lt = self.aig.or(lt, here);
            let same = self.aig.xnor(a[i], b[i]);
            eq = self.aig.and(eq, same);
        }
        lt
    }

    fn unsigned_less(&mut self, a: TermId, b: TermId, or_equal: bool) -> AigLit {
        let (x, y) = (self.get(a).to_vec(), self.get(b).to_vec());
        let lt = self.bits_ult(&x, &y);
        if !or_equal {
            return lt;
        }
        let eq_bits: Vec<AigLit> = x
            .iter()
            .zip(y.iter())
            .map(|(&p, &q)| self.aig.xnor(p, q))
            .collect();
        let eq = self.aig.and_many(eq_bits);
        self.aig.or(lt, eq)
    }

    fn signed_less(&mut self, a: TermId, b: TermId, or_equal: bool) -> AigLit {
        // Signed compare == unsigned compare with the sign bits flipped.
        let mut x = self.get(a).to_vec();
        let mut y = self.get(b).to_vec();
        let msb = x.len() - 1;
        x[msb] = x[msb].not();
        y[msb] = y[msb].not();
        let lt = self.bits_ult(&x, &y);
        if !or_equal {
            return lt;
        }
        let eq_bits: Vec<AigLit> = x
            .iter()
            .zip(y.iter())
            .map(|(&p, &q)| self.aig.xnor(p, q))
            .collect();
        let eq = self.aig.and_many(eq_bits);
        self.aig.or(lt, eq)
    }

    fn shifter(&mut self, a: TermId, amount: TermId, kind: ShiftKind) -> Vec<AigLit> {
        let bits = self.get(a).to_vec();
        let amt = self.get(amount).to_vec();
        let width = bits.len();
        let fill_default = AigLit::FALSE;
        let sign = *bits.last().expect("non-empty");
        let fill = match kind {
            ShiftKind::ArithmeticRight => sign,
            _ => fill_default,
        };

        // Barrel shifter over the log2(width) low bits of the amount.
        let stages = usize::BITS - (width - 1).leading_zeros(); // ceil(log2(width))
        let mut cur = bits;
        for s in 0..stages {
            let shift = 1usize << s;
            let sel = amt[s as usize];
            let mut next = Vec::with_capacity(width);
            for i in 0..width {
                let shifted = match kind {
                    ShiftKind::Left => {
                        if i >= shift {
                            cur[i - shift]
                        } else {
                            AigLit::FALSE
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithmeticRight => {
                        if i + shift < width {
                            cur[i + shift]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.aig.mux(sel, shifted, cur[i]));
            }
            cur = next;
        }

        // Overshift: amount >= width → all zero (or all sign for ashr).
        // That happens when any amount bit at position >= stages is set, or
        // when the low `stages` bits encode a value >= width (only possible
        // if width is not a power of two).
        let mut over = AigLit::FALSE;
        for &l in amt.iter().skip(stages as usize) {
            over = self.aig.or(over, l);
        }
        if !width.is_power_of_two() {
            let low = &amt[..stages as usize];
            let wconst = self.const_bits(width as u64, stages as usize);
            let ge = self.bits_ge_slices(low, &wconst);
            over = self.aig.or(over, ge);
        }
        cur.iter().map(|&l| self.aig.mux(over, fill, l)).collect()
    }

    fn bits_ge_slices(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        let lt = self.bits_ult(a, b);
        lt.not()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithmeticRight,
}

fn children(term: &Term) -> Vec<TermId> {
    match *term {
        Term::Const { .. } | Term::Var { .. } => vec![],
        Term::Not(a) | Term::Neg(a) => vec![a],
        Term::And(a, b)
        | Term::Or(a, b)
        | Term::Xor(a, b)
        | Term::Add(a, b)
        | Term::Sub(a, b)
        | Term::Mul(a, b)
        | Term::Udiv(a, b)
        | Term::Urem(a, b)
        | Term::Shl(a, b)
        | Term::Lshr(a, b)
        | Term::Ashr(a, b)
        | Term::Eq(a, b)
        | Term::Ult(a, b)
        | Term::Ule(a, b)
        | Term::Slt(a, b)
        | Term::Sle(a, b)
        | Term::Concat(a, b) => vec![a, b],
        Term::Ite(c, t, e) => vec![c, t, e],
        Term::ZeroExt { arg, .. } | Term::SignExt { arg, .. } | Term::Extract { arg, .. } => {
            vec![arg]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Width;
    use std::collections::HashMap;

    /// Blasts `id`, then evaluates the circuit with the given variable
    /// values and compares against the term evaluator.
    fn check_against_eval(pool: &TermPool, id: TermId, env_pairs: &[(&str, u64)]) {
        let mut blaster = Blaster::new();
        let bits = blaster.blast(pool, id);

        let env: HashMap<String, u64> =
            env_pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let expected = crate::eval::evaluate(pool, id, &env);

        // Build tag -> bool from the variable assignment.
        let var_bits = blaster.var_bits().clone();
        let mut tag_value: HashMap<u32, bool> = HashMap::new();
        for (name, lits) in &var_bits {
            let value = env.get(name).copied().unwrap_or(0);
            for (i, lit) in lits.iter().enumerate() {
                if let crate::aig::AigNode::Input(tag) = blaster.aig().node(lit.node()) {
                    tag_value.insert(tag, value >> i & 1 == 1);
                }
            }
        }
        let lookup = |tag: u32| tag_value.get(&tag).copied().unwrap_or(false);
        let mut actual = 0u64;
        for (i, &bit) in bits.iter().enumerate() {
            if blaster.aig().evaluate(bit, &lookup) {
                actual |= 1 << i;
            }
        }
        assert_eq!(
            actual,
            expected,
            "circuit/eval mismatch for {} under {env_pairs:?}",
            pool.display(id)
        );
    }

    fn binop_cases(
        f: impl Fn(&mut TermPool, TermId, TermId) -> TermId,
        width: Width,
        cases: &[(u64, u64)],
    ) {
        for &(x, y) in cases {
            let mut p = TermPool::new();
            let a = p.var("a", width);
            let b = p.var("b", width);
            let r = f(&mut p, a, b);
            check_against_eval(&p, r, &[("a", x), ("b", y)]);
        }
    }

    const CASES8: &[(u64, u64)] = &[
        (0, 0),
        (1, 1),
        (3, 5),
        (0xFF, 1),
        (0x80, 0x7F),
        (200, 100),
        (7, 0),
        (0, 9),
        (0xAB, 0xCD),
        (255, 255),
    ];

    #[test]
    fn adder_matches_eval() {
        binop_cases(|p, a, b| p.add(a, b), Width::W8, CASES8);
    }

    #[test]
    fn subtractor_matches_eval() {
        binop_cases(|p, a, b| p.sub(a, b), Width::W8, CASES8);
    }

    #[test]
    fn multiplier_matches_eval() {
        binop_cases(|p, a, b| p.mul(a, b), Width::W8, CASES8);
    }

    #[test]
    fn divider_matches_eval() {
        binop_cases(|p, a, b| p.udiv(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.urem(a, b), Width::W8, CASES8);
    }

    #[test]
    fn shifts_match_eval() {
        let shift_cases: &[(u64, u64)] = &[
            (0xAB, 0),
            (0xAB, 1),
            (0xAB, 4),
            (0xAB, 7),
            (0xAB, 8),
            (0xAB, 200),
            (0x80, 3),
        ];
        binop_cases(|p, a, b| p.shl(a, b), Width::W8, shift_cases);
        binop_cases(|p, a, b| p.lshr(a, b), Width::W8, shift_cases);
        binop_cases(|p, a, b| p.ashr(a, b), Width::W8, shift_cases);
    }

    #[test]
    fn shifts_match_eval_non_power_of_two_width() {
        let w = Width::new(5).unwrap();
        let cases: &[(u64, u64)] = &[
            (0b10110, 0),
            (0b10110, 2),
            (0b10110, 4),
            (0b10110, 5),
            (0b10110, 7),
        ];
        binop_cases(|p, a, b| p.shl(a, b), w, cases);
        binop_cases(|p, a, b| p.lshr(a, b), w, cases);
        binop_cases(|p, a, b| p.ashr(a, b), w, cases);
    }

    #[test]
    fn comparisons_match_eval() {
        binop_cases(|p, a, b| p.ult(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.ule(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.slt(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.sle(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.eq(a, b), Width::W8, CASES8);
    }

    #[test]
    fn bitwise_match_eval() {
        binop_cases(|p, a, b| p.and(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.or(a, b), Width::W8, CASES8);
        binop_cases(|p, a, b| p.xor(a, b), Width::W8, CASES8);
    }

    #[test]
    fn unary_and_structure_match_eval() {
        for &(x, _) in CASES8 {
            let mut p = TermPool::new();
            let a = p.var("a", Width::W8);
            let n = p.not(a);
            check_against_eval(&p, n, &[("a", x)]);

            let mut p = TermPool::new();
            let a = p.var("a", Width::W8);
            let n = p.neg(a);
            check_against_eval(&p, n, &[("a", x)]);

            let mut p = TermPool::new();
            let a = p.var("a", Width::W8);
            let e = p.extract(a, 6, 2);
            check_against_eval(&p, e, &[("a", x)]);

            let mut p = TermPool::new();
            let a = p.var("a", Width::W8);
            let z = p.zero_ext(a, Width::W16);
            check_against_eval(&p, z, &[("a", x)]);

            let mut p = TermPool::new();
            let a = p.var("a", Width::W8);
            let s = p.sign_ext(a, Width::W16);
            check_against_eval(&p, s, &[("a", x)]);
        }
    }

    #[test]
    fn ite_matches_eval() {
        for &(x, y) in CASES8 {
            for c in [0u64, 1] {
                let mut p = TermPool::new();
                let cond = p.var("c", Width::W1);
                let a = p.var("a", Width::W8);
                let b = p.var("b", Width::W8);
                let r = p.ite(cond, a, b);
                check_against_eval(&p, r, &[("a", x), ("b", y), ("c", c)]);
            }
        }
    }

    #[test]
    fn concat_matches_eval() {
        let mut p = TermPool::new();
        let a = p.var("a", Width::W8);
        let b = p.var("b", Width::W8);
        let c = p.concat(a, b);
        check_against_eval(&p, c, &[("a", 0xAB), ("b", 0xCD)]);
    }
}

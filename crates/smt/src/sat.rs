//! A CDCL SAT solver in the MiniSat tradition.
//!
//! Features: two-watched-literal propagation, VSIDS variable ordering with
//! an indexed binary heap, first-UIP conflict analysis with cheap clause
//! minimization, phase saving, Luby-sequence restarts and activity-based
//! learnt-clause database reduction.
//!
//! The solver is incremental in the MiniSat style: clauses may be added
//! between solves, and [`SatSolver::solve_with_assumptions`] decides the
//! formula under a set of assumption literals posted as pseudo-decisions.
//! Learned clauses, variable activities and saved phases all survive from
//! one call to the next, which matches the workload of re-execution based
//! symbolic exploration: along one path the constraint set only grows, so
//! the conjuncts seen so far can stay asserted while each fork probe is a
//! single assumption on top.

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable; `negated` selects polarity.
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is the negative polarity.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Undef,
    True,
    False,
}

impl Assign {
    fn from_bool(b: bool) -> Assign {
        if b {
            Assign::True
        } else {
            Assign::False
        }
    }
}

const NO_REASON: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Cumulative solver counters, useful for benchmark reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt.
    pub learnt_clauses: u64,
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use symsc_smt::sat::{Lit, SatSolver};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// // (a | b) & (!a | b) & (!b | a)  =>  a = b = true
/// s.add_clause(&[Lit::new(a, false), Lit::new(b, false)]);
/// s.add_clause(&[Lit::new(a, true), Lit::new(b, false)]);
/// s.add_clause(&[Lit::new(b, true), Lit::new(a, false)]);
/// assert!(s.solve());
/// assert!(s.value(a) && s.value(b));
/// ```
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<Assign>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    num_learnt: usize,
    reduce_count: u64,
    stats: SatStats,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;

impl Default for SatSolver {
    fn default() -> SatSolver {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            num_learnt: 0,
            reduce_count: 0,
            stats: SatStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Number of learnt clauses currently alive in the database (survivors
    /// of [`reduce_db`](Self::reduce_db), not the cumulative count).
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Whether the clause database is still consistent. Once a root-level
    /// conflict makes this `false`, every later solve returns `false`.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(Assign::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(-1);
        self.heap_insert(v.0);
        v
    }

    fn value_lit(&self, l: Lit) -> Assign {
        match self.assign[l.var().index()] {
            Assign::Undef => Assign::Undef,
            Assign::True => {
                if l.is_negated() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_negated() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    /// The model value of `v` after a successful [`solve`](Self::solve).
    /// Unassigned (don't-care) variables read as `false`.
    pub fn value(&self, v: Var) -> bool {
        self.assign[v.index()] == Assign::True
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause or root-level conflict).
    ///
    /// May be called between solves: the solver first backtracks to the
    /// root level, so only level-0 assignments participate in the
    /// satisfied/false-literal filtering below.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if !self.ok {
            return false;
        }
        // Sort, dedupe, drop false literals, detect tautology / satisfied.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut filtered = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == l.negated() {
                return true; // tautology: l and !l both present
            }
            match self.value_lit(l) {
                Assign::True => return true, // satisfied at root level
                Assign::False => {}          // drop
                Assign::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(filtered, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watcher {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            clause: idx,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnt += 1;
            self.stats.learnt_clauses += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        idx
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), Assign::Undef);
        let v = l.var().index();
        self.assign[v] = Assign::from_bool(!l.is_negated());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut kept = 0;
            let mut conflict = None;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Quick skip via blocker.
                if self.value_lit(w.blocker) == Assign::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let ci = w.clause as usize;
                if self.clauses[ci].deleted {
                    continue; // drop watcher of deleted clause
                }
                // Ensure the false literal is at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value_lit(first) == Assign::True {
                    ws[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value_lit(self.clauses[ci].lits[k]) != Assign::False {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[new_watch.code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting; keep this watcher.
                ws[kept] = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.value_lit(first) == Assign::False {
                    // Conflict: keep the remaining watchers and bail out.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.unchecked_enqueue(first, w.clause);
                }
            }
            ws.truncate(kept);
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v] >= 0 {
            self.heap_sift_up(self.heap_pos[v] as usize);
        }
    }

    fn bump_clause(&mut self, ci: usize) {
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the asserting literal
        let mut to_clear: Vec<usize> = Vec::new();
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            debug_assert_ne!(confl, NO_REASON);
            self.bump_clause(confl as usize);
            let start = usize::from(p.is_some());
            let len = self.clauses[confl as usize].lits.len();
            for j in start..len {
                let q = self.clauses[confl as usize].lits[j];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            while !self.seen[self.trail[index - 1].var().index()] {
                index -= 1;
            }
            index -= 1;
            let pl = self.trail[index];
            let v = pl.var().index();
            confl = self.reason[v];
            self.seen[v] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
        }
        learnt[0] = p.expect("asserting literal").negated();

        // Cheap clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        for v in to_clear {
            self.seen[v] = false;
        }
        // seen[] for removed/kept literals cleared above; the asserting
        // literal's variable was already cleared inside the loop.

        // Compute the backtrack level (second-highest level in the clause).
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    /// A literal is redundant if its reason clause is entirely made of
    /// seen literals (or root-level literals).
    fn literal_redundant(&self, l: Lit) -> bool {
        let v = l.var().index();
        let r = self.reason[v];
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize].lits.iter().all(|&q| {
            let qv = q.var().index();
            qv == v || self.seen[qv] || self.level[qv] == 0
        })
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = !l.is_negated();
            self.assign[v] = Assign::Undef;
            self.reason[v] = NO_REASON;
            if self.heap_pos[v] < 0 {
                self.heap_insert(v as u32);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == Assign::Undef {
                let lit = Lit::new(Var(v), !self.phase[v as usize]);
                return Some(lit);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        self.reduce_count += 1;
        let mut learnt_idx: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        learnt_idx.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnt_idx
            .iter()
            .map(|&ci| {
                let lit0 = self.clauses[ci].lits[0];
                self.reason[lit0.var().index()] == ci as u32 && self.value_lit(lit0) == Assign::True
            })
            .collect();
        let target = learnt_idx.len() / 2;
        let mut removed = 0;
        for (k, &ci) in learnt_idx.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[k] {
                continue;
            }
            self.clauses[ci].deleted = true;
            self.num_learnt -= 1;
            removed += 1;
        }
        // Deleted clauses are skipped lazily during propagation.
    }

    /// Solves the formula. Returns `true` if satisfiable; the model is then
    /// available through [`value`](Self::value).
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under `assumptions`, posted as pseudo-decisions
    /// before any branching. Returns `true` if satisfiable together with
    /// the assumptions; the model is then available through
    /// [`value`](Self::value).
    ///
    /// `false` means unsatisfiable *under the assumptions*: unless the
    /// clause database itself became unsatisfiable (a root-level
    /// conflict), the solver stays usable and a later call with different
    /// assumptions may succeed. Learned clauses are derived from the
    /// clause database alone — assumptions enter the trail as decisions,
    /// never as antecedents — so everything learned here remains valid
    /// for every future call.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        let mut restarts = 0u64;
        loop {
            let conflict_budget = luby(restarts) * 100;
            match self.search(conflict_budget, assumptions) {
                SearchResult::Sat => return true,
                SearchResult::Unsat => {
                    self.ok = false;
                    return false;
                }
                SearchResult::AssumpUnsat => {
                    self.backtrack(0);
                    return false;
                }
                SearchResult::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
            }
        }
    }

    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> SearchResult {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    return SearchResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let asserting = learnt[0];
                    let ci = self.attach_clause(learnt, true);
                    self.bump_clause(ci as usize);
                    self.unchecked_enqueue(asserting, ci);
                }
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
            } else {
                if conflicts >= conflict_budget {
                    return SearchResult::Restart;
                }
                if self.num_learnt > 2000 + 500 * self.reduce_count as usize {
                    self.reduce_db();
                }
                // Re-establish assumptions before any free branching: one
                // pseudo-decision level per assumption, in order, so
                // conflict analysis can backtrack through them and the
                // next iteration repairs whatever it undid.
                let mut posted = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        Assign::True => {
                            // Already implied: dummy level keeps the
                            // level-index == assumption-index mapping.
                            self.trail_lim.push(self.trail.len());
                        }
                        Assign::False => return SearchResult::AssumpUnsat,
                        Assign::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, NO_REASON);
                            posted = true;
                            break;
                        }
                    }
                }
                if posted {
                    continue; // propagate the assumption first
                }
                match self.pick_branch() {
                    None => return SearchResult::Sat,
                    Some(next) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(next, NO_REASON);
                    }
                }
            }
        }
    }

    // ----- indexed max-heap ordered by var activity -----

    fn heap_insert(&mut self, v: u32) {
        self.heap_pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[largest] as usize]
            {
                largest = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[largest] as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap_swap(i, largest);
            i = largest;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a] as usize] = a as i32;
        self.heap_pos[self.heap[b] as usize] = b as i32;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchResult {
    Sat,
    Unsat,
    /// Unsatisfiable only under the current assumptions; the clause
    /// database itself is still consistent.
    AssumpUnsat,
    Restart,
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = i;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut SatSolver, vars: &mut Vec<Var>, i: usize, neg: bool) -> Lit {
        while vars.len() <= i {
            vars.push(s.new_var());
        }
        Lit::new(vars[i], neg)
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert!(s.solve());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::new(v, false)]));
        assert!(s.solve());
        assert!(s.value(v));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::new(v, false)]));
        assert!(!s.add_clause(&[Lit::new(v, true)]) || !s.solve());
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::new(v, false), Lit::new(v, true)]));
        assert!(s.solve());
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 & (x0 -> x1) & (x1 -> x2) ... forces all true.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::new(vars[0], false)]);
        for w in vars.windows(2) {
            s.add_clause(&[Lit::new(w[0], true), Lit::new(w[1], false)]);
        }
        assert!(s.solve());
        for &v in &vars {
            assert!(s.value(v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires
        // real search, not just propagation.
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        // p[i][j] = pigeon i in hole j ; var index = i*2 + j
        for i in 0..3 {
            let a = lit(&mut s, &mut vars, i * 2, false);
            let b = lit(&mut s, &mut vars, i * 2 + 1, false);
            s.add_clause(&[a, b]); // every pigeon somewhere
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    let a = lit(&mut s, &mut vars, i1 * 2 + j, true);
                    let b = lit(&mut s, &mut vars, i2 * 2 + j, true);
                    s.add_clause(&[a, b]); // no two share a hole
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let (pigeons, holes) = (5usize, 4usize);
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        for i in 0..pigeons {
            let clause: Vec<Lit> = (0..holes)
                .map(|j| lit(&mut s, &mut vars, i * holes + j, false))
                .collect();
            s.add_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    let a = lit(&mut s, &mut vars, i1 * holes + j, true);
                    let b = lit(&mut s, &mut vars, i2 * holes + j, true);
                    s.add_clause(&[a, b]);
                }
            }
        }
        assert!(!s.solve());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn random_3sat_models_satisfy_all_clauses() {
        // Deterministic pseudo-random satisfiable-ish instances: generate a
        // planted solution, emit clauses consistent with it, check that the
        // found model satisfies every clause.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..10 {
            let n = 30usize;
            let mut s = SatSolver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let planted: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..120 {
                let mut clause = Vec::new();
                // Ensure at least one literal agrees with the planted model.
                let forced = (next() as usize) % n;
                clause.push(Lit::new(vars[forced], !planted[forced]));
                for _ in 0..2 {
                    let v = (next() as usize) % n;
                    clause.push(Lit::new(vars[v], next() & 1 == 1));
                }
                clauses.push(clause);
            }
            for c in &clauses {
                assert!(s.add_clause(c));
            }
            assert!(s.solve(), "planted instance must be satisfiable");
            for c in &clauses {
                assert!(
                    c.iter().any(|&l| s.value(l.var()) != l.is_negated()),
                    "model violates clause {c:?}"
                );
            }
        }
    }

    #[test]
    fn assumptions_flip_verdict_without_poisoning() {
        // (a | b) with assumptions probing each polarity: the same solver
        // instance must answer SAT/UNSAT per call and stay consistent.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, false), Lit::new(b, false)]);
        assert!(!s.solve_with_assumptions(&[Lit::new(a, true), Lit::new(b, true)]));
        assert!(s.is_ok(), "assumption UNSAT must not poison the solver");
        assert!(s.solve_with_assumptions(&[Lit::new(a, true)]));
        assert!(s.value(b), "!a forces b");
        assert!(s.solve_with_assumptions(&[Lit::new(b, true)]));
        assert!(s.value(a), "!b forces a");
        assert!(s.solve(), "still satisfiable with no assumptions");
    }

    #[test]
    fn clauses_added_between_solves_take_effect() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, false), Lit::new(b, false)]);
        assert!(s.solve());
        // Grow the formula after a solve: force !a, so b carries a|b.
        assert!(s.add_clause(&[Lit::new(a, true)]));
        assert!(s.solve());
        assert!(!s.value(a), "unit !a must hold");
        assert!(s.value(b), "a|b with !a forces b");
        // And a new variable allocated after solving works too.
        let c = s.new_var();
        assert!(s.add_clause(&[Lit::new(c, false)]));
        assert!(s.solve());
        assert!(s.value(c));
    }

    #[test]
    fn assumption_probes_on_a_growing_formula() {
        // At-most-one-per-hole constraints for 4 pigeons / 3 holes: probe
        // placements via assumptions, then grow the formula to the full
        // (UNSAT) pigeonhole instance in the same solver.
        let (pigeons, holes) = (4usize, 3usize);
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    let a = lit(&mut s, &mut vars, i1 * holes + j, true);
                    let b = lit(&mut s, &mut vars, i2 * holes + j, true);
                    s.add_clause(&[a, b]);
                }
            }
        }
        // Two pigeons in one hole: rejected, solver stays consistent.
        assert!(
            !s.solve_with_assumptions(&[Lit::new(vars[0], false), Lit::new(vars[holes], false),])
        );
        assert!(s.is_ok());
        // A proper partial placement: accepted.
        assert!(s.solve_with_assumptions(&[
            Lit::new(vars[0], false),             // pigeon 0 in hole 0
            Lit::new(vars[holes + 1], false),     // pigeon 1 in hole 1
            Lit::new(vars[2 * holes + 2], false), // pigeon 2 in hole 2
        ]));
        // Grow to the full pigeonhole instance: now genuinely UNSAT.
        for i in 0..pigeons {
            let clause: Vec<Lit> = (0..holes)
                .map(|j| lit(&mut s, &mut vars, i * holes + j, false))
                .collect();
            s.add_clause(&clause);
        }
        assert!(!s.solve());
        assert!(s.stats().conflicts > 0, "full instance needs search");
    }

    #[test]
    fn xor_chain_requires_learning() {
        // Encode x0 ^ x1 ^ ... ^ x7 = 1 via CNF of pairwise xors with
        // auxiliary variables, then also assert x-parity = 0 on a subset to
        // create conflicts.
        let mut s = SatSolver::new();
        let n = 8;
        let x: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        // t_i = x_0 ^ ... ^ x_i
        let mut t_prev = x[0];
        for &xi in x.iter().skip(1) {
            let t = s.new_var();
            // t = t_prev ^ x_i  (4 clauses)
            let (a, b, c) = (
                Lit::new(t_prev, false),
                Lit::new(xi, false),
                Lit::new(t, false),
            );
            s.add_clause(&[a.negated(), b.negated(), c.negated()]);
            s.add_clause(&[a, b, c.negated()]);
            s.add_clause(&[a.negated(), b, c]);
            s.add_clause(&[a, b.negated(), c]);
            t_prev = t;
        }
        // Parity must be 1.
        s.add_clause(&[Lit::new(t_prev, false)]);
        assert!(s.solve());
        let parity = x.iter().fold(false, |acc, &v| acc ^ s.value(v));
        assert!(parity, "xor chain parity must be 1");
    }
}
